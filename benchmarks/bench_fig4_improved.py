"""E2 — Figure 4: the improved analysis with incoming/outgoing nodes.

Section 5.3 refines the result for program (b) ``b := a; c := b``: the final
value of ``b`` is readable from ``c`` (edge ``b → c``), but the *initial* value
of ``b`` is not (no edge ``b◦ → c``), while the initial value of ``a`` is (edge
``a◦ → c``).  The same machinery handles the environment of a real design
through ``in``/``out`` ports, checked here on the producer/consumer workload.
"""

from repro.analysis.api import analyze
from repro.analysis.resource_matrix import incoming_node, outgoing_node
from repro import workloads


def test_figure4_program_b(benchmark, report):
    """Figure 4(b): initial-value nodes separate overwritten values."""

    def run():
        return analyze(
            workloads.paper_program_b(), improved=True, loop_processes=False
        ).graph_without_self_loops()

    graph = benchmark(run)
    assert graph.has_edge("b", "c")
    assert graph.has_edge(incoming_node("a"), "c")
    assert graph.has_edge(incoming_node("a"), "b")
    assert not graph.has_edge(incoming_node("b"), "c")
    report(
        edges=sorted(graph.edges),
        initial_b_reaches_c=graph.has_edge(incoming_node("b"), "c"),
        initial_a_reaches_c=graph.has_edge(incoming_node("a"), "c"),
    )


def test_figure4_program_a(benchmark, report):
    """For program (a) the initial value of b *does* reach c."""

    def run():
        return analyze(
            workloads.paper_program_a(), improved=True, loop_processes=False
        ).graph_without_self_loops()

    graph = benchmark(run)
    assert graph.has_edge(incoming_node("b"), "c")
    assert not graph.has_edge(incoming_node("a"), "c")
    report(edges=sorted(graph.edges))


def test_environment_nodes_for_ports(benchmark, report):
    """Incoming/outgoing nodes model the environment process π for real ports."""

    def run():
        return analyze(workloads.producer_consumer_program(), improved=True).graph

    graph = benchmark(run)
    sink = outgoing_node("result")
    assert graph.has_edge(incoming_node("left"), sink)
    assert graph.has_edge(incoming_node("right"), sink)
    assert graph.has_edge("mixed", sink)
    report(
        outgoing_node=sink,
        direct_sources=sorted(graph.predecessors(sink)),
    )


def test_overwritten_secret_improvement(benchmark, report):
    """The improvement accepts the overwritten-secret program (Challenge F)."""

    def run():
        return analyze(workloads.challenge_f_program(), improved=True).graph

    graph = benchmark(run)
    sink = outgoing_node("leak")
    assert graph.has_edge(incoming_node("plain"), sink)
    assert not graph.has_edge(incoming_node("key"), sink)
    assert not graph.has_edge("key", sink)
    report(direct_sources_of_leak=sorted(graph.predecessors(sink)))
