#!/usr/bin/env python
"""Run the scaling benchmark suite and snapshot a machine-readable summary.

The runner executes ``benchmarks/bench_scaling.py`` under pytest-benchmark and
distills the raw report into ``BENCH_scaling.json`` at the repository root:
one record per benchmark with its parameters, the reproduction facts the
benchmark asserted (``extra_info``) and the timing statistics.  The file is
committed, so every PR leaves a perf trajectory the next one can compare
against.

Usage::

    python benchmarks/run_benchmarks.py                 # writes BENCH_scaling.json
    python benchmarks/run_benchmarks.py --output out.json --min-rounds 3
    make bench                                          # the same, via the Makefile

With ``--compare SNAPSHOT`` the runner acts as a regression gate instead: it
re-runs the suite, does **not** overwrite the snapshot, and exits non-zero
when any benchmark recorded in the snapshot got slower than ``--max-ratio``
(default 1.5×, on the best-of-rounds ``min`` time, the most noise-robust
statistic).  ``make check`` wires this behind the test suite.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BENCH_FILE = Path(__file__).resolve().parent / "bench_scaling.py"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_scaling.json"


def run_pytest_benchmark(bench_file: Path, raw_json: Path, min_rounds: int) -> None:
    """Run one benchmark file under pytest-benchmark, writing its raw report."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(bench_file),
        "-q",
        "--benchmark-only",
        f"--benchmark-min-rounds={min_rounds}",
        f"--benchmark-json={raw_json}",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        raise SystemExit(completed.returncode)


def distill(raw_report: dict) -> dict:
    """Reduce pytest-benchmark's raw report to the stable, comparable core."""
    records = []
    for bench in raw_report.get("benchmarks", []):
        stats = bench.get("stats", {})
        records.append(
            {
                "name": bench.get("name"),
                "group": bench.get("group"),
                "params": bench.get("params"),
                "extra_info": bench.get("extra_info", {}),
                "stats": {
                    key: stats.get(key)
                    for key in ("min", "max", "mean", "median", "stddev", "rounds")
                },
            }
        )
    records.sort(key=lambda record: record["name"] or "")
    machine = raw_report.get("machine_info", {})
    return {
        "datetime": raw_report.get("datetime"),
        "python": machine.get("python_version"),
        "machine": {
            key: machine.get(key) for key in ("system", "machine", "cpu", "node")
        },
        "benchmarks": records,
    }


def compare_against_snapshot(
    snapshot: dict, current: dict, max_ratio: float
) -> int:
    """Report per-benchmark slowdown vs. a snapshot; return the regression count.

    Compares the best-of-rounds ``min`` time of every benchmark present in
    both reports.  Benchmarks only present on one side are listed but never
    fail the gate (new benchmarks appear, retired ones disappear).
    """
    baseline = {
        record["name"]: record for record in snapshot.get("benchmarks", [])
    }
    regressions = 0
    print(f"{'benchmark':<42} {'snapshot':>10} {'current':>10} {'ratio':>7}")
    for record in current.get("benchmarks", []):
        name = record["name"]
        reference = baseline.pop(name, None)
        if reference is None:
            print(f"{name:<42} {'-':>10} (new benchmark, not gated)")
            continue
        old = reference["stats"]["min"]
        new = record["stats"]["min"]
        ratio = new / old if old else float("inf")
        verdict = "  REGRESSION" if ratio > max_ratio else ""
        if ratio > max_ratio:
            regressions += 1
        print(f"{name:<42} {old:>9.4f}s {new:>9.4f}s {ratio:>6.2f}x{verdict}")
    for name in sorted(baseline):
        print(f"{name:<42} (missing from this run, not gated)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-file",
        type=Path,
        default=DEFAULT_BENCH_FILE,
        help="benchmark file to run (default: bench_scaling.py)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="where to write the distilled summary (default: BENCH_scaling.json)",
    )
    parser.add_argument(
        "--min-rounds",
        type=int,
        default=5,
        help="minimum pytest-benchmark rounds per benchmark",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        help=(
            "regression-gate mode: compare against this committed snapshot "
            "instead of overwriting it; exit 1 on any recorded benchmark "
            "slower than --max-ratio"
        ),
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.5,
        help="maximum tolerated min-time slowdown in --compare mode (default 1.5)",
    )
    args = parser.parse_args(argv)

    # Fail fast on a missing/corrupt snapshot before spending minutes
    # benchmarking.
    snapshot = None
    if args.compare is not None:
        try:
            snapshot = json.loads(args.compare.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"cannot read snapshot {args.compare}: {error}")
            return 2

    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "raw_benchmark.json"
        run_pytest_benchmark(args.bench_file, raw_json, args.min_rounds)
        raw_report = json.loads(raw_json.read_text())

    summary = distill(raw_report)

    if snapshot is not None:
        regressions = compare_against_snapshot(
            snapshot, summary, args.max_ratio
        )
        if regressions:
            print(
                f"{regressions} benchmark(s) regressed by more than "
                f"{args.max_ratio}x vs {args.compare}"
            )
            return 1
        print(f"no phase regressed by more than {args.max_ratio}x vs {args.compare}")
        return 0

    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} ({len(summary['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
