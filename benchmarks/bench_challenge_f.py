"""E7 — Section 7: programs accepted here but rejected by security-type systems.

The conclusion notes the improved analysis "correctly analyses programs that
would incorrectly be rejected by typical security-type systems; as it is
described in the Open Challenge F of [15]", because Reaching Definitions lets
the analysis kill overwritten variables and signals.  The benchmark runs the
overwritten-secret workload end to end, checks the covert-channel report is
clean at the port level, and contrasts the verdict with a flow-insensitive
check (Kemmerer-style transitive reading), which raises a false alarm.
"""

from repro.analysis.api import analyze, analyze_kemmerer
from repro.analysis.resource_matrix import incoming_node, outgoing_node
from repro.security.policy import TwoLevelPolicy
from repro.security.report import build_report
from repro import workloads


def test_overwritten_secret_is_accepted(benchmark, report):
    """Analysis + policy check: the overwritten key never reaches the output."""

    def run():
        result = analyze(workloads.challenge_f_program(), improved=True)
        policy = TwoLevelPolicy(secret_resources=["key"])
        return result, build_report(result, policy, restrict_to_ports=True)

    result, covert_report = benchmark(run)
    assert covert_report.is_clean
    assert covert_report.output_dependencies == {"leak": ["plain"]}
    report(
        verdict="accepted",
        output_dependencies=covert_report.output_dependencies,
        violations=len(covert_report.violations),
    )


def test_flow_insensitive_reading_rejects_it(benchmark, report):
    """A Kemmerer-style (transitive) reading raises the false alarm."""

    def run():
        kemmerer = analyze_kemmerer(workloads.challenge_f_program())
        return kemmerer.graph.without_self_loops()

    graph = benchmark(run)
    # flow-insensitively, key reaches the output through the shared temporary
    assert graph.has_edge("key", "leak")
    report(verdict="rejected (false alarm)", spurious_edge=("key", "leak"))


def test_simulation_confirms_the_analysis(benchmark, report):
    """Ground truth: two runs differing only in the key produce the same output."""
    from repro.semantics.simulator import simulate
    from repro.vhdl.elaborate import elaborate_source

    design = elaborate_source(workloads.challenge_f_program())

    def run():
        high = simulate(design, {"key": "11111111", "plain": "01010101"})
        low = simulate(design, {"key": "00000000", "plain": "01010101"})
        return high["leak"], low["leak"]

    high_leak, low_leak = benchmark(run)
    assert high_leak == low_leak
    report(leak_with_key_1="".join(str(high_leak)), outputs_equal=high_leak == low_leak)


def test_leaky_variant_is_still_flagged(benchmark, report):
    """Sanity: a genuinely leaky variant is rejected by the same check."""
    leaky = workloads.challenge_f_program().replace("t := plain;", "t := t xor plain;")

    def run():
        result = analyze(leaky, improved=True)
        policy = TwoLevelPolicy(secret_resources=["key"])
        return build_report(result, policy, restrict_to_ports=True)

    covert_report = benchmark(run)
    assert not covert_report.is_clean
    report(
        verdict="rejected",
        violations=[v.describe() for v in covert_report.violations],
    )
