"""E5 — Conclusion: complexity of the implementation.

The paper states the implementation "directly follows the structure of the
specifications" with a worst-case complexity of O(n^5), conjectured improvable
to cubic because the analysis decomposes into "three bit-vector frameworks
(each being linear time in practice) and a cubic time reachability analysis".

These benchmarks time (i) the bit-vector Reaching Definitions phases and
(ii) the closure phase separately on a synthetic program family of growing
size, so the report exposes the near-linear growth of the former and the
super-linear growth of the latter.  Since the interned-bitset engine landed
(``dataflow.worklist.solve`` on int bitsets, SCC-condensed column propagation
in ``analysis.closure.propagate``) the family extends to the 8×64 and 16×64
chains; ``benchmarks/run_benchmarks.py`` snapshots the timings into
``BENCH_scaling.json`` at the repo root so future changes have a perf
trajectory to compare against.
"""

import pytest

from repro.analysis.closure import global_resource_matrix
from repro.analysis.local_deps import local_resource_matrix
from repro.analysis.reaching_active import analyze_all_active_signals
from repro.analysis.reaching_defs import analyze_reaching_definitions
from repro.analysis.specialize import specialize
from repro.analysis.api import analyze_design
from repro.cfg.builder import build_cfg
from repro.vhdl.elaborate import elaborate_source
from repro.workloads import synthetic_chain_program

#: (processes, assignments per process) — program size grows left to right.
#: The 8×64 chain is the headline workload of the bitset-engine optimisation;
#: 16×64 is ~4× its flow-graph size and was out of reach for the frozenset
#: implementation.
SIZES = [(2, 4), (2, 16), (4, 16), (4, 32), (8, 32), (8, 64), (16, 64)]


def _design(processes, assignments):
    return elaborate_source(synthetic_chain_program(processes, assignments))


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_full_analysis_scaling(benchmark, report, processes, assignments):
    """End-to-end analysis time as the program grows."""
    design = _design(processes, assignments)

    def run():
        return analyze_design(design, improved=True)

    result = benchmark(run)
    stats = result.program_cfg.summary()
    report(
        processes=processes,
        assignments_per_process=assignments,
        blocks=stats["labels"],
        flow_edges=stats["flow_edges"],
        global_entries=len(result.rm_global),
        graph_edges=result.graph.edge_count(),
    )


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_bitvector_phases_scaling(benchmark, report, processes, assignments):
    """The Reaching Definitions phases (the paper's three bit-vector frameworks)."""
    design = _design(processes, assignments)
    program_cfg = build_cfg(design)

    def run():
        active = analyze_all_active_signals(program_cfg.processes)
        return analyze_reaching_definitions(program_cfg, active)

    benchmark(run)
    report(
        processes=processes,
        assignments_per_process=assignments,
        blocks=len(program_cfg.blocks),
    )


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_closure_phase_scaling(benchmark, report, processes, assignments):
    """The closure phase alone (the paper's cubic reachability component)."""
    design = _design(processes, assignments)
    program_cfg = build_cfg(design)
    active = analyze_all_active_signals(program_cfg.processes)
    reaching = analyze_reaching_definitions(program_cfg, active)
    rm_local = local_resource_matrix(program_cfg)
    specialized = specialize(program_cfg, rm_local, active, reaching)

    def run():
        return global_resource_matrix(program_cfg, rm_local, specialized)

    result = benchmark(run)
    report(
        processes=processes,
        assignments_per_process=assignments,
        local_entries=len(rm_local),
        global_entries=len(result.rm_global),
    )
