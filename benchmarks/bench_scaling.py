"""E5 — Conclusion: complexity of the implementation.

The paper states the implementation "directly follows the structure of the
specifications" with a worst-case complexity of O(n^5), conjectured improvable
to cubic because the analysis decomposes into "three bit-vector frameworks
(each being linear time in practice) and a cubic time reachability analysis".

These benchmarks time (i) the bit-vector Reaching Definitions phases and
(ii) the closure phase separately on a synthetic program family of growing
size, so the report exposes the near-linear growth of the former and the
super-linear growth of the latter.  Since the interned-bitset engine landed
(``dataflow.worklist.solve`` on int bitsets, SCC-condensed column propagation
in ``analysis.closure.propagate``) the family extends to the 8×64 and 16×64
chains; ``benchmarks/run_benchmarks.py`` snapshots the timings into
``BENCH_scaling.json`` at the repo root so future changes have a perf
trajectory to compare against.

The cold-path phases (``test_cold_*``, ``test_closure_backend``,
``test_flow_graph_backend``, and the batch/serve groups below) price first
contact and deployment modes rather than asymptotics; docs/performance.md
walks through what each one demonstrates.
"""

import pytest

from repro.analysis.closure import global_resource_matrix
from repro.analysis.flowgraph import FlowGraph
from repro.analysis.local_deps import local_resource_matrix
from repro.analysis.reaching_active import analyze_all_active_signals
from repro.analysis.reaching_defs import analyze_reaching_definitions
from repro.analysis.specialize import specialize
from repro.analysis.api import analyze_design
from repro.cfg.builder import build_cfg
from repro.dataflow import bitset
from repro.pipeline import (
    AnalysisOptions,
    AnalysisServer,
    ArtifactCache,
    DiskArtifactCache,
    Pipeline,
    ServerThread,
    TieredArtifactCache,
    expand_jobs,
    run_batch,
)
from repro.hier import (
    build_hierarchy,
    flatten_source,
    link_hierarchy,
    summary_cache_key,
)
from repro.vhdl.elaborate import elaborate, elaborate_source
from repro.vhdl.parser import parse_program
from repro.workloads import (
    hierarchical_register_file,
    multi_entity_program,
    synthetic_chain_program,
)

#: (processes, assignments per process) — program size grows left to right.
#: The 8×64 chain is the headline workload of the bitset-engine optimisation;
#: 16×64 is ~4× its flow-graph size and was out of reach for the frozenset
#: implementation.
SIZES = [(2, 4), (2, 16), (4, 16), (4, 32), (8, 32), (8, 64), (16, 64)]


def _design(processes, assignments):
    return elaborate_source(synthetic_chain_program(processes, assignments))


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_full_analysis_scaling(benchmark, report, processes, assignments):
    """End-to-end analysis time as the program grows."""
    design = _design(processes, assignments)

    def run():
        return analyze_design(design, improved=True)

    result = benchmark(run)
    stats = result.program_cfg.summary()
    report(
        processes=processes,
        assignments_per_process=assignments,
        blocks=stats["labels"],
        flow_edges=stats["flow_edges"],
        global_entries=len(result.rm_global),
        graph_edges=result.graph.edge_count(),
    )


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_bitvector_phases_scaling(benchmark, report, processes, assignments):
    """The Reaching Definitions phases (the paper's three bit-vector frameworks)."""
    design = _design(processes, assignments)
    program_cfg = build_cfg(design)

    def run():
        active = analyze_all_active_signals(program_cfg.processes)
        return analyze_reaching_definitions(program_cfg, active)

    benchmark(run)
    report(
        processes=processes,
        assignments_per_process=assignments,
        blocks=len(program_cfg.blocks),
    )


@pytest.mark.parametrize("processes,assignments", SIZES)
def test_closure_phase_scaling(benchmark, report, processes, assignments):
    """The closure phase alone (the paper's cubic reachability component)."""
    design = _design(processes, assignments)
    program_cfg = build_cfg(design)
    active = analyze_all_active_signals(program_cfg.processes)
    reaching = analyze_reaching_definitions(program_cfg, active)
    rm_local = local_resource_matrix(program_cfg)
    specialized = specialize(program_cfg, rm_local, active, reaching)

    def run():
        return global_resource_matrix(program_cfg, rm_local, specialized)

    result = benchmark(run)
    report(
        processes=processes,
        assignments_per_process=assignments,
        local_entries=len(rm_local),
        global_entries=len(result.rm_global),
    )


# ------------------------------------------------------------------- cold path
#
# The cold-path phases price first contact: what a fresh process pays before
# any cache tier can help.  The front end is measured split (tokenise+parse
# vs elaborate) on the 32×128 chain — the scale the fast-path rewrite was
# profiled at — and the closure/flow-graph phases run once per bitset
# backend (`repro.dataflow.bitset`), which is where the committed
# DEFAULT_SELECTION numbers come from.

#: The cold-path chain shape (processes, assignments per process).
COLD_SHAPE = (32, 128)


@pytest.fixture(scope="module")
def cold_source():
    return synthetic_chain_program(*COLD_SHAPE)


def test_cold_parse(benchmark, report, cold_source):
    """Cold single-file front end, parse half: tokenise + parse only."""
    program = benchmark(lambda: parse_program(cold_source))
    report(
        shape=COLD_SHAPE,
        source_bytes=len(cold_source),
        architectures=len(program.architectures),
    )


def test_cold_elaborate(benchmark, report, cold_source):
    """Cold single-file front end, elaborate half (parse done once outside)."""
    program = parse_program(cold_source)
    design = benchmark(lambda: elaborate(program, None))
    report(shape=COLD_SHAPE, processes=len(design.processes))


@pytest.fixture(scope="module")
def cold_closure_inputs(cold_source):
    design = elaborate_source(cold_source)
    program_cfg = build_cfg(design)
    active = analyze_all_active_signals(program_cfg.processes)
    reaching = analyze_reaching_definitions(program_cfg, active)
    rm_local = local_resource_matrix(program_cfg)
    specialized = specialize(program_cfg, rm_local, active, reaching)
    return program_cfg, rm_local, specialized


@pytest.mark.parametrize("backend", [bitset.INT, bitset.WORDS])
def test_closure_backend(benchmark, report, cold_closure_inputs, backend):
    """The 32×128 closure phase, once per bitset backend."""
    if backend == bitset.WORDS and not bitset.HAVE_WORD_BACKEND:
        pytest.skip("numpy not available")
    program_cfg, rm_local, specialized = cold_closure_inputs

    def run():
        with bitset.force_backend(backend):
            return global_resource_matrix(program_cfg, rm_local, specialized)

    result = benchmark(run)
    report(
        shape=COLD_SHAPE,
        backend=backend,
        selected=bitset.backend_for("closure"),
        global_entries=len(result.rm_global),
    )


@pytest.mark.parametrize("backend", [bitset.INT, bitset.WORDS])
def test_flow_graph_backend(benchmark, report, cold_closure_inputs, backend):
    """Building the 32×128 flow graph, once per bitset backend."""
    if backend == bitset.WORDS and not bitset.HAVE_WORD_BACKEND:
        pytest.skip("numpy not available")
    program_cfg, rm_local, specialized = cold_closure_inputs
    closure = global_resource_matrix(program_cfg, rm_local, specialized)

    def run():
        return FlowGraph.from_resource_matrix(closure.rm_global, backend=backend)

    graph = benchmark(run)
    report(
        shape=COLD_SHAPE,
        backend=backend,
        selected=bitset.backend_for("flow_graph"),
        graph_edges=graph.edge_count(),
    )


# ---------------------------------------------------------------- batch driver
#
# The batch-throughput phase: one source file holding BATCH_ENTITIES chain
# designs, expanded (as `vhdl-ifa batch --all-entities` does) into one
# analysis job per entity, and driven four ways — sequentially from cold,
# over the process pool, sequentially over a warm in-memory artifact cache,
# and cold-process over a populated on-disk cache dir.  The recorded
# trajectory shows what the deployment modes buy: pool speed-up scales with
# the machine's cores (on a single-core runner the pool only adds overhead),
# the warm-cache run skips every stage regardless, and the disk-warm run
# shows what a *fresh* invocation pays when `--cache-dir` already holds the
# artifacts (unpickling instead of re-analysis).

#: Entities per batch file × the per-entity chain shape.
BATCH_ENTITIES = 8
BATCH_SHAPE = (8, 32)


@pytest.fixture(scope="module")
def batch_jobs(tmp_path_factory):
    """One multi-entity workload file, expanded into per-entity jobs."""
    path = tmp_path_factory.mktemp("batch") / "designs.vhd"
    path.write_text(
        multi_entity_program(BATCH_ENTITIES, *BATCH_SHAPE), encoding="utf-8"
    )
    return expand_jobs([str(path)], all_entities=True)


def _assert_batch_ok(report):
    assert report.ok, [item.error for item in report.failures]
    return report


def test_batch_throughput_sequential(benchmark, report, batch_jobs):
    """Cold in-process batch: the baseline every other mode is measured against.

    This is the acceptance-criterion phase of the cold-path overhaul: the
    driver opens an in-run cache even without ``cache=``, so the eight
    entity jobs share one option-independent parse artifact and only the
    per-entity stages run eight times.
    """
    result = benchmark(
        lambda: _assert_batch_ok(
            run_batch(batch_jobs, AnalysisOptions(), parallel=False)
        )
    )
    report(jobs=len(batch_jobs), entities=BATCH_ENTITIES)


def test_batch_throughput_parallel(benchmark, report, batch_jobs):
    """The process-pool path (worker count = CPU count, pool startup included)."""
    result = benchmark(
        lambda: _assert_batch_ok(run_batch(batch_jobs, AnalysisOptions(), parallel=True))
    )
    report(jobs=len(batch_jobs), entities=BATCH_ENTITIES, workers=result.workers)


def test_batch_throughput_warm_cache(benchmark, report, batch_jobs):
    """Re-running a batch over a warm artifact cache: every stage served cached."""
    cache = ArtifactCache()
    cold = _assert_batch_ok(
        run_batch(batch_jobs, AnalysisOptions(), parallel=False, cache=cache)
    )

    def run():
        warm = _assert_batch_ok(
            run_batch(batch_jobs, AnalysisOptions(), parallel=False, cache=cache)
        )
        assert [item.text for item in warm.items] == [item.text for item in cold.items]
        return warm

    warm = benchmark(run)
    cached = set(warm.items[0].data["cached_stages"])
    assert {"parse", "elaborate", "closure"} <= cached
    report(
        jobs=len(batch_jobs),
        entities=BATCH_ENTITIES,
        cached_stages_per_job=sorted(cached),
        cache_entries=len(cache),
    )


def test_batch_lint_warm_cache(benchmark, report, batch_jobs):
    """Linting the batch workload over a warm cache.

    The lint stage is content-addressed like every other pipeline stage, so
    a warm re-run serves the full-catalog findings from the cache; this
    prices the per-job overhead the ``--lint`` flag adds to an
    already-cached batch (configuration filtering + section rendering).
    """
    from repro.analysis.lint import LintConfig

    cache = ArtifactCache()
    lint = LintConfig()
    cold = _assert_batch_ok(
        run_batch(
            batch_jobs, AnalysisOptions(), parallel=False, cache=cache, lint=lint
        )
    )

    def run():
        warm = _assert_batch_ok(
            run_batch(
                batch_jobs, AnalysisOptions(), parallel=False, cache=cache,
                lint=lint,
            )
        )
        assert [item.text for item in warm.items] == [item.text for item in cold.items]
        return warm

    warm = benchmark(run)
    cached = set(warm.items[0].data["cached_stages"])
    assert "lint" in cached
    findings_total = sum(
        item.data["lint"]["summary"]["findings"] for item in warm.items
    )
    report(
        jobs=len(batch_jobs),
        entities=BATCH_ENTITIES,
        findings_total=findings_total,
        cached_stages_per_job=sorted(cached),
    )


def test_batch_throughput_disk_warm(benchmark, report, batch_jobs, tmp_path_factory):
    """A cold process over a populated ``--cache-dir``: disk-served stages.

    Every round builds brand-new cache tiers (empty memory tier, fresh
    universe registry) over the same populated directory, so each measured
    run pays exactly what a fresh CLI invocation with ``--cache-dir`` pays:
    open the store, unpickle the artifacts, adopt the universes.
    """
    cache_dir = str(tmp_path_factory.mktemp("disk-cache") / "store")
    populate = TieredArtifactCache(ArtifactCache(), DiskArtifactCache(cache_dir))
    cold = _assert_batch_ok(
        run_batch(batch_jobs, AnalysisOptions(), parallel=False, cache=populate)
    )

    def run():
        tier = TieredArtifactCache(ArtifactCache(), DiskArtifactCache(cache_dir))
        warm = _assert_batch_ok(
            run_batch(batch_jobs, AnalysisOptions(), parallel=False, cache=tier)
        )
        assert [item.text for item in warm.items] == [item.text for item in cold.items]
        return warm

    warm = benchmark(run)
    cached = set(warm.items[0].data["cached_stages"])
    assert {"parse", "elaborate", "closure"} <= cached
    report(
        jobs=len(batch_jobs),
        entities=BATCH_ENTITIES,
        cached_stages_per_job=sorted(cached),
        disk_entries=len(DiskArtifactCache(cache_dir)),
    )


# ------------------------------------------------------------------- hierarchy
#
# The hierarchical-design phases price the compositional linker
# (docs/hierarchy.md) on a 2000-instance register file: a cold link
# (summaries built from scratch), an incremental re-link after a leaf-entity
# edit (exactly one summary recomputed, the rest served from cache), and the
# headline linked-vs-flattened ratio — the flattening oracle analyses the
# whole expanded design through the flat pipeline, whose whole-program
# Reaching Definitions phase scales quadratically with the label count,
# while the linker solves Table 5 per process and re-runs only the
# cross-process stages.

#: (cells, per-cell process depth) of the hierarchy workload.  The cell
#: count is the lever that separates the routes: the flat oracle's
#: whole-program Reaching Definitions and specialisation costs grow
#: super-linearly with the process count (every definition set spans every
#: process), while the linker's grow linearly — 2000 cells at a modest
#: depth clears the asserted floor with ~50% margin.
HIER_SHAPE = (2000, 8)

#: The minimum linked-vs-flattened speed-up the ratio phase asserts.
HIER_MIN_RATIO = 10.0


@pytest.fixture(scope="module")
def hier_program():
    return parse_program(hierarchical_register_file(*HIER_SHAPE))


def test_hier_link_cold(benchmark, report, hier_program):
    """Cold compositional link: summarise every entity, then compose."""
    result = benchmark(lambda: link_hierarchy(hier_program, AnalysisOptions()))
    stats = result.result.program_cfg.summary()
    report(
        shape=HIER_SHAPE,
        processes=stats["processes"],
        labels=stats["labels"],
        graph_edges=result.result.graph.edge_count(),
    )


def test_hier_link_incremental(benchmark, report):
    """Re-link after editing the leaf entity: one summary recomputed.

    Every round starts from a cache holding only the *unchanged* entity's
    summary (what a real cache holds after the edit invalidated the leaf),
    so the measured work is exactly the incremental cost: re-summarise one
    entity, re-run the link-time stages.
    """
    base = hierarchical_register_file(*HIER_SHAPE)
    edited = base.replace("state <= nxt;", "state <= (nxt xor clr);", 1)
    assert edited != base
    edited_program = parse_program(edited)
    hierarchy = build_hierarchy(edited_program)
    leaf_key = summary_cache_key(hierarchy.unit_of("reg_cell"))
    root_key = summary_cache_key(hierarchy.root_unit)

    warm = ArtifactCache()
    link_hierarchy(parse_program(base), AnalysisOptions(), cache=warm)
    root_summary = warm.get(root_key)
    assert root_summary is not None  # the root's slice is unaffected
    assert warm.get(leaf_key) is None  # the edit invalidated the leaf

    def run():
        cache = ArtifactCache()
        cache.put(root_key, root_summary)
        result = link_hierarchy(edited_program, AnalysisOptions(), cache=cache)
        assert leaf_key in cache  # exactly the leaf summary was recomputed
        return result

    result = benchmark(run)
    report(
        shape=HIER_SHAPE,
        entities_resummarised=1,
        processes=result.result.program_cfg.summary()["processes"],
    )


def test_hier_linked_vs_flattened(benchmark, report, hier_program):
    """The linked route vs the flattening oracle, same design, same options.

    The linked route is the benchmarked statistic and runs *first* (the
    oracle's multi-gigabyte flat artifacts would otherwise sit in memory,
    inflating the linked rounds); the flattened analysis then runs once and
    the ratio compares best-of-rounds link time against it.  Asserts the
    headline ratio of the subsystem: linking is at least ``HIER_MIN_RATIO``
    times faster on this 1000-instance design.
    """
    import time as time_module

    options = AnalysisOptions()
    link_times = []

    def run():
        started = time_module.perf_counter()
        result = link_hierarchy(hier_program, options)
        link_times.append(time_module.perf_counter() - started)
        return result

    linked = benchmark(run)
    link_adjacency = linked.result.graph.to_adjacency()
    link_seconds = min(link_times)
    del linked

    started = time_module.perf_counter()
    flattened = Pipeline().run(flatten_source(hier_program), options)
    flatten_seconds = time_module.perf_counter() - started
    assert flattened.result.graph.to_adjacency() == link_adjacency
    del flattened

    ratio = flatten_seconds / link_seconds
    assert ratio >= HIER_MIN_RATIO, (
        f"linked route only {ratio:.1f}x faster than flattening "
        f"({link_seconds:.2f}s vs {flatten_seconds:.2f}s)"
    )
    report(
        shape=HIER_SHAPE,
        flatten_seconds=round(flatten_seconds, 3),
        link_seconds=round(link_seconds, 3),
        ratio=round(ratio, 2),
        min_ratio=HIER_MIN_RATIO,
    )


# ------------------------------------------------------------------ serve mode
#
# The serve-mode latency phase: one long-lived AnalysisServer over a warm
# two-tier cache, hit with SERVE_REQUESTS sequential `POST /analyze` requests
# for one entity of the batch workload file.  This prices the full service
# round trip — HTTP parse, cache-served pipeline run, JSON render — i.e. the
# per-request floor of CI-style repeated traffic.

SERVE_REQUESTS = 16


def _post_analyze(port, path, entity):
    import http.client
    import json as json_module

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    connection.request(
        "POST", "/analyze", body=json_module.dumps({"file": path, "entity": entity})
    )
    response = connection.getresponse()
    body = response.read()
    assert response.status == 200, body
    return body


def test_serve_latency_warm(benchmark, report, tmp_path_factory):
    """N sequential requests against one warm server, per-request latency."""
    path = tmp_path_factory.mktemp("serve") / "designs.vhd"
    path.write_text(
        multi_entity_program(BATCH_ENTITIES, *BATCH_SHAPE), encoding="utf-8"
    )
    with ServerThread(
        AnalysisServer(port=0, cache=TieredArtifactCache(ArtifactCache()))
    ) as server:
        _post_analyze(server.port, str(path), "chain_0")  # warm the cache

        def run():
            for _ in range(SERVE_REQUESTS):
                _post_analyze(server.port, str(path), "chain_0")

        benchmark(run)
    report(
        requests_per_round=SERVE_REQUESTS,
        entity_shape=BATCH_SHAPE,
        cache="warm two-tier (in-memory front)",
    )


#: Concurrent clients hammering the pooled server, requests per client.
LOAD_CLIENTS = 4
LOAD_REQUESTS_PER_CLIENT = 4


def test_serve_concurrent_load(benchmark, report, tmp_path_factory):
    """K concurrent clients against the worker-pool server over a warm
    shared disk tier.

    Each client cycles through a *distinct* entity of the workload file —
    identical concurrent requests would be single-flighted into one
    analysis, which is the dedup phase's job to measure, not this one's.
    The recorded throughput and p95 price the full multi-tenant round trip:
    admission, pool dispatch, disk-tier cache hit in the worker, response.
    """
    import threading
    import time as time_module

    path = tmp_path_factory.mktemp("load") / "designs.vhd"
    path.write_text(
        multi_entity_program(BATCH_ENTITIES, *BATCH_SHAPE), encoding="utf-8"
    )
    cache_dir = str(tmp_path_factory.mktemp("load-cache") / "store")
    from repro.workspace import Workspace

    workspace = Workspace(cache_dir=cache_dir)
    latencies = []
    with ServerThread(
        AnalysisServer(
            port=0, workspace=workspace, workers=2, timeout=120.0, queue_depth=64
        )
    ) as server:
        for client in range(LOAD_CLIENTS):  # warm every entity once
            _post_analyze(server.port, str(path), f"chain_{client}")

        def client_loop(client):
            for _ in range(LOAD_REQUESTS_PER_CLIENT):
                started = time_module.perf_counter()
                _post_analyze(server.port, str(path), f"chain_{client}")
                latencies.append(time_module.perf_counter() - started)

        round_seconds = []

        def run():
            started = time_module.perf_counter()
            threads = [
                threading.Thread(target=client_loop, args=(client,))
                for client in range(LOAD_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            round_seconds.append(time_module.perf_counter() - started)

        benchmark(run)
    latencies.sort()
    total = LOAD_CLIENTS * LOAD_REQUESTS_PER_CLIENT
    p95 = latencies[max(0, int(len(latencies) * 0.95) - 1)]
    report(
        clients=LOAD_CLIENTS,
        requests_per_client=LOAD_REQUESTS_PER_CLIENT,
        workers=2,
        entity_shape=BATCH_SHAPE,
        throughput_rps=round(total / min(round_seconds), 2),
        p95_ms=round(p95 * 1000, 3),
        cache="warm shared disk tier (per-worker memory front)",
    )
