"""E4 — Section 6: analysis of the remaining AES round transformations.

The paper reports that the analysed AES programs "use several temporary
variables … overwritten and reused for each input state" and that the analysis
"correctly eliminates the edges introduced by the overwritten variables".
These benchmarks run the full pipeline on each generated AES component,
check the expected flow structure and compare the edge counts against
Kemmerer's baseline.
"""

import pytest

from repro.aes import generator
from repro.analysis.api import analyze, analyze_kemmerer
from repro.analysis.resource_matrix import outgoing_node

COMPONENTS = {
    "add_round_key": generator.add_round_key_source(),
    "sub_bytes": generator.sub_bytes_source(),
    "mix_column": generator.mix_column_source(),
    "key_schedule_step": generator.key_schedule_step_source(),
    "aes_round_pipeline": generator.aes_round_source(),
}


@pytest.mark.parametrize("name", sorted(COMPONENTS))
def test_component_analysis(benchmark, report, name):
    """Full analysis of one AES component; records precision vs the baseline."""
    source = COMPONENTS[name]

    def run():
        return analyze(source, improved=True)

    result = benchmark(run)
    # merge the environment nodes so both graphs range over the same node set
    ours = result.collapsed_graph().without_self_loops()
    kemmerer = analyze_kemmerer(source).graph.without_self_loops()
    report(
        component=name,
        blocks=result.program_cfg.summary()["labels"],
        our_edges=ours.edge_count(),
        kemmerer_edges=kemmerer.edge_count(),
        false_positives_eliminated=len(kemmerer.edge_difference(ours)),
    )
    assert ours.is_subgraph_of(kemmerer)


def test_bytewise_add_round_key_reused_temporary(benchmark, report):
    """The reused-temporary claim of Section 6 on byte-granular AddRoundKey.

    Each output byte depends only on its own state and key bytes; the shared
    temporary makes Kemmerer's closure connect every input byte to every
    output byte (the same phenomenon as Figure 5, on a different function).
    """
    source = generator.add_round_key_bytewise_source(num_bytes=8)

    def run():
        return analyze(source, improved=True)

    result = benchmark(run)
    ours = result.collapsed_graph().without_self_loops()
    kemmerer = analyze_kemmerer(source).graph.without_self_loops()
    for index in range(8):
        # apart from the carrying temporary, each output byte depends only on
        # its own state and key bytes
        input_sources = ours.predecessors(f"out_{index}") - {"t"}
        assert input_sources == frozenset({f"state_{index}", f"key_{index}"})
        kemmerer_inputs = kemmerer.predecessors(f"out_{index}") - {"t"}
        assert len(kemmerer_inputs) == 16      # all state and key bytes
    report(
        bytes=8,
        our_input_bytes_per_output=2,
        kemmerer_input_bytes_per_output=16,
        false_positives_eliminated=len(kemmerer.edge_difference(ours)),
    )


def test_add_round_key_expected_flows(benchmark, report):
    """AddRoundKey: both the state and the key flow to the output, nothing else."""

    def run():
        return analyze(COMPONENTS["add_round_key"], improved=True)

    result = benchmark(run)
    graph = result.graph
    sink = outgoing_node("state_o")
    sources = {name for name in graph.predecessors(sink)}
    assert "state_i" in sources and "key_i" in sources
    report(direct_sources=sorted(sources))


def test_pipeline_cross_process_flows(benchmark, report):
    """The three-stage round pipeline: flows cross the internal signals."""

    def run():
        return analyze(COMPONENTS["aes_round_pipeline"], improved=True)

    result = benchmark(run)
    graph = result.graph
    sink = outgoing_node("state_o")
    assert graph.has_edge("state_i", sink)
    assert graph.has_edge("key_i", sink)
    assert graph.has_edge("after_ark", "after_sr")
    report(
        stages=len(result.design.processes),
        cross_flow_tuples=len(result.program_cfg.cross_flow()),
        direct_sources_of_output=sorted(graph.predecessors(sink)),
    )


def test_key_schedule_word_dependencies(benchmark, report):
    """Every produced key word depends on all four input words (as in AES)."""

    def run():
        return analyze(COMPONENTS["key_schedule_step"], improved=True)

    result = benchmark(run)
    graph = result.graph
    last_word_sink = outgoing_node("w7_o")
    sources = graph.predecessors(last_word_sink)
    for word in ("w0_i", "w1_i", "w2_i", "w3_i"):
        assert word in sources
    report(w7_sources=sorted(sources))
