"""E1 — Figure 3: non-transitive flow graphs for programs (a) and (b).

The paper's Section 5 example: for program (a) ``c := b; b := a`` the analysis
must report exactly the edges ``b → c`` and ``a → b`` (and *not* ``a → c``),
whereas for program (b) ``b := a; c := b`` the composed flow ``a → c`` is real
and must be reported.  Kemmerer's transitive closure reports ``a → c`` in both
cases.
"""

from repro.analysis.api import analyze, analyze_kemmerer
from repro import workloads


def _edges(source, improved=False):
    result = analyze(source, improved=improved, loop_processes=False)
    return result.graph_without_self_loops().edges


def test_program_a_graph(benchmark, report):
    """Figure 3(a): the result graph of program (a) is non-transitive."""
    edges = benchmark(_edges, workloads.paper_program_a())
    assert edges == {("b", "c"), ("a", "b")}
    report(
        program="(a) c := b; b := a",
        edges=sorted(edges),
        has_spurious_a_to_c=("a", "c") in edges,
    )


def test_program_b_graph(benchmark, report):
    """Figure 3(b): program (b) exhibits the composed flow a -> c."""
    edges = benchmark(_edges, workloads.paper_program_b())
    assert edges == {("a", "b"), ("b", "c"), ("a", "c")}
    report(program="(b) b := a; c := b", edges=sorted(edges))


def test_program_a_kemmerer_adds_the_spurious_edge(benchmark, report):
    """The baseline's transitive closure cannot distinguish (a) from (b)."""

    def run():
        return analyze_kemmerer(
            workloads.paper_program_a(), loop_processes=False
        ).graph.without_self_loops().edges

    edges = benchmark(run)
    assert ("a", "c") in edges
    ours = _edges(workloads.paper_program_a())
    report(
        kemmerer_edges=sorted(edges),
        our_edges=sorted(ours),
        false_positives=sorted(set(edges) - set(ours)),
    )


def test_result_graph_is_non_transitive_in_general(benchmark, report):
    """The paper's headline claim: the result graph is in general non-transitive."""

    def run():
        result = analyze(
            workloads.paper_program_a(), improved=False, loop_processes=False
        )
        return result.graph_without_self_loops()

    graph = benchmark(run)
    assert not graph.is_transitive()
    report(transitive=graph.is_transitive(), edge_count=graph.edge_count())
