"""E3 — Figure 5: Kemmerer's method vs the paper's analysis on AES ShiftRows.

Section 6: the ShiftRows function of the NSA AES implementation is analysed
after unrolling its loops; all three shifted rows pass through the *same*
temporary variables.  With incoming and outgoing nodes merged, both result
graphs have the same 12 nodes (rows 1–3, four elements each).  Kemmerer's
method "is unable to separate the shifts on each row" — its graph connects
every element to every other element — while the paper's analysis "computes
the precise result": each element receives exactly one edge, from the element
of its own row that is shifted into it.
"""

from repro.aes.generator import (
    shift_rows_expected_sources,
    shift_rows_paper_source,
    shift_rows_row_nodes,
)
from repro.analysis.api import analyze, analyze_kemmerer

ROW_NODES = [node for row in shift_rows_row_nodes().values() for node in row]


def _our_graph():
    result = analyze(shift_rows_paper_source(), improved=True, loop_processes=False)
    return (
        result.collapsed_graph().without_self_loops().restricted_to(ROW_NODES)
    )


def _kemmerer_graph():
    result = analyze_kemmerer(shift_rows_paper_source(), loop_processes=False)
    return result.graph.without_self_loops().restricted_to(ROW_NODES)


def _cross_row_edges(graph):
    return [
        (src, dst)
        for src, dst in graph.edges
        if src.split("_")[1] != dst.split("_")[1]
    ]


def test_figure5b_our_analysis_is_exact(benchmark, report):
    """Figure 5(b): each row element depends only on its true source element."""
    graph = benchmark(_our_graph)
    assert graph.node_count() == 12
    assert graph.edge_count() == 12
    for target, source in shift_rows_expected_sources().items():
        assert graph.predecessors(target) == frozenset({source})
    assert not _cross_row_edges(graph)
    report(
        nodes=graph.node_count(),
        edges=graph.edge_count(),
        cross_row_edges=0,
        adjacency=graph.to_adjacency(),
    )


def test_figure5a_kemmerer_conflates_the_rows(benchmark, report):
    """Figure 5(a): the baseline merges the three rows through the shared temporary."""
    graph = benchmark(_kemmerer_graph)
    assert graph.node_count() == 12
    assert graph.edge_count() == 12 * 11          # complete digraph on 12 nodes
    assert len(_cross_row_edges(graph)) == 96     # 12 * 8 cross-row pairs
    report(
        nodes=graph.node_count(),
        edges=graph.edge_count(),
        cross_row_edges=len(_cross_row_edges(graph)),
    )


def test_figure5_precision_gap(benchmark, report):
    """The headline comparison: false positives eliminated by the analysis."""

    def run():
        return _our_graph(), _kemmerer_graph()

    ours, kemmerer = benchmark(run)
    false_positives = kemmerer.edge_difference(ours)
    assert ours.is_subgraph_of(kemmerer)
    assert len(false_positives) == 132 - 12
    report(
        our_edges=ours.edge_count(),
        kemmerer_edges=kemmerer.edge_count(),
        false_positives_eliminated=len(false_positives),
        precision_ratio=round(kemmerer.edge_count() / ours.edge_count(), 1),
    )


def test_full_pipeline_cost_on_shiftrows(benchmark, report):
    """End-to-end analysis cost on the Figure 5 workload (parse to graph)."""

    def run():
        return analyze(
            shift_rows_paper_source(), improved=True, loop_processes=False
        )

    result = benchmark(run)
    report(
        blocks=result.program_cfg.summary()["labels"],
        local_entries=len(result.rm_local),
        global_entries=len(result.rm_global),
    )
