"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (see the
experiment index in ``DESIGN.md``): it asserts the qualitative *shape* the
paper reports — who is more precise, by how much, which edges appear — and
times the corresponding pipeline with ``pytest-benchmark``.  The asserted
numbers are echoed through ``benchmark.extra_info`` so they appear in the
benchmark report next to the timings.
"""

from __future__ import annotations

from typing import Dict

import pytest


def record(benchmark, **info: object) -> None:
    """Attach reproduction facts to the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value


@pytest.fixture
def report(benchmark):
    """A tiny helper bound to the current benchmark."""

    def _report(**info: object) -> None:
        record(benchmark, **info)

    return _report
