"""Ablation — the under-approximation ``RD∩ϕ`` (the paper's "unusual ingredient").

The conclusion singles out "the under-approximation analysis for active
signals in order to be able to specify non-trivial kill-components for present
values" as the unusual ingredient of the Reaching Definitions development.
This benchmark measures what that ingredient buys: the same analysis is run
with and without the ``RD∩ϕ``-driven kill at synchronisation points
(``use_under_approximation=False`` makes wait statements kill nothing).

On the two-phase workload — an internal signal carrying ``x`` is guaranteed to
be overwritten with ``y`` before it is exported — the ablated analysis reports
a spurious flow from ``x`` (and from the signal's initial value) into the
output, while the full analysis reports only ``y``.
"""

from repro.analysis.api import analyze
from repro.analysis.resource_matrix import incoming_node, outgoing_node
from repro import workloads


def test_full_analysis_on_two_phase_design(benchmark, report):
    """With the under-approximation: only y reaches the output."""

    def run():
        return analyze(workloads.two_phase_program(), improved=True)

    result = benchmark(run)
    sink = outgoing_node("result")
    sources = result.graph.predecessors(sink)
    assert "y" in sources and incoming_node("y") in sources
    assert "x" not in sources and incoming_node("x") not in sources
    report(
        variant="with RD∩ϕ kill",
        direct_sources=sorted(sources),
        edges=result.graph.edge_count(),
    )


def test_ablated_analysis_on_two_phase_design(benchmark, report):
    """Without it: the spurious flow from x (and the initial value) appears."""

    def run():
        return analyze(
            workloads.two_phase_program(),
            improved=True,
            use_under_approximation=False,
        )

    result = benchmark(run)
    sink = outgoing_node("result")
    sources = result.graph.predecessors(sink)
    assert "x" in sources              # the spurious flow the kill removes
    assert incoming_node("stage") in sources
    report(
        variant="without RD∩ϕ kill (ablated)",
        direct_sources=sorted(sources),
        edges=result.graph.edge_count(),
    )


def test_ablation_only_adds_edges(benchmark, report):
    """The ablation is a pure precision loss: its graph contains the full one."""

    def run():
        full = analyze(workloads.two_phase_program(), improved=True)
        ablated = analyze(
            workloads.two_phase_program(),
            improved=True,
            use_under_approximation=False,
        )
        return full, ablated

    full, ablated = benchmark(run)
    assert full.graph.is_subgraph_of(ablated.graph)
    extra = ablated.graph.edge_difference(full.graph)
    assert extra
    report(
        full_edges=full.graph.edge_count(),
        ablated_edges=ablated.graph.edge_count(),
        spurious_edges_removed_by_under_approximation=len(extra),
    )
