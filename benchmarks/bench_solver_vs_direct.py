"""E6 — Implementation vehicle: the Succinct-Solver-style encoding.

The paper implements the analysis as ALFP clauses for the Succinct Solver.
These benchmarks run the clause encoding on the replacement Datalog engine and
check it derives exactly the same global Resource Matrix as the direct
implementation, while timing both so their relative cost is visible.
"""

import pytest

from repro.analysis import alfp
from repro.analysis.api import analyze
from repro.aes.generator import aes_round_source, shift_rows_paper_source
from repro import workloads

WORKLOADS = {
    "producer_consumer": (workloads.producer_consumer_program(), True),
    "conditional": (workloads.conditional_program(), True),
    "shift_rows": (shift_rows_paper_source(), False),
    "aes_round_pipeline": (aes_round_source(), True),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_direct_closure(benchmark, report, name):
    """Timing of the direct (worklist) closure implementation."""
    source, loop = WORKLOADS[name]

    def run():
        return analyze(source, improved=True, loop_processes=loop)

    result = benchmark(run)
    report(workload=name, global_entries=len(result.rm_global))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_solver_closure_agrees(benchmark, report, name):
    """Timing of the clause encoding, plus the agreement check."""
    source, loop = WORKLOADS[name]
    result = analyze(source, improved=True, loop_processes=loop)

    def run():
        return alfp.closure_via_solver(
            result.program_cfg,
            result.rm_local,
            result.active,
            result.reaching,
            result.design,
            improved=True,
        )

    via_solver = benchmark(run)
    assert via_solver == result.rm_global
    report(
        workload=name,
        entries=len(via_solver),
        agrees_with_direct=via_solver == result.rm_global,
    )


def test_solver_engine_scales_with_clause_count(benchmark, report):
    """Raw engine cost on the largest workload's clause system."""
    source, loop = WORKLOADS["aes_round_pipeline"]
    result = analyze(source, improved=True, loop_processes=loop)
    engine = alfp.encode(
        result.program_cfg,
        result.rm_local,
        result.active,
        result.reaching,
        result.design,
        improved=True,
    )

    database = benchmark(engine.solve)
    report(
        facts=len(engine.facts),
        rules=len(engine.rules),
        derived_tuples=database.size(),
    )
