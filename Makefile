PYTHON ?= python

.PHONY: test bench check examples

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

# Tier-1 tests plus the perf regression gate: fails when any benchmark
# recorded in the committed BENCH_scaling.json snapshot slowed down >1.5x.
# Same round count as `make bench` so min-of-rounds is comparable.
check:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/run_benchmarks.py --compare BENCH_scaling.json

examples:
	scratch=$$(mktemp -d); for script in $(CURDIR)/examples/*.py; do \
		(cd $$scratch && PYTHONPATH=$(CURDIR)/src $(PYTHON) $$script > /dev/null) || exit 1; \
	done; rm -rf $$scratch
