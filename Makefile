PYTHON ?= python

.PHONY: test bench examples

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

examples:
	scratch=$$(mktemp -d); for script in $(CURDIR)/examples/*.py; do \
		(cd $$scratch && PYTHONPATH=$(CURDIR)/src $(PYTHON) $$script > /dev/null) || exit 1; \
	done; rm -rf $$scratch
