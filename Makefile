PYTHON ?= python

.PHONY: test bench check contracts docs examples schema load-smoke lint

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q

bench:
	$(PYTHON) benchmarks/run_benchmarks.py

# Tier-1 tests plus the perf regression gate: fails when any benchmark
# recorded in the committed BENCH_scaling.json snapshot slowed down >1.5x.
# Same round count as `make bench` so min-of-rounds is comparable.
check: lint
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(PYTHON) benchmarks/run_benchmarks.py --compare BENCH_scaling.json
	$(PYTHON) scripts/load_smoke.py
	$(PYTHON) scripts/check_contracts.py

# Consumer-contract gate: replay the committed interaction corpus
# (tests/contract/pacts) against a live inline server and a live pool
# server (workers=2).  Additive drift logs and passes; breaking drift
# fails with a field-level JSON-pointer diff.  Re-record after an
# intentional contract change with:
#   PYTHONPATH=src $(PYTHON) -m repro.cli contract record
contracts:
	$(PYTHON) scripts/check_contracts.py

# Repo invariant gate (scripts/check_invariants.py, stdlib AST lint) plus
# the mypy typed-core gate on repro.analysis.lint.  mypy runs only when
# installed — CI installs it; the bare local toolchain may not have it.
lint:
	$(PYTHON) scripts/check_invariants.py
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy -p repro.analysis.lint; \
	else \
		echo "lint: mypy not installed, skipping typed-core gate"; \
	fi

# A few seconds of concurrent traffic against the pooled serve mode:
# distinct-entity clients, a single-flight dedup wave, a structured 400,
# and a healthz/metrics scrape with asserted counters.
load-smoke:
	$(PYTHON) scripts/load_smoke.py

# Docs gate: internal links resolve, docs/cli.md matches cli.py, and the
# policy-file keys documented in docs/api.md match security/policy_file.py.
docs:
	$(PYTHON) scripts/check_docs.py

# JSON contract gate: fails when the committed docs/schema_v1.json drifts
# from the live schema (repro.pipeline.render.schema_v1).  Regenerate after
# an intentional change with:
#   PYTHONPATH=src $(PYTHON) scripts/dump_schema.py --write docs/schema_v1.json
schema:
	$(PYTHON) scripts/dump_schema.py --check docs/schema_v1.json

examples:
	scratch=$$(mktemp -d); for script in $(CURDIR)/examples/*.py; do \
		(cd $$scratch && PYTHONPATH=$(CURDIR)/src $(PYTHON) $$script > /dev/null) || exit 1; \
	done; rm -rf $$scratch
