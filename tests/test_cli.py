"""Tests for the ``vhdl-ifa`` command-line interface."""

import pytest

from repro.cli import main
from repro import workloads
from repro.aes.generator import shift_rows_paper_source


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.vhd"
    path.write_text(workloads.challenge_f_program(), encoding="utf-8")
    return str(path)


@pytest.fixture
def producer_file(tmp_path):
    path = tmp_path / "pc.vhd"
    path.write_text(workloads.producer_consumer_program(), encoding="utf-8")
    return str(path)


class TestAnalyzeCommand:
    def test_adjacency_output(self, design_file, capsys):
        assert main(["analyze", design_file]) == 0
        out = capsys.readouterr().out
        assert "design 'challenge_f'" in out
        assert "plain" in out

    def test_dot_output(self, design_file, capsys):
        assert main(["analyze", design_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_basic_and_straight_line_flags(self, tmp_path, capsys):
        path = tmp_path / "a.vhd"
        path.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert main(["analyze", str(path), "--basic", "--straight-line"]) == 0
        out = capsys.readouterr().out
        assert "a -> b" in out

    def test_collapse_flag(self, tmp_path, capsys):
        path = tmp_path / "sr.vhd"
        path.write_text(shift_rows_paper_source(), encoding="utf-8")
        assert main(["analyze", str(path), "--straight-line", "--collapse"]) == 0
        out = capsys.readouterr().out
        assert "○" not in out and "•" not in out


class TestKemmererCommand:
    def test_kemmerer_output(self, design_file, capsys):
        assert main(["kemmerer", design_file]) == 0
        assert "Kemmerer" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_design_returns_zero(self, design_file, capsys):
        assert main(["check", design_file, "--secret", "key", "--ports-only"]) == 0
        out = capsys.readouterr().out
        assert "leak <- plain" in out

    def test_internal_flow_is_flagged_without_ports_only(self, design_file, capsys):
        # the secret key does flow into the (public) temporary t, so the
        # unrestricted check reports it
        assert main(["check", design_file, "--secret", "key"]) == 1
        assert "key" in capsys.readouterr().out

    def test_leak_returns_nonzero(self, producer_file, capsys):
        assert main(["check", producer_file, "--secret", "left"]) == 1
        assert "violation" in capsys.readouterr().out

    def test_output_flag_restricts_reported_sinks(self, design_file, capsys):
        # key flows into the internal temporary t, but with the sinks
        # restricted to the leak output the check comes back clean
        assert main(["check", design_file, "--secret", "key", "--output", "leak"]) == 0
        out = capsys.readouterr().out
        assert "leak <- plain" in out
        assert "to t" not in out

    def test_unknown_output_is_an_error(self, design_file, capsys):
        assert main(["check", design_file, "--secret", "key", "--output", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope" in err

    def test_source_only_resource_is_rejected_as_output(self, design_file, capsys):
        # `plain` is an input port: nothing flows *into* it, so accepting it
        # as a sink would silently filter away every violation
        assert main(["check", design_file, "--secret", "key", "--output", "plain"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "plain" in err

    def test_basic_flag_disables_environment_nodes(self, design_file, capsys):
        # the improved analysis reports the key○ incoming node as well ...
        assert main(["check", design_file, "--secret", "key"]) == 1
        assert "key○" in capsys.readouterr().out
        # ... the basic (Table 8 only) analysis has no environment nodes
        assert main(["check", design_file, "--secret", "key", "--basic"]) == 1
        assert "key○" not in capsys.readouterr().out

    def test_straight_line_flag_changes_the_verdict(self, tmp_path, capsys):
        # program (a): c := b; b := a.  Looped, the previous iteration's
        # b := a reaches c := b, so the secret a also taints c; analysed as
        # straight-line code (the paper's Figure 3(a) reading) it does not.
        path = tmp_path / "a.vhd"
        path.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert main(["check", str(path), "--secret", "a"]) == 1
        assert "to c" in capsys.readouterr().out
        assert main(["check", str(path), "--secret", "a", "--straight-line"]) == 1
        assert "to c" not in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulation_prints_signal_values(self, producer_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    producer_file,
                    "--set",
                    "left=1100",
                    "--set",
                    "right=1010",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert 'result = "0110"' in out

    def test_malformed_set_reports_error(self, producer_file, capsys):
        assert main(["simulate", producer_file, "--set", "oops"]) == 2
        assert "error" in capsys.readouterr().err


class TestErrorHandling:
    def test_parse_errors_are_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.vhd"
        path.write_text("entity broken is", encoding="utf-8")
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["analyze", "kemmerer", "check", "simulate"])
    def test_missing_file_is_reported_not_raised(self, command, tmp_path, capsys):
        missing = str(tmp_path / "does_not_exist.vhd")
        assert main([command, missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does_not_exist.vhd" in err
        assert len(err.strip().splitlines()) == 1

    def test_unreadable_directory_is_reported_not_raised(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert capsys.readouterr().err.startswith("error:")
