"""Tests for the ``vhdl-ifa`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro import workloads
from repro.aes.generator import shift_rows_paper_source
from repro.semantics.simulator import Simulator


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.vhd"
    path.write_text(workloads.challenge_f_program(), encoding="utf-8")
    return str(path)


@pytest.fixture
def producer_file(tmp_path):
    path = tmp_path / "pc.vhd"
    path.write_text(workloads.producer_consumer_program(), encoding="utf-8")
    return str(path)


class TestAnalyzeCommand:
    def test_adjacency_output(self, design_file, capsys):
        assert main(["analyze", design_file]) == 0
        out = capsys.readouterr().out
        assert "design 'challenge_f'" in out
        assert "plain" in out

    def test_dot_output(self, design_file, capsys):
        assert main(["analyze", design_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_basic_and_straight_line_flags(self, tmp_path, capsys):
        path = tmp_path / "a.vhd"
        path.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert main(["analyze", str(path), "--basic", "--straight-line"]) == 0
        out = capsys.readouterr().out
        assert "a -> b" in out

    def test_collapse_flag(self, tmp_path, capsys):
        path = tmp_path / "sr.vhd"
        path.write_text(shift_rows_paper_source(), encoding="utf-8")
        assert main(["analyze", str(path), "--straight-line", "--collapse"]) == 0
        out = capsys.readouterr().out
        assert "○" not in out and "•" not in out


class TestKemmererCommand:
    def test_kemmerer_output(self, design_file, capsys):
        assert main(["kemmerer", design_file]) == 0
        assert "Kemmerer" in capsys.readouterr().out

    @pytest.fixture
    def loop_file(self, tmp_path):
        path = tmp_path / "loop.vhd"
        path.write_text(workloads.overwriting_loop_program(), encoding="utf-8")
        return str(path)

    def test_self_loops_flag_parity(self, loop_file, capsys):
        # default drops trivial self loops, exactly like `analyze` ...
        assert main(["kemmerer", loop_file]) == 0
        assert "acc -> done" in capsys.readouterr().out
        # ... and --self-loops keeps them
        assert main(["kemmerer", loop_file, "--self-loops"]) == 0
        assert "acc -> acc, done" in capsys.readouterr().out

    def test_collapse_flag_parity(self, loop_file, capsys):
        assert main(["kemmerer", loop_file]) == 0
        default = capsys.readouterr().out
        # Kemmerer's graph has no environment nodes, so collapsing is the
        # identity — but the flag must be accepted, like `analyze`'s.
        assert main(["kemmerer", loop_file, "--collapse"]) == 0
        assert capsys.readouterr().out == default

    def test_dot_with_flags(self, loop_file, capsys):
        assert main(["kemmerer", loop_file, "--self-loops", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_design_returns_zero(self, design_file, capsys):
        assert main(["check", design_file, "--secret", "key", "--ports-only"]) == 0
        out = capsys.readouterr().out
        assert "leak <- plain" in out

    def test_internal_flow_is_flagged_without_ports_only(self, design_file, capsys):
        # the secret key does flow into the (public) temporary t, so the
        # unrestricted check reports it
        assert main(["check", design_file, "--secret", "key"]) == 3
        assert "key" in capsys.readouterr().out

    def test_leak_returns_nonzero(self, producer_file, capsys):
        assert main(["check", producer_file, "--secret", "left"]) == 3
        assert "violation" in capsys.readouterr().out

    def test_output_flag_restricts_reported_sinks(self, design_file, capsys):
        # key flows into the internal temporary t, but with the sinks
        # restricted to the leak output the check comes back clean
        assert main(["check", design_file, "--secret", "key", "--output", "leak"]) == 0
        out = capsys.readouterr().out
        assert "leak <- plain" in out
        assert "to t" not in out

    def test_unknown_output_is_an_error(self, design_file, capsys):
        assert main(["check", design_file, "--secret", "key", "--output", "nope"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nope" in err

    def test_source_only_resource_is_rejected_as_output(self, design_file, capsys):
        # `plain` is an input port: nothing flows *into* it, so accepting it
        # as a sink would silently filter away every violation
        assert main(["check", design_file, "--secret", "key", "--output", "plain"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "plain" in err

    def test_basic_flag_disables_environment_nodes(self, design_file, capsys):
        # the improved analysis reports the key○ incoming node as well ...
        assert main(["check", design_file, "--secret", "key"]) == 3
        assert "key○" in capsys.readouterr().out
        # ... the basic (Table 8 only) analysis has no environment nodes
        assert main(["check", design_file, "--secret", "key", "--basic"]) == 3
        assert "key○" not in capsys.readouterr().out

    def test_straight_line_flag_changes_the_verdict(self, tmp_path, capsys):
        # program (a): c := b; b := a.  Looped, the previous iteration's
        # b := a reaches c := b, so the secret a also taints c; analysed as
        # straight-line code (the paper's Figure 3(a) reading) it does not.
        path = tmp_path / "a.vhd"
        path.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert main(["check", str(path), "--secret", "a"]) == 3
        assert "to c" in capsys.readouterr().out
        assert main(["check", str(path), "--secret", "a", "--straight-line"]) == 3
        assert "to c" not in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulation_prints_signal_values(self, producer_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    producer_file,
                    "--set",
                    "left=1100",
                    "--set",
                    "right=1010",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert 'result = "0110"' in out

    def test_malformed_set_reports_error(self, producer_file, capsys):
        assert main(["simulate", producer_file, "--set", "oops"]) == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_set_fails_before_any_simulation(
        self, producer_file, capsys, monkeypatch
    ):
        # A bad setting in last position must fail *before* the first
        # simulator.run(), not after a full simulation.
        def explode(self, *args, **kwargs):
            raise AssertionError("simulator ran before --set validation")

        monkeypatch.setattr(Simulator, "run", explode)
        assert (
            main(["simulate", producer_file, "--set", "left=1100", "--set", "oops"])
            == 1
        )
        assert "error" in capsys.readouterr().err

    def test_unknown_port_fails_before_any_simulation(
        self, producer_file, capsys, monkeypatch
    ):
        def explode(self, *args, **kwargs):
            raise AssertionError("simulator ran before --set validation")

        monkeypatch.setattr(Simulator, "run", explode)
        assert main(["simulate", producer_file, "--set", "nosuch=1"]) == 1
        assert "unknown signal" in capsys.readouterr().err

    def test_non_input_port_is_rejected(self, producer_file, capsys):
        assert main(["simulate", producer_file, "--set", "result=0000"]) == 1
        assert "not an input port" in capsys.readouterr().err


@pytest.fixture
def workload_files(tmp_path):
    paths = []
    for name, source in workloads.batch_workload_sources():
        path = tmp_path / f"{name}.vhd"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
    return paths


class TestBatchCommand:
    def _expected_output(self, paths, capsys, extra_flags=()):
        """What batch stdout must look like: per-file `analyze` output."""
        chunks = []
        for path in paths:
            assert main(["analyze", path, *extra_flags]) == 0
            chunks.append(f"== {path} ==\n" + capsys.readouterr().out)
        return "".join(chunks)

    @pytest.mark.parametrize("mode_flags", [["--sequential"], ["--jobs", "2"]])
    def test_per_file_output_is_byte_identical_to_analyze(
        self, workload_files, capsys, mode_flags
    ):
        assert len(workload_files) >= 8
        expected = self._expected_output(workload_files, capsys)
        assert main(["batch", *workload_files, *mode_flags]) == 0
        assert capsys.readouterr().out == expected

    def test_flags_are_forwarded_to_every_job(self, workload_files, capsys):
        flags = ["--basic", "--straight-line", "--self-loops"]
        expected = self._expected_output(workload_files[:3], capsys, flags)
        assert main(["batch", *workload_files[:3], "--sequential", *flags]) == 0
        assert capsys.readouterr().out == expected

    def test_all_entities(self, tmp_path, capsys):
        path = tmp_path / "multi.vhd"
        path.write_text(workloads.multi_entity_program(3, 2, 4), encoding="utf-8")
        assert main(["batch", str(path), "--all-entities", "--sequential"]) == 0
        out = capsys.readouterr().out
        for entity in ("chain_0", "chain_1", "chain_2"):
            assert f"== {path}:{entity} ==" in out
            assert f"design '{entity}'" in out

    def test_failures_exit_nonzero_but_keep_going(
        self, workload_files, tmp_path, capsys
    ):
        missing = str(tmp_path / "missing.vhd")
        assert main(["batch", workload_files[0], missing, "--sequential"]) == 2
        captured = capsys.readouterr()
        assert f"== {workload_files[0]} ==" in captured.out
        assert "missing.vhd" in captured.err
        assert "1 failed" in captured.err

    def test_json_output(self, workload_files, capsys):
        assert main(["batch", *workload_files, "--sequential", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "batch"
        assert [job["file"] for job in document["jobs"]] == workload_files
        assert all(job["ok"] for job in document["jobs"])
        assert all("timings" in job for job in document["jobs"])


class TestJsonOutput:
    def test_analyze_json(self, design_file, capsys):
        assert main(["analyze", design_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "analyze"
        assert document["design"] == "challenge_f"
        assert document["summary"]["processes"] == 1
        assert set(document["timings"]) >= {"parse", "elaborate", "closure"}
        assert document["cached_stages"] == []
        # the adjacency must agree with the text rendering's graph
        assert document["graph"]["adjacency"]["key"] == ["t"]

    def test_check_json_clean(self, design_file, capsys):
        assert (
            main(
                ["check", design_file, "--secret", "key", "--output", "leak", "--json"]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["command"] == "check"
        assert document["clean"] is True
        assert document["violations"] == []
        assert document["output_dependencies"]["leak"] == ["plain"]
        assert document["policy"]["secrets"] == ["key"]

    def test_check_json_violation_keeps_exit_code(self, producer_file, capsys):
        assert main(["check", producer_file, "--secret", "left", "--json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is False
        assert any(
            violation["source"].startswith("left")
            for violation in document["violations"]
        )
        assert all(
            violation["code"] == "IFA001" and violation["severity"] == "error"
            and "message" in violation
            for violation in document["violations"]
        )


class TestErrorHandling:
    def test_parse_errors_are_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.vhd"
        path.write_text("entity broken is", encoding="utf-8")
        assert main(["analyze", str(path)]) == 1
        assert "error" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["analyze", "kemmerer", "check", "simulate"])
    def test_missing_file_is_reported_not_raised(self, command, tmp_path, capsys):
        missing = str(tmp_path / "does_not_exist.vhd")
        assert main([command, missing]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "does_not_exist.vhd" in err
        assert len(err.strip().splitlines()) == 1

    def test_unreadable_directory_is_reported_not_raised(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    @pytest.mark.parametrize("command", ["analyze", "kemmerer", "check", "simulate"])
    def test_non_utf8_file_is_reported_not_raised(self, command, tmp_path, capsys):
        path = tmp_path / "binary.vhd"
        path.write_bytes(b"\xff\xfe not text")
        assert main([command, str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestCacheFlags:
    ALL_STAGES = [
        "parse", "elaborate", "cfg", "active", "reaching", "local",
        "specialize", "closure", "flow_graph",
    ]

    def _analyze_json(self, argv, capsys):
        code = main(["analyze", *argv, "--json"])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    def test_cache_dir_persists_across_invocations(self, design_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        cold = self._analyze_json([design_file, "--cache-dir", cache_dir], capsys)
        assert cold["cached_stages"] == []
        # every CLI invocation builds a fresh Pipeline and fresh cache tiers,
        # so this second call is a cold process served purely from disk
        warm = self._analyze_json([design_file, "--cache-dir", cache_dir], capsys)
        assert warm["cached_stages"] == self.ALL_STAGES
        cold.pop("timings"), warm.pop("timings")
        cold.pop("cached_stages"), warm.pop("cached_stages")
        assert warm == cold

    def test_no_cache_bypasses_both_tiers(self, design_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._analyze_json([design_file, "--cache-dir", cache_dir], capsys)
        bypassed = self._analyze_json(
            [design_file, "--cache-dir", cache_dir, "--no-cache"], capsys
        )
        assert bypassed["cached_stages"] == []

    def test_check_shares_the_disk_cache_with_analyze(
        self, design_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        self._analyze_json([design_file, "--cache-dir", cache_dir], capsys)
        assert (
            main(
                ["check", design_file, "--secret", "key", "--output", "leak",
                 "--json", "--cache-dir", cache_dir]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert {"parse", "elaborate", "closure"} <= set(document["cached_stages"])

    def test_batch_cache_dir_serves_a_cold_rerun_from_disk(
        self, workload_files, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        files = workload_files[:3]
        assert main(["batch", *files, "--sequential", "--json",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["batch", *files, "--sequential", "--json",
                     "--cache-dir", cache_dir]) == 0
        document = json.loads(capsys.readouterr().out)
        for job in document["jobs"]:
            assert {"parse", "elaborate", "closure"} <= set(job["cached_stages"])


class TestCacheCommand:
    def test_stats_and_clear_round_trip(self, design_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["analyze", design_file, "--cache-dir", cache_dir]) == 0
        capsys.readouterr()

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["command"] == "cache-stats"
        assert stats["entries"] == 9
        assert stats["stages"]["parse"] == 1

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        text = capsys.readouterr().out
        assert "entries: 9" in text

        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 9 entries" in capsys.readouterr().out

        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_stats_on_an_empty_dir(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "never-used")
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0


class TestParallelBatchNoCache:
    def test_no_cache_reaches_the_pool_workers(self, design_file, capsys):
        # the same file twice on one worker: without the fix the second job
        # was served from the worker's in-memory cache despite --no-cache
        assert main(["batch", design_file, design_file, "--jobs", "1",
                     "--json", "--no-cache"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [job["cached_stages"] for job in document["jobs"]] == [[], []]


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        from repro.version import version

        assert out.strip() == f"vhdl-ifa {version()}"


TWO_LEVEL_TOML = """\
default = "public"

[levels]
public = 0
secret = 1

[resources]
key = "secret"

[[allow]]
from = "public"
to = "secret"
"""


@pytest.fixture
def policy_file(tmp_path):
    path = tmp_path / "two_level.toml"
    path.write_text(TWO_LEVEL_TOML, encoding="utf-8")
    return str(path)


class TestPolicyFileFlag:
    def test_policy_file_matches_secret_flag(self, design_file, policy_file, capsys):
        # the acceptance property: a policy expressed only as TOML drives
        # check --policy to the same violations as the in-code policy
        assert main(["check", design_file, "--policy", policy_file, "--json"]) == 3
        declared = json.loads(capsys.readouterr().out)
        assert main(["check", design_file, "--secret", "key", "--json"]) == 3
        in_code = json.loads(capsys.readouterr().out)
        assert declared["violations"] == in_code["violations"]
        assert declared["clean"] is False
        # the policy member echoes the declarative document
        assert declared["policy"]["levels"] == {"public": 0, "secret": 1}
        assert in_code["policy"] == {"secrets": ["key"]}

    def test_policy_and_secret_are_mutually_exclusive(self, design_file, policy_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", design_file, "--policy", policy_file, "--secret", "key"])
        assert excinfo.value.code == 2

    def test_invalid_policy_file_exits_one_with_context(self, design_file, tmp_path, capsys):
        path = tmp_path / "bad.toml"
        path.write_text('[levels]\npublic = "zero"\n', encoding="utf-8")
        assert main(["check", design_file, "--policy", str(path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:") and "bad.toml" in err

    def test_missing_policy_file_exits_two(self, design_file, tmp_path, capsys):
        missing = str(tmp_path / "nope.toml")
        assert main(["check", design_file, "--policy", missing]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_batch_policy_reports_violations_and_exits_three(
        self, design_file, policy_file, capsys
    ):
        assert main(["batch", design_file, "--sequential", "--policy",
                     policy_file, "--json"]) == 3
        document = json.loads(capsys.readouterr().out)
        assert document["policy"]["levels"] == {"public": 0, "secret": 1}
        [job] = document["jobs"]
        assert job["ok"] is True and job["clean"] is False
        assert job["violations"][0]["code"] == "IFA001"


class TestExitCodeContract:
    def test_batch_analysis_failure_exits_one(self, design_file, tmp_path, capsys):
        broken = tmp_path / "broken.vhd"
        broken.write_text("entity broken is", encoding="utf-8")
        assert main(["batch", design_file, str(broken), "--sequential"]) == 1
        assert "1 failed" in capsys.readouterr().err

    def test_batch_input_failure_beats_analysis_failure(
        self, design_file, tmp_path, capsys
    ):
        broken = tmp_path / "broken.vhd"
        broken.write_text("entity broken is", encoding="utf-8")
        missing = str(tmp_path / "missing.vhd")
        assert main(["batch", design_file, str(broken), missing,
                     "--sequential", "--json"]) == 2
        document = json.loads(capsys.readouterr().out)
        kinds = [job.get("error_kind") for job in document["jobs"]]
        assert kinds == [None, "analysis", "input"]


class TestSchemaStamp:
    def test_cli_json_documents_carry_the_schema(self, design_file, tmp_path, capsys):
        assert main(["analyze", design_file, "--json"]) == 0
        analyze_doc = json.loads(capsys.readouterr().out)
        assert main(["check", design_file, "--secret", "key", "--json"]) == 3
        check_doc = json.loads(capsys.readouterr().out)
        assert main(["batch", design_file, "--sequential", "--json"]) == 0
        batch_doc = json.loads(capsys.readouterr().out)
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir, "--json"]) == 0
        cache_doc = json.loads(capsys.readouterr().out)
        for document in (analyze_doc, check_doc, batch_doc, cache_doc):
            assert list(document)[0] == "schema"
            assert document["schema"] == "vhdl-ifa/v1"


class TestCheckModeFlags:
    def test_direct_overrides_a_transitive_policy_file(
        self, design_file, tmp_path, capsys
    ):
        transitive = tmp_path / "t.toml"
        transitive.write_text(
            'mode = "transitive"\n' + TWO_LEVEL_TOML, encoding="utf-8"
        )
        assert main(["check", design_file, "--policy", str(transitive), "--json"]) == 3
        via_mode = json.loads(capsys.readouterr().out)
        assert main(["check", design_file, "--policy", str(transitive),
                     "--direct", "--json"]) == 3
        via_direct = json.loads(capsys.readouterr().out)
        # the transitive check reports strictly more violating pairs
        assert len(via_mode["violations"]) > len(via_direct["violations"])

    def test_transitive_and_direct_are_mutually_exclusive(self, design_file):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", design_file, "--secret", "key",
                  "--transitive", "--direct"])
        assert excinfo.value.code == 2

    def test_batch_policy_rejects_graph_flags(self, design_file, policy_file, capsys):
        assert main(["batch", design_file, "--sequential", "--policy",
                     policy_file, "--dot"]) == 2
        assert "--dot" in capsys.readouterr().err
