"""Tests for the ``vhdl-ifa`` command-line interface."""

import pytest

from repro.cli import main
from repro import workloads
from repro.aes.generator import shift_rows_paper_source


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "design.vhd"
    path.write_text(workloads.challenge_f_program(), encoding="utf-8")
    return str(path)


@pytest.fixture
def producer_file(tmp_path):
    path = tmp_path / "pc.vhd"
    path.write_text(workloads.producer_consumer_program(), encoding="utf-8")
    return str(path)


class TestAnalyzeCommand:
    def test_adjacency_output(self, design_file, capsys):
        assert main(["analyze", design_file]) == 0
        out = capsys.readouterr().out
        assert "design 'challenge_f'" in out
        assert "plain" in out

    def test_dot_output(self, design_file, capsys):
        assert main(["analyze", design_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_basic_and_straight_line_flags(self, tmp_path, capsys):
        path = tmp_path / "a.vhd"
        path.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert main(["analyze", str(path), "--basic", "--straight-line"]) == 0
        out = capsys.readouterr().out
        assert "a -> b" in out

    def test_collapse_flag(self, tmp_path, capsys):
        path = tmp_path / "sr.vhd"
        path.write_text(shift_rows_paper_source(), encoding="utf-8")
        assert main(["analyze", str(path), "--straight-line", "--collapse"]) == 0
        out = capsys.readouterr().out
        assert "○" not in out and "•" not in out


class TestKemmererCommand:
    def test_kemmerer_output(self, design_file, capsys):
        assert main(["kemmerer", design_file]) == 0
        assert "Kemmerer" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_design_returns_zero(self, design_file, capsys):
        assert main(["check", design_file, "--secret", "key", "--ports-only"]) == 0
        out = capsys.readouterr().out
        assert "leak <- plain" in out

    def test_internal_flow_is_flagged_without_ports_only(self, design_file, capsys):
        # the secret key does flow into the (public) temporary t, so the
        # unrestricted check reports it
        assert main(["check", design_file, "--secret", "key"]) == 1
        assert "key" in capsys.readouterr().out

    def test_leak_returns_nonzero(self, producer_file, capsys):
        assert main(["check", producer_file, "--secret", "left"]) == 1
        assert "violation" in capsys.readouterr().out


class TestSimulateCommand:
    def test_simulation_prints_signal_values(self, producer_file, capsys):
        assert (
            main(
                [
                    "simulate",
                    producer_file,
                    "--set",
                    "left=1100",
                    "--set",
                    "right=1010",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert 'result = "0110"' in out

    def test_malformed_set_reports_error(self, producer_file, capsys):
        assert main(["simulate", producer_file, "--set", "oops"]) == 2
        assert "error" in capsys.readouterr().err


class TestErrorHandling:
    def test_parse_errors_are_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.vhd"
        path.write_text("entity broken is", encoding="utf-8")
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err
