"""Tests for AST helpers: free variables/signals, walking, type widths."""

from repro.vhdl import ast
from repro.vhdl.elaborate import elaborate_source
from repro.vhdl.parser import parse_expression, parse_statements


def _resolved_process(source: str):
    return elaborate_source(source).processes[0]


MIXED = """
entity mixed is
  port( sig_in  : in std_logic_vector(3 downto 0);
        sig_out : out std_logic_vector(3 downto 0) );
end mixed;

architecture a of mixed is
  signal internal : std_logic_vector(3 downto 0);
begin
  p : process
    variable v : std_logic_vector(3 downto 0);
    variable w : std_logic_vector(3 downto 0);
  begin
    v := sig_in xor internal;
    if v(0) = '1' then
      w := v;
    else
      w := "0000";
    end if;
    internal <= w;
    sig_out <= w;
    wait on sig_in;
  end process p;
end a;
"""


class TestTypeNodes:
    def test_scalar_width_is_none(self):
        assert ast.StdLogicType().width is None

    def test_vector_width(self):
        downto = ast.StdLogicVectorType(left=7, right=0)
        assert downto.width == 8
        to_range = ast.StdLogicVectorType(
            left=0, right=7, direction=ast.RangeDirection.TO
        )
        assert to_range.width == 8

    def test_normalized_swaps_to_ranges(self):
        to_range = ast.StdLogicVectorType(
            left=0, right=7, direction=ast.RangeDirection.TO
        )
        normalized = to_range.normalized()
        assert normalized.direction is ast.RangeDirection.DOWNTO
        assert (normalized.left, normalized.right) == (7, 0)

    def test_normalized_keeps_downto_untouched(self):
        downto = ast.StdLogicVectorType(left=7, right=0)
        assert downto.normalized() is downto


class TestFreeNames:
    def test_free_names_of_expression(self):
        expr = parse_expression("(a xor b(3 downto 0)) and not c")
        assert ast.free_names(expr) == {"a", "b", "c"}

    def test_free_names_of_none(self):
        assert ast.free_names(None) == set()

    def test_unresolved_names_have_no_kind(self):
        expr = parse_expression("a xor b")
        assert ast.free_variables_expr(expr) == set()
        assert ast.free_signals_expr(expr) == set()

    def test_resolved_expression_separates_kinds(self):
        process = _resolved_process(MIXED)
        first_assignment = process.body[0]
        assert ast.free_variables_expr(first_assignment.value) == set()
        assert ast.free_signals_expr(first_assignment.value) == {"sig_in", "internal"}

    def test_statement_level_free_variables(self):
        process = _resolved_process(MIXED)
        assert ast.free_variables_stmt(process.body) == {"v", "w"}

    def test_statement_level_free_signals(self):
        process = _resolved_process(MIXED)
        assert ast.free_signals_stmt(process.body) == {
            "sig_in",
            "sig_out",
            "internal",
        }

    def test_written_variables_and_signals(self):
        process = _resolved_process(MIXED)
        assert ast.written_variables(process.body) == {"v", "w"}
        assert ast.written_signals(process.body) == {"internal", "sig_out"}


class TestWalking:
    def test_iter_statements_recurses_into_branches(self):
        statements = parse_statements(
            "if a = '1' then x := b; else y := c; end if; while d = '1' loop z := e; end loop;"
        )
        kinds = [type(s).__name__ for s in ast.iter_statements(statements)]
        assert kinds == [
            "If",
            "VariableAssign",
            "VariableAssign",
            "While",
            "VariableAssign",
        ]

    def test_statement_count(self):
        statements = parse_statements("x := a; if a = '1' then y := b; end if;")
        # x := a, the if guard, y := b and the implicit null else branch
        assert ast.statement_count(statements) == 4


class TestProgramHelpers:
    def test_process_free_sets(self):
        design = elaborate_source(MIXED)
        process = design.processes[0]
        assert process.free_signals() == {"sig_in", "sig_out", "internal"}
        assert process.free_variables() == {"v", "w"}

    def test_design_resource_names(self):
        design = elaborate_source(MIXED)
        assert set(design.resource_names()) == {
            "sig_in",
            "sig_out",
            "internal",
            "v",
            "w",
        }
        assert design.input_ports == ["sig_in"]
        assert design.output_ports == ["sig_out"]
        assert design.internal_signals == ["internal"]
