"""Structural front end of hierarchical designs (``repro.hier.structure``).

Covers the parse forms (component declarations, named and positional port
maps), the resolved :class:`DesignHierarchy` shape, the textual
``may_instantiate`` gate, and every structural error path — all of which
raise :class:`~repro.errors.HierarchyError`, a subclass of the flat
pipeline's :class:`~repro.errors.ElaborationError` (so the CLI exit code is
unchanged).
"""

import pytest

from repro import workloads
from repro.errors import ElaborationError, HierarchyError
from repro.hier import (
    build_hierarchy,
    has_instantiations,
    may_instantiate,
)
from repro.vhdl import ast
from repro.vhdl.parser import parse_program


LEAF = """
entity leaf is
  port( a : in std_logic;
        q : out std_logic );
end leaf;

architecture rtl of leaf is
begin
  q <= (not a);
end rtl;
"""

COMPONENT = """
  component leaf is
    port( a : in std_logic;
          q : out std_logic );
  end component leaf;
"""


def top(body, declarations="", ports=None):
    """A root entity around ``body``, with the leaf component in scope."""
    ports = ports or "x : in std_logic;\n        y : out std_logic"
    return (
        LEAF
        + f"""
entity top is
  port( {ports} );
end top;

architecture rtl of top is
{COMPONENT}
{declarations}
begin
{body}
end rtl;
"""
    )


class TestDetection:
    def test_textual_gate_is_sound_for_flat_sources(self):
        # ``may_instantiate`` returning False guarantees no instantiations;
        # every flat workload must stay on the fast path.
        for name, source in workloads.batch_workload_sources():
            assert not may_instantiate(source), name
            assert not has_instantiations(parse_program(source)), name

    def test_textual_gate_fires_on_every_hierarchy_workload(self):
        for name, source in workloads.hierarchy_workload_sources():
            assert may_instantiate(source), name
            assert has_instantiations(parse_program(source)), name

    def test_gate_is_only_a_may_analysis(self):
        # A comment mentioning "port map" trips the gate; the parse-level
        # check is what decides.
        source = workloads.paper_program_a() + "\n-- port map discussion\n"
        assert may_instantiate(source)
        assert not has_instantiations(parse_program(source))


class TestResolution:
    def test_mux_workload_resolves(self):
        program = parse_program(workloads.hierarchical_mux_program())
        hierarchy = build_hierarchy(program)
        assert hierarchy.root == "mux_top"
        # bottom-up order: the leaf entity precedes the root
        assert [name.lower() for name in hierarchy.order] == ["stage", "mux_top"]
        root = hierarchy.root_unit
        assert [inst.label for inst in root.instances] == ["u1", "u2"]

    def test_positional_and_named_maps_normalise_identically(self):
        program = parse_program(workloads.hierarchical_mux_program())
        u1, u2 = build_hierarchy(program).root_unit.instances
        # u1 is named, u2 positional; both come out in port declaration order
        assert [formal for formal, _ in u1.bindings] == ["a", "b", "y"]
        assert [formal for formal, _ in u2.bindings] == ["a", "b", "y"]
        assert dict(u1.bindings) == {"a": "hi", "b": "sel", "y": "n1"}
        assert dict(u2.bindings) == {"a": "lo", "b": "sel", "y": "n2"}

    def test_three_level_hierarchy_counts_instances(self):
        program = parse_program(
            workloads.hierarchical_bus_program(banks=2, cells_per_bank=2, depth=3)
        )
        hierarchy = build_hierarchy(program)
        # 2 banks + 2*2 cells = 6 instances in the expanded tree
        assert hierarchy.instance_count() == 6

    def test_explicit_root_selects_a_subtree(self):
        program = parse_program(workloads.hierarchical_mux_program())
        hierarchy = build_hierarchy(program, "stage")
        assert hierarchy.root == "stage"
        assert hierarchy.root_unit.instances == []

    def test_hierarchy_error_is_an_elaboration_error(self):
        assert issubclass(HierarchyError, ElaborationError)


class TestErrorPaths:
    def check(self, source, *fragments, entity=None):
        with pytest.raises(HierarchyError) as excinfo:
            build_hierarchy(parse_program(source), entity)
        message = str(excinfo.value)
        for fragment in fragments:
            assert fragment in message, message

    def test_unknown_component(self):
        # the unresolvable component also defeats root inference, so the
        # root is explicit here
        source = top("  u1 : ghost port map (x, y);")
        self.check(source, "unknown component 'ghost'", entity="top")

    def test_component_without_entity(self):
        source = top(
            "  u1 : phantom port map (x, y);",
            declarations=(
                "  component phantom is\n"
                "    port( a : in std_logic;\n"
                "          q : out std_logic );\n"
                "  end component phantom;"
            ),
        )
        self.check(
            source, "'phantom' does not name a declared entity", entity="top"
        )

    def test_component_entity_interface_mismatch(self):
        source = top(
            "  u1 : leaf port map (x, y);",
        ).replace("q : out std_logic );\n  end component", "p : out std_logic );\n  end component")
        self.check(source, "does not match entity 'leaf'")

    def test_too_many_associations(self):
        source = top("  u1 : leaf port map (x, y, x);")
        self.check(source, "3 associations", "2 ports")

    def test_unknown_formal(self):
        source = top("  u1 : leaf port map (a => x, z => y);")
        self.check(source, "unknown formal port 'z'")

    def test_formal_bound_twice(self):
        source = top("  u1 : leaf port map (a => x, a => y);")
        self.check(source, "formal port 'a' bound twice")

    def test_unbound_formal(self):
        source = top("  u1 : leaf port map (a => x);")
        self.check(source, "unbound formal port(s) 'q'")

    def test_positional_after_named_is_a_parse_error(self):
        # the grammar itself rejects this form, before structure ever sees it
        from repro.errors import ParseError

        source = top("  u1 : leaf port map (a => x, y);")
        with pytest.raises(ParseError, match="positional association"):
            parse_program(source)

    def test_actual_must_be_a_signal_of_the_parent(self):
        source = top("  u1 : leaf port map (nosuch, y);")
        self.check(source, "'nosuch'", "not a signal of the enclosing architecture")

    def test_duplicate_instance_label(self):
        source = top(
            "  u1 : leaf port map (x, n1);\n  u1 : leaf port map (x, y);",
            declarations="  signal n1 : std_logic;",
        )
        self.check(source, "duplicate instance label 'u1'")

    def test_out_port_aliasing_is_rejected(self):
        # binding an out formal and another formal to one actual conflates
        # the kill sets; both analysis routes refuse it up front
        source = top(
            "  u1 : leaf port map (n1, n1);",
            declarations="  signal n1 : std_logic;",
        )
        self.check(source, "aliasing a written port is not supported")

    def test_in_in_aliasing_is_allowed(self):
        source = (
            """
entity leaf2 is
  port( a : in std_logic;
        b : in std_logic;
        q : out std_logic );
end leaf2;

architecture rtl of leaf2 is
begin
  q <= (a and b);
end rtl;

entity top is
  port( x : in std_logic;
        y : out std_logic );
end top;

architecture rtl of top is
  component leaf2 is
    port( a : in std_logic;
          b : in std_logic;
          q : out std_logic );
  end component leaf2;
begin
  u1 : leaf2 port map (x, x, y);
end rtl;
"""
        )
        hierarchy = build_hierarchy(parse_program(source))
        assert dict(hierarchy.root_unit.instances[0].bindings) == {
            "a": "x",
            "b": "x",
            "q": "y",
        }

    def test_write_to_own_in_port(self):
        source = LEAF.replace("q <= (not a);", "q <= (not a);\n  a <= q;")
        self.check(source, "entity 'leaf'", "assigns to input port 'a'")

    def test_instantiation_cycle(self):
        source = """
entity a is
  port( x : in std_logic;
        y : out std_logic );
end a;

architecture rtl of a is
  component b is
    port( x : in std_logic;
          y : out std_logic );
  end component b;
begin
  u1 : b port map (x, y);
end rtl;

entity b is
  port( x : in std_logic;
        y : out std_logic );
end b;

architecture rtl of b is
  component a is
    port( x : in std_logic;
          y : out std_logic );
  end component a;
begin
  u1 : a port map (x, y);
end rtl;
"""
        with pytest.raises(HierarchyError) as excinfo:
            build_hierarchy(parse_program(source), "a")
        assert "instantiation cycle: a -> b -> a" in str(excinfo.value)

    def test_ambiguous_root(self):
        # two independent designs in one file: the root cannot be inferred
        source = workloads.hierarchical_mux_program().replace(
            "mux_top", "alt_top", 0
        )
        doubled = (
            workloads.hierarchical_mux_program()
            + workloads.hierarchical_mux_program()
            .replace("mux_top", "alt_top")
            .replace("stage", "stage2")
            .replace("u1", "v1")
            .replace("u2", "v2")
        )
        with pytest.raises(HierarchyError) as excinfo:
            build_hierarchy(parse_program(doubled))
        assert "ambiguous root entity" in str(excinfo.value)
        # but an explicit entity still resolves either one
        assert build_hierarchy(parse_program(doubled), "alt_top").root == "alt_top"

    def test_duplicate_component_declaration(self):
        source = top("  u1 : leaf port map (x, y);", declarations=COMPONENT)
        self.check(source, "duplicate component declaration 'leaf'")


class TestNormalisation:
    def test_blocks_are_spliced_and_declarations_hoisted(self):
        source = top(
            """  blk : block
    signal inner : std_logic;
  begin
    u1 : leaf port map (inner, y);
    inner <= x;
  end block blk;""",
        )
        unit = build_hierarchy(parse_program(source)).root_unit
        assert [decl.name for decl in unit.signals] == ["inner"]
        assert [inst.label for inst in unit.instances] == ["u1"]
        assert len(unit.leaves) == 1
        assert isinstance(unit.leaves[0], ast.ConcurrentAssign)
