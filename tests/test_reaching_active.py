"""Tests for the active-signals Reaching Definitions analysis (Table 4)."""

from repro.analysis.reaching_active import (
    analyze_active_signals,
    analyze_all_active_signals,
    gen_active,
    kill_active,
)
from repro.cfg.builder import build_cfg
from repro.cfg.labels import BlockKind
from repro.vhdl.elaborate import elaborate_source


def cfg_of(source, process="p", loop=True):
    design = elaborate_source(source)
    return build_cfg(design, loop_processes=loop).processes[process]


STRAIGHT = """
entity e is port( a : in std_logic; s : out std_logic; t : out std_logic ); end e;
architecture arch of e is
begin
  p : process
  begin
    s <= a;
    t <= a;
    s <= a;
    wait on a;
  end process p;
end arch;
"""


BRANCHING = """
entity e is port( a : in std_logic; c : in std_logic; s : out std_logic; t : out std_logic ); end e;
architecture arch of e is
begin
  p : process
  begin
    if c = '1' then
      s <= a;
    else
      t <= a;
    end if;
    wait on a, c;
  end process p;
end arch;
"""


class TestKillGen:
    def test_signal_assignment_generates_its_own_pair(self):
        cfg = cfg_of(STRAIGHT)
        first = min(label for label, b in cfg.blocks.items() if b.kind is BlockKind.SIGNAL_ASSIGN)
        assert gen_active(cfg.blocks[first]) == {("s", first)}

    def test_signal_assignment_kills_other_assignments_to_same_signal(self):
        cfg = cfg_of(STRAIGHT)
        s_labels = sorted(cfg.assignment_labels_of_signal("s"))
        killed = kill_active(cfg.blocks[s_labels[0]], cfg)
        assert ("s", s_labels[0]) in killed
        assert ("s", s_labels[1]) in killed
        assert all(signal == "s" for signal, _ in killed)

    def test_wait_kills_every_active_definition(self):
        cfg = cfg_of(STRAIGHT)
        wait_label = next(iter(cfg.wait_labels))
        killed = kill_active(cfg.blocks[wait_label], cfg)
        assert killed == {
            (block.statement.target, label)
            for label, block in cfg.blocks.items()
            if block.kind is BlockKind.SIGNAL_ASSIGN
        }

    def test_other_blocks_are_identity(self):
        cfg = cfg_of(STRAIGHT)
        null_label = cfg.entry_label
        assert kill_active(cfg.blocks[null_label], cfg) == frozenset()
        assert gen_active(cfg.blocks[null_label]) == frozenset()


class TestStraightLineProcess:
    def test_last_assignment_wins_at_the_wait(self):
        cfg = cfg_of(STRAIGHT)
        result = analyze_active_signals(cfg)
        wait_label = next(iter(cfg.wait_labels))
        s_labels = sorted(cfg.assignment_labels_of_signal("s"))
        t_labels = sorted(cfg.assignment_labels_of_signal("t"))
        assert result.over_entry_of(wait_label) == {
            ("s", s_labels[1]),
            ("t", t_labels[0]),
        }

    def test_over_equals_under_without_branching(self):
        cfg = cfg_of(STRAIGHT)
        result = analyze_active_signals(cfg)
        for label in cfg.blocks:
            assert result.over_entry_of(label) == result.under_entry_of(label)

    def test_nothing_is_active_after_the_wait(self):
        cfg = cfg_of(STRAIGHT)
        result = analyze_active_signals(cfg)
        wait_label = next(iter(cfg.wait_labels))
        assert result.over_exit[wait_label] == frozenset()

    def test_entry_of_process_is_empty(self):
        cfg = cfg_of(STRAIGHT)
        result = analyze_active_signals(cfg)
        assert result.over_entry_of(cfg.entry_label) == frozenset()
        assert result.under_entry_of(cfg.entry_label) == frozenset()


class TestBranchingProcess:
    def test_over_approximation_unions_the_branches(self):
        cfg = cfg_of(BRANCHING)
        result = analyze_active_signals(cfg)
        wait_label = next(iter(cfg.wait_labels))
        assert result.may_be_active_at(wait_label) == {"s", "t"}

    def test_under_approximation_intersects_the_branches(self):
        cfg = cfg_of(BRANCHING)
        result = analyze_active_signals(cfg)
        wait_label = next(iter(cfg.wait_labels))
        assert result.must_be_active_at(wait_label) == frozenset()

    def test_under_is_always_a_subset_of_over(self):
        cfg = cfg_of(BRANCHING)
        result = analyze_active_signals(cfg)
        for label in cfg.blocks:
            assert result.under_entry_of(label) <= result.over_entry_of(label)


class TestMultipleProcesses:
    def test_analysis_is_per_process(self, producer_consumer_design):
        program_cfg = build_cfg(producer_consumer_design)
        results = analyze_all_active_signals(program_cfg.processes)
        assert set(results) == {"producer", "consumer"}
        producer_cfg = program_cfg.processes["producer"]
        consumer_cfg = program_cfg.processes["consumer"]
        producer_wait = next(iter(producer_cfg.wait_labels))
        consumer_wait = next(iter(consumer_cfg.wait_labels))
        assert results["producer"].may_be_active_at(producer_wait) == {"link"}
        assert results["consumer"].may_be_active_at(consumer_wait) == {"result"}
        # a process knows nothing about the other process's labels
        assert results["consumer"].over_entry_of(producer_wait) == frozenset()
