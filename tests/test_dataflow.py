"""Tests for the generic Monotone Framework machinery."""

import pytest

from repro.dataflow.framework import DataflowInstance, JoinMode
from repro.dataflow.worklist import solve


def make_instance(join_mode=JoinMode.UNION, **overrides):
    """A small diamond CFG: 1 -> 2, 1 -> 3, 2 -> 4, 3 -> 4."""
    settings = dict(
        labels=frozenset({1, 2, 3, 4}),
        flow=frozenset({(1, 2), (1, 3), (2, 4), (3, 4)}),
        extremal_labels=frozenset({1}),
        extremal_value={1: frozenset({"init"})},
        kill={},
        gen={2: frozenset({"left"}), 3: frozenset({"right"})},
        join_mode=join_mode,
    )
    settings.update(overrides)
    return DataflowInstance(**settings)


class TestInstanceValidation:
    def test_flow_must_mention_known_labels(self):
        with pytest.raises(ValueError):
            make_instance(flow=frozenset({(1, 99)}))

    def test_extremal_labels_must_be_known(self):
        with pytest.raises(ValueError):
            make_instance(extremal_labels=frozenset({42}))

    def test_transfer_applies_kill_then_gen(self):
        instance = make_instance(
            kill={2: frozenset({"init"})}, gen={2: frozenset({"left"})}
        )
        assert instance.transfer(2, frozenset({"init"})) == frozenset({"left"})

    def test_join_union(self):
        instance = make_instance()
        assert instance.join([frozenset({"a"}), frozenset({"b"})]) == {"a", "b"}
        assert instance.join([]) == frozenset()

    def test_join_dotted_intersection(self):
        instance = make_instance(join_mode=JoinMode.INTERSECTION_DOTTED)
        assert instance.join([frozenset({"a", "b"}), frozenset({"b", "c"})]) == {"b"}
        # the dotted intersection of the empty family is the empty set
        assert instance.join([]) == frozenset()


class TestWorklistSolver:
    def test_union_analysis_on_diamond(self):
        solution = solve(make_instance())
        assert solution.entry_of(1) == {"init"}
        assert solution.exit_of(2) == {"init", "left"}
        assert solution.exit_of(3) == {"init", "right"}
        assert solution.entry_of(4) == {"init", "left", "right"}

    def test_intersection_analysis_on_diamond(self):
        solution = solve(make_instance(join_mode=JoinMode.INTERSECTION_DOTTED))
        # only the facts common to both branches survive at the join point
        assert solution.entry_of(4) == {"init"}

    def test_kill_removes_facts(self):
        instance = make_instance(kill={4: frozenset({"init", "left", "right"})})
        solution = solve(instance)
        assert solution.exit_of(4) == frozenset()

    def test_loop_reaches_fixpoint(self):
        instance = DataflowInstance(
            labels=frozenset({1, 2, 3}),
            flow=frozenset({(1, 2), (2, 3), (3, 2)}),
            extremal_labels=frozenset({1}),
            extremal_value={1: frozenset({"seed"})},
            kill={},
            gen={3: frozenset({"loop"})},
            join_mode=JoinMode.UNION,
        )
        solution = solve(instance)
        assert solution.entry_of(2) == {"seed", "loop"}
        assert solution.exit_of(3) == {"seed", "loop"}

    def test_under_approximation_subset_of_over_approximation(self):
        over = solve(make_instance())
        under = solve(make_instance(join_mode=JoinMode.INTERSECTION_DOTTED))
        for label in (1, 2, 3, 4):
            assert under.entry_of(label) <= over.entry_of(label)
            assert under.exit_of(label) <= over.exit_of(label)

    def test_unknown_label_lookup_defaults_to_empty(self):
        solution = solve(make_instance())
        assert solution.entry_of(999) == frozenset()
        assert solution.exit_of(999) == frozenset()

    def test_iteration_count_is_reported(self):
        solution = solve(make_instance())
        assert solution.iterations >= 4
