"""Tests for the structural operational semantics (simulator, Tables 1–3)."""

import pytest

from repro.errors import SimulationError
from repro.semantics.expressions import evaluate_expression, is_false, is_true
from repro.semantics.simulator import Simulator, simulate
from repro.semantics.state import SignalStore, VariableStore, default_value
from repro.vhdl import ast
from repro.vhdl.elaborate import elaborate_source
from repro.vhdl.parser import parse_expression
from repro.vhdl.stdlogic import StdLogic, StdLogicVector
from repro import workloads


class TestStores:
    def test_default_values_are_uninitialised(self):
        assert default_value(ast.StdLogicType()) == StdLogic("U")
        assert default_value(ast.StdLogicVectorType(left=3, right=0)) == "UUUU"

    def test_variable_store_read_write(self):
        from repro.vhdl.elaborate import VariableInfo

        store = VariableStore({"x": VariableInfo("x", ast.StdLogicType())})
        assert store.read("x") == StdLogic("U")
        store.write("x", StdLogic("1"))
        assert store.read("x") == StdLogic("1")
        with pytest.raises(SimulationError):
            store.read("ghost")
        with pytest.raises(SimulationError):
            store.write("ghost", StdLogic("1"))

    def test_variable_store_slice_write(self):
        from repro.vhdl.elaborate import VariableInfo

        store = VariableStore(
            {"v": VariableInfo("v", ast.StdLogicVectorType(left=3, right=0))}
        )
        store.write("v", StdLogicVector.from_string("0000"))
        store.write_slice("v", 3, 2, StdLogicVector.from_string("11"))
        assert store.read("v") == "1100"

    def test_signal_store_present_and_active(self):
        from repro.vhdl.elaborate import SignalInfo

        store = SignalStore({"s": SignalInfo("s", ast.StdLogicType())})
        assert store.present("s") == StdLogic("U")
        assert store.active("s") is None
        assert not store.is_active()
        store.set_active("s", StdLogic("1"))
        assert store.is_active()
        assert store.present("s") == StdLogic("U")  # active values are not visible yet
        store.clear_active()
        assert not store.is_active()


EXPRESSION_FIXTURE = """
entity e is
  port( s : in std_logic_vector(7 downto 0); b : in std_logic; y : out std_logic ); end e;
architecture a of e is
begin
  p : process
    variable v : std_logic_vector(7 downto 0);
  begin
    v := s;
    y <= b;
    wait on s, b;
  end process p;
end a;
"""


class TestExpressionEvaluation:
    def _stores(self):
        design = elaborate_source(EXPRESSION_FIXTURE)
        process = design.processes[0]
        variables = VariableStore(process.variables)
        signals = SignalStore(design.signals)
        variables.write("v", StdLogicVector.from_string("10110001"))
        signals.set_present("s", StdLogicVector.from_string("00001111"))
        signals.set_present("b", StdLogic("1"))
        return variables, signals

    def _eval(self, text):
        variables, signals = self._stores()
        expr = parse_expression(text)
        # mimic elaboration's name resolution for the fixture's names
        for node in [expr] if not isinstance(expr, ast.BinaryOp) else [expr.left, expr.right]:
            pass
        return evaluate_expression(expr, variables, signals)

    def test_literals(self):
        assert self._eval("'1'") == StdLogic("1")
        assert self._eval('"1010"') == "1010"

    def test_variable_and_signal_lookup_fall_back_without_kinds(self):
        assert self._eval("v") == "10110001"
        assert self._eval("s") == "00001111"

    def test_slices_and_indexing(self):
        assert self._eval("v(7 downto 4)") == "1011"
        assert self._eval("v(0)") == StdLogic("1")

    def test_logic_operators(self):
        assert self._eval("v and s") == "00000001"
        assert self._eval("v xor s") == "10111110"
        assert self._eval("not b") == StdLogic("0")

    def test_comparisons(self):
        assert self._eval("v = v") == StdLogic("1")
        assert self._eval("v /= s") == StdLogic("1")
        assert self._eval("s < v") == StdLogic("1")
        assert self._eval("s >= v") == StdLogic("0")

    def test_concatenation_and_arithmetic(self):
        assert self._eval("v(3 downto 0) & s(3 downto 0)") == "00011111"
        assert self._eval('s + "00000001"') == "00010000"
        assert self._eval('s - "00010000"') == "11111111"

    def test_condition_helpers(self):
        assert is_true(StdLogic("1")) and not is_true(StdLogic("0"))
        assert is_false(StdLogic("0")) and not is_false(StdLogic("X"))
        assert is_true(StdLogicVector.from_string("01"))
        assert is_false(StdLogicVector.from_string("00"))


class TestSimulatorBasics:
    def test_combinational_process(self):
        design = elaborate_source(workloads.producer_consumer_program())
        outputs = simulate(design, {"left": "1100", "right": "1010"})
        assert outputs["result"] == "0110"

    def test_drive_requires_an_input_port(self):
        design = elaborate_source(workloads.producer_consumer_program())
        simulator = Simulator(design)
        with pytest.raises(SimulationError):
            simulator.drive("result", "0000")
        with pytest.raises(SimulationError):
            simulator.drive("ghost", "0000")

    def test_drive_coercions(self):
        design = elaborate_source(workloads.producer_consumer_program())
        simulator = Simulator(design)
        simulator.run()
        simulator.drive("left", 12)          # integer
        simulator.drive("right", "1010")     # bit string
        simulator.run()
        assert simulator.read_signal("result") == "0110"

    def test_conditional_program(self):
        design = elaborate_source(workloads.conditional_program())
        assert simulate(design, {"sel": "1", "a": "1", "b": "0"})["y"] == StdLogic("1")
        assert simulate(design, {"sel": "0", "a": "1", "b": "0"})["y"] == StdLogic("0")

    def test_while_loop_program(self):
        design = elaborate_source(workloads.overwriting_loop_program())
        outputs = simulate(design, {"start": "1", "data": "0101"})
        # acc = data, then xored with data three times: data ^ data ^ data ^ data = 0
        assert outputs["done"] == "0000"
        outputs = simulate(design, {"start": "0", "data": "0101"})
        assert outputs["done"] == "0000"

    def test_overwritten_secret_never_reaches_output(self):
        design = elaborate_source(workloads.challenge_f_program())
        out_a = simulate(design, {"key": "11111111", "plain": "00110011"})
        out_b = simulate(design, {"key": "00000000", "plain": "00110011"})
        assert out_a["leak"] == out_b["leak"] == "00110011"

    def test_delta_cycle_counting_and_trace(self):
        design = elaborate_source(workloads.producer_consumer_program())
        simulator = Simulator(design)
        simulator.run()
        before = simulator.delta_cycles
        simulator.drive("left", "1111")
        simulator.drive("right", "0000")
        simulator.run()
        assert simulator.delta_cycles > before
        assert len(simulator.trace) == simulator.delta_cycles
        assert simulator.trace.history_of("result")

    def test_variables_are_process_local(self):
        design = elaborate_source(workloads.producer_consumer_program())
        simulator = Simulator(design)
        simulator.drive("left", "1100")
        simulator.drive("right", "0011")
        simulator.run()
        assert simulator.read_variable("producer", "mixed") == "1111"
        with pytest.raises(SimulationError):
            simulator.read_variable("consumer", "mixed")
        with pytest.raises(SimulationError):
            simulator.read_variable("ghost", "mixed")

    def test_quiescence_without_stimulus(self):
        design = elaborate_source(workloads.producer_consumer_program())
        simulator = Simulator(design)
        first = simulator.run()
        again = simulator.run()
        assert again == 0  # nothing active any more

    def test_runaway_process_is_detected(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
        begin
          p : process
            variable v : std_logic;
          begin
            v := a;
          end process p;
        end arch;
        """
        design = elaborate_source(source)
        simulator = Simulator(design, max_steps_per_activation=100)
        with pytest.raises(SimulationError):
            simulator.run()

    def test_straight_line_mode_stops_after_one_pass(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
        begin
          p : process
            variable v : std_logic;
          begin
            v := a;
          end process p;
        end arch;
        """
        design = elaborate_source(source)
        simulator = Simulator(design, loop_processes=False)
        simulator.run()
        assert simulator.read_variable("p", "v") == StdLogic("U")


class TestSynchronisation:
    def test_resolution_of_multiple_drivers(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal shared : std_logic;
        begin
          d1 : process begin shared <= '1'; wait on a; end process d1;
          d2 : process begin shared <= 'Z'; wait on a; end process d2;
          obs : process begin y <= shared; wait on shared; end process obs;
        end arch;
        """
        design = elaborate_source(source)
        outputs = simulate(design, {"a": "1"})
        assert outputs["shared"] == StdLogic("1")

    def test_conflicting_drivers_resolve_to_unknown(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal shared : std_logic;
        begin
          d1 : process begin shared <= '1'; wait on a; end process d1;
          d2 : process begin shared <= '0'; wait on a; end process d2;
          obs : process begin y <= shared; wait on shared; end process obs;
        end arch;
        """
        design = elaborate_source(source)
        outputs = simulate(design, {"a": "1"})
        assert outputs["shared"] == StdLogic("X")

    def test_wait_until_condition_gates_resumption(self):
        source = """
        entity e is port( d : in std_logic; en : in std_logic; q : out std_logic ); end e;
        architecture arch of e is
        begin
          p : process
          begin
            q <= d;
            wait on d until en = '1';
          end process p;
        end arch;
        """
        design = elaborate_source(source)
        simulator = Simulator(design)
        simulator.run()
        # enable low: driving d does not wake the process beyond the first pass
        simulator.drive("en", "0")
        simulator.drive("d", "1")
        simulator.run()
        first = simulator.read_signal("q")
        simulator.drive("d", "0")
        simulator.run()
        assert simulator.read_signal("q") == first  # still the old value
        # enable high: a change on d now propagates
        simulator.drive("en", "1")
        simulator.drive("d", "1")
        simulator.run()
        assert simulator.read_signal("q") == StdLogic("1")

    def test_pipeline_propagates_through_delta_cycles(self):
        from repro.aes.generator import aes_round_source
        from repro.aes.reference import (
            add_round_key,
            shift_rows,
            state_to_bitstring,
            bitstring_to_state,
        )

        design = elaborate_source(aes_round_source())
        state = list(range(16))
        key = [0xA5] * 16
        outputs = simulate(
            design,
            {"state_i": state_to_bitstring(state), "key_i": state_to_bitstring(key)},
        )
        expected = shift_rows(add_round_key(state, key))
        assert bitstring_to_state(outputs["state_o"].to_string()) == expected
