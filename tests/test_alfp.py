"""Cross-check: the ALFP encoding must agree with the direct closure code."""

import pytest

from repro.analysis import alfp
from repro.analysis.api import analyze
from repro.analysis.resource_matrix import Access
from repro import workloads
from repro.aes.generator import (
    aes_round_source,
    shift_rows_paper_source,
    sub_bytes_source,
)

WORKLOADS = {
    "program_a": (workloads.paper_program_a(), False),
    "program_b": (workloads.paper_program_b(), False),
    "producer_consumer": (workloads.producer_consumer_program(), True),
    "conditional": (workloads.conditional_program(), True),
    "challenge_f": (workloads.challenge_f_program(), True),
    "loop": (workloads.overwriting_loop_program(), True),
    "shift_rows": (shift_rows_paper_source(), False),
    "sub_bytes": (sub_bytes_source(), True),
    "aes_round": (aes_round_source(), True),
}


def _solver_matrix(result, improved):
    return alfp.closure_via_solver(
        result.program_cfg,
        result.rm_local,
        result.active,
        result.reaching,
        result.design,
        improved=improved,
    )


class TestAgreementWithDirectImplementation:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_improved_closure_agrees(self, name):
        source, loop = WORKLOADS[name]
        result = analyze(source, improved=True, loop_processes=loop)
        assert _solver_matrix(result, improved=True) == result.rm_global

    @pytest.mark.parametrize("name", ["program_a", "producer_consumer", "aes_round"])
    def test_basic_closure_agrees(self, name):
        source, loop = WORKLOADS[name]
        result = analyze(source, improved=False, loop_processes=loop)
        assert _solver_matrix(result, improved=False) == result.rm_global


class TestEncodingDetails:
    def test_improved_encoding_requires_the_design(self):
        result = analyze(workloads.paper_program_b(), loop_processes=False)
        with pytest.raises(ValueError):
            alfp.encode(
                result.program_cfg,
                result.rm_local,
                result.active,
                result.reaching,
                design=None,
                improved=True,
            )

    def test_database_contains_specialisation_relations(self):
        result = analyze(workloads.producer_consumer_program(), improved=True)
        engine = alfp.encode(
            result.program_cfg,
            result.rm_local,
            result.active,
            result.reaching,
            result.design,
            improved=True,
        )
        database = engine.solve()
        assert database.relation(alfp.RD_DAGGER)
        assert database.relation(alfp.RD_DAGGER_PHI)
        assert database.relation(alfp.RM_GL)

    def test_resource_matrix_reader_preserves_access_kinds(self):
        result = analyze(workloads.producer_consumer_program(), improved=True)
        matrix = _solver_matrix(result, improved=True)
        kinds = {entry.access for entry in matrix}
        assert {Access.R0, Access.R1, Access.M0, Access.M1} <= kinds
