"""Fault-injection tests for the supervised serve mode and batch driver.

These tests drive the acceptance criteria of the fault-tolerant serve work:
with a deterministically injected worker hang, the request times out with a
structured 5xx while concurrent requests on other workers still return
byte-identical ``vhdl-ifa/v1`` responses; a killed worker is recycled and
serves subsequent requests; over-capacity requests are shed with ``429`` +
``Retry-After``; identical concurrent requests are single-flighted; corrupt
cache entries are recovered from, not served; and ``GET /metrics`` reflects
every one of those events.  All faults are injected via
:mod:`repro.pipeline.faults` — nothing here depends on timing luck to make
a worker misbehave.
"""

import json
import http.client
import socket
import threading
import time

import pytest

from repro import workloads
from repro.cli import main
from repro.pipeline import (
    AnalysisServer,
    ArtifactCache,
    DiskArtifactCache,
    FaultPlan,
    Pipeline,
    ServerThread,
    TieredArtifactCache,
    json_text,
    run_batch,
)
from repro.pipeline.batch import BatchJob
from repro.pipeline.faults import FAULTS_ENV, FaultInjector

VOLATILE_FIELDS = ("timings", "cached_stages")


def _request(port, method, path, payload=None, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None if payload is None else json.dumps(payload)
    connection.request(method, path, body=body)
    response = connection.getresponse()
    return response.status, response.read().decode("utf-8"), dict(
        response.getheaders()
    )


def _normalised(document_text):
    document = json.loads(document_text)
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return json_text(document) + "\n"


def _marked(marker):
    """A healthy workload whose digest (and fault trigger) carries ``marker``."""
    return workloads.challenge_f_program() + f"\n-- {marker}\n"


def _metrics(port):
    _, body, _ = _request(port, "GET", "/metrics")
    return json.loads(body)


class TestWorkerTimeoutRecycling:
    """A hung worker times out, is recycled, and the service never dies."""

    def test_hang_times_out_while_other_workers_answer(self, tmp_path, capsys):
        plan = FaultPlan(delay_seconds=30.0, match="hang_this_request")
        design = tmp_path / "design.vhd"
        design.write_text(workloads.challenge_f_program(), encoding="utf-8")
        with ServerThread(
            AnalysisServer(
                port=0,
                workers=2,
                timeout=2.0,
                faults=plan,
                cache=None,
                workspace=None,
            )
        ) as server:
            outcomes = {}

            def hung():
                outcomes["hung"] = _request(
                    server.port,
                    "POST",
                    "/analyze",
                    {"source": _marked("hang_this_request")},
                )

            hang_thread = threading.Thread(target=hung)
            hang_thread.start()
            time.sleep(0.3)  # the hang is admitted and occupying its worker

            # A concurrent healthy request on the other worker answers,
            # byte-identical to the CLI.
            status, served, _ = _request(
                server.port, "POST", "/analyze", {"file": str(design)}
            )
            assert status == 200
            assert main(["analyze", str(design), "--json"]) == 0
            printed = capsys.readouterr().out
            assert _normalised(served) == _normalised(printed)

            hang_thread.join(timeout=30)
            status, body, _ = outcomes["hung"]
            assert status == 504
            document = json.loads(body)
            assert document["schema"] == "vhdl-ifa/v1"
            assert "budget" in document["error"]

            # The recycled worker serves subsequent requests.
            status, again, _ = _request(
                server.port, "POST", "/analyze", {"file": str(design)}
            )
            assert status == 200
            assert _normalised(again) == _normalised(served)

            metrics = _metrics(server.port)
            assert metrics["timeouts"] >= 1
            assert metrics["worker_restarts"] >= 1
            assert metrics["workers"]["alive"] == 2
            assert metrics["in_flight"] == 0


class TestWorkerCrashRecovery:
    """A worker killed mid-request yields a structured 500, then recovers."""

    def test_crashed_worker_is_respawned(self, tmp_path):
        plan = FaultPlan(crash=True, match="crash_this_request")
        with ServerThread(
            AnalysisServer(port=0, workers=1, timeout=30.0, faults=plan)
        ) as server:
            status, body, _ = _request(
                server.port,
                "POST",
                "/analyze",
                {"source": _marked("crash_this_request")},
            )
            assert status == 500
            document = json.loads(body)
            assert document["schema"] == "vhdl-ifa/v1"
            assert "died" in document["error"]

            # The single (recycled) worker still answers.
            status, body, _ = _request(
                server.port,
                "POST",
                "/analyze",
                {"source": workloads.challenge_f_program()},
            )
            assert status == 200
            assert json.loads(body)["design"] == "challenge_f"

            metrics = _metrics(server.port)
            assert metrics["worker_crashes"] >= 1
            assert metrics["worker_restarts"] >= 1
            assert metrics["workers"]["alive"] == 1


class TestLoadShedding:
    """Over-capacity requests get 429 + Retry-After, never an unbounded queue."""

    def test_queue_full_is_429_with_retry_after(self, tmp_path):
        plan = FaultPlan(delay_seconds=1.5, match="slow_marker")
        with ServerThread(
            AnalysisServer(
                port=0, workers=1, timeout=30.0, queue_depth=2, faults=plan
            )
        ) as server:
            results = []

            def slow(marker):
                results.append(
                    _request(
                        server.port, "POST", "/analyze", {"source": _marked(marker)}
                    )
                )

            threads = [
                threading.Thread(target=slow, args=(f"slow_marker_{tag}",))
                for tag in ("a", "b")
            ]
            for thread in threads:
                thread.start()
                time.sleep(0.15)
            time.sleep(0.2)  # both slow requests are admitted

            status, body, headers = _request(
                server.port,
                "POST",
                "/analyze",
                {"source": workloads.challenge_f_program()},
            )
            assert status == 429
            document = json.loads(body)
            assert document["schema"] == "vhdl-ifa/v1"
            assert document["retry_after"] == 1
            assert headers.get("Retry-After") == "1"

            for thread in threads:
                thread.join(timeout=60)
            assert [status for status, _, _ in results] == [200, 200]

            metrics = _metrics(server.port)
            assert metrics["shed"] >= 1
            assert metrics["in_flight"] == 0


class TestSingleFlight:
    """N identical concurrent requests run one analysis, get N responses."""

    def test_identical_requests_coalesce(self):
        plan = FaultPlan(delay_seconds=1.0, match="dedup_marker")
        source = _marked("dedup_marker")
        with ServerThread(
            AnalysisServer(port=0, workers=2, timeout=30.0, faults=plan)
        ) as server:
            bodies = [None] * 4

            def fire(slot):
                status, body, _ = _request(
                    server.port, "POST", "/analyze", {"source": source}
                )
                bodies[slot] = (status, body)

            leader = threading.Thread(target=fire, args=(0,))
            leader.start()
            time.sleep(0.3)  # the leader is in flight before the followers
            followers = [
                threading.Thread(target=fire, args=(slot,)) for slot in (1, 2, 3)
            ]
            for thread in followers:
                thread.start()
            leader.join(timeout=60)
            for thread in followers:
                thread.join(timeout=60)

            statuses = {status for status, _ in bodies}
            assert statuses == {200}
            # Followers share the leader's analysis: every response is the
            # same bytes, including the run-dependent timings.
            assert len({body for _, body in bodies}) == 1

            metrics = _metrics(server.port)
            assert metrics["dedup_hits"] == 3
            assert metrics["in_flight"] == 0


class TestCorruptCacheRecovery:
    """Torn cache entries under serve are evicted and recomputed, not served."""

    def test_corrupt_entries_recompute_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        design = tmp_path / "design.vhd"
        design.write_text(workloads.producer_consumer_program(), encoding="utf-8")
        # Populate the shared disk tier with a clean cold run.
        warm_cache = TieredArtifactCache(
            ArtifactCache(), DiskArtifactCache(cache_dir)
        )
        Pipeline(warm_cache).run(design.read_text(encoding="utf-8"))

        from repro.workspace import Workspace

        plan = FaultPlan(corrupt_cache_reads=True)
        workspace = Workspace(cache_dir=cache_dir)
        with ServerThread(
            AnalysisServer(
                port=0, workspace=workspace, workers=1, timeout=60.0, faults=plan
            )
        ) as server:
            status, served, _ = _request(
                server.port, "POST", "/analyze", {"file": str(design)}
            )
            assert status == 200
            assert main(["analyze", str(design), "--json"]) == 0
            printed = capsys.readouterr().out
            assert _normalised(served) == _normalised(printed)


class TestRequestHardening:
    """Bad requests are rejected on the event loop, never costing a worker."""

    def test_oversized_body_is_413_without_touching_a_worker(self):
        with ServerThread(
            AnalysisServer(port=0, workers=1, timeout=30.0, max_body_bytes=1024)
        ) as server:
            big = {"source": "x" * 4096}
            status, body, _ = _request(server.port, "POST", "/analyze", big)
            assert status == 413
            assert "limit" in json.loads(body)["error"]
            metrics = _metrics(server.port)
            # The rejected request was never admitted.
            assert metrics["in_flight"] == 0
            assert metrics["requests"].get("POST /analyze", 0) == 0

            status, body, _ = _request(
                server.port,
                "POST",
                "/analyze",
                {"source": workloads.challenge_f_program()},
            )
            assert status == 200

    def test_non_json_body_is_400_in_pool_mode(self):
        with ServerThread(
            AnalysisServer(port=0, workers=1, timeout=30.0)
        ) as server:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=60
            )
            connection.request("POST", "/analyze", body=b"{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())

    def test_client_disconnect_does_not_leak_a_slot(self):
        plan = FaultPlan(delay_seconds=1.0, match="abandoned_marker")
        with ServerThread(
            AnalysisServer(
                port=0, workers=1, timeout=30.0, queue_depth=1, faults=plan
            )
        ) as server:
            body = json.dumps({"source": _marked("abandoned_marker")}).encode()
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /analyze HTTP/1.1\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
            # The client is gone; the admitted request still completes and
            # must release its slot.
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                if _metrics(server.port)["in_flight"] == 0:
                    break
                time.sleep(0.1)
            metrics = _metrics(server.port)
            assert metrics["in_flight"] == 0

            # With queue_depth=1 a leaked slot would shed this request.
            status, _, _ = _request(
                server.port,
                "POST",
                "/analyze",
                {"source": workloads.challenge_f_program()},
            )
            assert status == 200


class TestHealthAndDrain:
    def test_healthz_reports_pool_state(self):
        with ServerThread(
            AnalysisServer(port=0, workers=1, timeout=30.0)
        ) as server:
            status, body, _ = _request(server.port, "GET", "/healthz")
            assert status == 200
            document = json.loads(body)
            assert document["schema"] == "vhdl-ifa/v1"
            assert document["status"] == "ok"
            assert document["mode"] == "pool"
            assert document["workers"]["configured"] == 1

    def test_healthz_is_503_while_draining(self):
        server = AnalysisServer(port=0)
        server.draining = True
        status, document = server._healthz()
        assert status == 503
        assert document["status"] == "draining"

    def test_drain_stops_accepting_and_shuts_down(self):
        import asyncio

        async def scenario():
            server = AnalysisServer(port=0, cache=ArtifactCache())
            await server.start()
            port = server.port
            await server.drain(grace=1.0)
            assert server._server is None
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=1).close()

        asyncio.run(scenario())


class TestBatchBrokenPoolRecovery:
    """A job that kills its worker breaks neither the batch nor its peers."""

    @pytest.fixture
    def designs(self, tmp_path):
        paths = {}
        for name in ("alpha", "poison_job", "omega"):
            path = tmp_path / f"{name}.vhd"
            path.write_text(workloads.challenge_f_program(), encoding="utf-8")
            paths[name] = str(path)
        return paths

    def test_poisonous_job_becomes_a_worker_error_item(self, designs, monkeypatch):
        monkeypatch.setenv(
            FAULTS_ENV, FaultPlan(crash=True, match="poison_job").to_env()
        )
        jobs = [BatchJob(path=designs[name]) for name in ("alpha", "poison_job", "omega")]
        report = run_batch(jobs, parallel=True, max_workers=2)
        by_name = {item.job.path: item for item in report.items}
        assert by_name[designs["alpha"]].ok
        assert by_name[designs["omega"]].ok
        poisoned = by_name[designs["poison_job"]]
        assert not poisoned.ok
        assert poisoned.error_kind == "worker"
        assert "died" in poisoned.error
        assert report.exit_code == 1
        # Submission order is preserved, casualties and all.
        assert [item.job.path for item in report.items] == [
            designs["alpha"], designs["poison_job"], designs["omega"]
        ]

    def test_repeated_crash_is_reported_not_raised(self, designs, monkeypatch):
        # ``once`` disarms per process, but the retry runs in a *fresh*
        # process whose injector re-arms from the same env — the job crashes
        # its pool twice and must surface as an error item, never as an
        # exception out of run_batch.
        monkeypatch.setenv(
            FAULTS_ENV,
            FaultPlan(crash=True, match="poison_job", once=True).to_env(),
        )
        jobs = [BatchJob(path=designs["poison_job"])]
        report = run_batch(jobs, parallel=True, max_workers=1)
        item = report.items[0]
        assert not item.ok
        assert item.error_kind == "worker"

    def test_batch_without_faults_is_unaffected(self, designs):
        jobs = [BatchJob(path=designs["alpha"]), BatchJob(path=designs["omega"])]
        report = run_batch(jobs, parallel=True, max_workers=2)
        assert report.ok
        assert report.exit_code == 0


class TestFaultPlanEnv:
    def test_round_trips_through_the_environment(self):
        plan = FaultPlan(delay_seconds=0.5, crash=True, match="m", once=True)
        restored = FaultPlan.from_env({FAULTS_ENV: plan.to_env()})
        assert restored == plan

    def test_malformed_env_is_ignored(self):
        assert FaultPlan.from_env({FAULTS_ENV: "{broken"}) is None
        assert FaultPlan.from_env({FAULTS_ENV: "[1, 2]"}) is None
        assert FaultPlan.from_env({}) is None

    def test_injector_match_and_once_semantics(self):
        injector = FaultInjector(FaultPlan(delay_seconds=0.0, crash=False,
                                           corrupt_cache_reads=True,
                                           match="needle", once=True))
        assert not injector._triggers("haystack")
        assert injector._triggers("a needle here")
        assert injector.fired == 1
        # once=True disarms after the first trigger
        assert not injector._triggers("another needle")
        assert injector.fired == 1


class TestRecordedErrorContracts:
    """The committed contract corpus pins every fault body field-by-field.

    Live reproduction of the 429/504 paths (which needs a saturated or hung
    pool) is exercised by the corpus replay in ``tests/test_contracts.py``;
    here we assert the *recorded* documents directly so a producer edit to
    any error string or field shows up as a one-line test diff, and replay
    the cheap 413 path against a live server to tie the two together.
    """

    @pytest.fixture(scope="class")
    def pacts(self):
        from pathlib import Path

        from repro.contract import Corpus

        corpus = Corpus.load(
            Path(__file__).resolve().parent / "contract" / "pacts"
        )
        return {interaction.description: interaction for interaction in corpus}

    def test_413_body_is_pinned_field_by_field(self, pacts):
        recorded = pacts["analyze oversized body"]
        assert recorded.response["status"] == 413
        document = recorded.response["document"]
        assert sorted(document) == ["error", "schema"]
        assert document["schema"] == "vhdl-ifa/v1"
        assert document["error"] == (
            "request body of 4122 bytes exceeds the 2048-byte limit"
        )
        # nothing volatile in an error body: the contract pins every field
        assert recorded.matchers == {}

    def test_429_body_is_pinned_field_by_field(self, pacts):
        recorded = pacts["analyze shed at capacity"]
        assert recorded.response["status"] == 429
        document = recorded.response["document"]
        assert sorted(document) == ["error", "retry_after", "schema"]
        assert document["schema"] == "vhdl-ifa/v1"
        assert document["error"] == (
            "server at capacity (1 requests admitted); retry later"
        )
        assert document["retry_after"] == 1
        assert recorded.matchers == {}

    def test_504_body_is_pinned_field_by_field(self, pacts):
        recorded = pacts["analyze hung worker times out"]
        assert recorded.response["status"] == 504
        document = recorded.response["document"]
        assert sorted(document) == ["error", "schema"]
        assert document["schema"] == "vhdl-ifa/v1"
        assert document["error"] == (
            "analysis exceeded the 1s request budget; the worker was recycled"
        )
        assert recorded.matchers == {}

    def test_live_413_matches_the_recording_exactly(self, pacts):
        from repro.contract.profiles import PROFILES, boot

        recorded = pacts["analyze oversized body"]
        with boot(PROFILES["limits"], mode="inline") as server:
            status, body, headers = _request(
                server.port,
                recorded.request["method"],
                recorded.request["path"],
                recorded.request["body"],
            )
        assert status == recorded.response["status"]
        assert json.loads(body) == recorded.response["document"]
        # rejected before the body is read: no interaction id is stamped
        assert "X-Interaction-Id" not in headers
