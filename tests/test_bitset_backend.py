"""Equivalence of the bitset engines with their set-based oracles.

The production pipeline runs on interned bitsets (``dataflow.worklist.solve``,
``analysis.closure.propagate``); the original frozenset/entry-at-a-time
implementations are kept as oracles (``solve_sets``, ``propagate_naive``).
These tests assert both backends compute identical ``RD∪ϕ`` / ``RD∩ϕ`` /
``RDcf`` solutions and identical ``RM_gl`` / flow graphs on the paper
programs, the AES rounds and randomized synthetic programs, plus unit-level
properties of the :class:`FactUniverse` interner and the dotted intersection.
"""

import json
import random

import pytest

import repro.analysis.closure as closure_mod
import repro.analysis.improved as improved_mod
import repro.analysis.reaching_active as reaching_active_mod
import repro.analysis.reaching_defs as reaching_defs_mod
from repro import workloads
from repro.aes.generator import aes_round_source, shift_rows_paper_source
from repro.analysis.api import analyze
from repro.analysis.closure import propagate, propagate_naive
from repro.analysis.flowgraph import FlowGraph, resource_matrix_edges
from repro.analysis.resource_matrix import Access, Entry, ResourceMatrix
from repro.dataflow import bitset
from repro.dataflow.framework import DataflowInstance, JoinMode
from repro.dataflow.universe import FactUniverse, bit_indices
from repro.dataflow.worklist import solve, solve_sets

WORKLOADS = [
    pytest.param(workloads.paper_program_a(), {"loop_processes": False}, id="paper-a"),
    pytest.param(workloads.paper_program_b(), {"loop_processes": False}, id="paper-b"),
    pytest.param(workloads.challenge_f_program(), {}, id="challenge-f"),
    pytest.param(workloads.producer_consumer_program(), {}, id="producer-consumer"),
    pytest.param(workloads.conditional_program(), {}, id="conditional"),
    pytest.param(workloads.two_phase_program(), {}, id="two-phase"),
    pytest.param(workloads.overwriting_loop_program(), {}, id="overwriting-loop"),
    pytest.param(workloads.synthetic_chain_program(3, 5), {}, id="chain-3x5"),
    pytest.param(shift_rows_paper_source(), {"loop_processes": False}, id="shiftrows"),
    pytest.param(aes_round_source(), {}, id="aes-round"),
]


class TestFactUniverse:
    def test_intern_round_trip(self):
        universe = FactUniverse()
        facts = [("x", 1), ("y", 2), ("x", 1), "plain"]
        indices = [universe.intern(fact) for fact in facts]
        assert indices == [0, 1, 0, 2]
        assert len(universe) == 3
        for fact in facts:
            assert universe.fact_of(universe.index_of(fact)) == fact
        assert list(universe) == [("x", 1), ("y", 2), "plain"]

    def test_encode_decode_round_trip_randomized(self):
        rng = random.Random(7)
        pool = [f"fact_{i}" for i in range(200)]
        universe = FactUniverse(pool)
        for _ in range(50):
            subset = frozenset(rng.sample(pool, rng.randint(0, len(pool))))
            bits = universe.encode(subset)
            assert universe.decode(bits) == subset
            assert bits.bit_count() == len(subset)

    def test_decode_list_agrees_with_decode_iter_dense_and_sparse(self):
        universe = FactUniverse(range(300))
        dense = (1 << 300) - 1
        sparse = (1 << 5) | (1 << 150) | (1 << 299)
        for bits in (0, 1, dense, sparse):
            assert universe.decode_list(bits) == list(universe.decode_iter(bits))

    def test_encode_known_rejects_unknown_facts(self):
        universe = FactUniverse(["a"])
        assert universe.encode_known(["a"]) == 1
        with pytest.raises(KeyError):
            universe.encode_known(["b"])
        assert "b" not in universe  # encode_known must not intern


class TestDottedIntersectionOverEmptyFamilies:
    """The paper's ``⋂˙``: a join over no predecessors yields ∅, not ⊤."""

    def _instance(self, join_mode):
        # Label 2 is not extremal and has no incoming edges: its entry is the
        # join over the empty family.  Label 3 joins 1 and 2.
        return DataflowInstance(
            labels=frozenset({1, 2, 3}),
            flow=frozenset({(1, 3), (2, 3)}),
            extremal_labels=frozenset({1}),
            extremal_value={1: frozenset({"seed"})},
            kill={},
            gen={2: frozenset({"other"})},
            join_mode=join_mode,
        )

    def test_join_api_on_empty_family(self):
        instance = self._instance(JoinMode.INTERSECTION_DOTTED)
        assert instance.join([]) == frozenset()

    @pytest.mark.parametrize("engine", [solve, solve_sets], ids=["bitset", "sets"])
    def test_no_predecessor_label_gets_empty_entry(self, engine):
        solution = engine(self._instance(JoinMode.INTERSECTION_DOTTED))
        assert solution.entry_of(2) == frozenset()
        assert solution.exit_of(2) == frozenset({"other"})
        # the join at 3 intersects {"seed"} with {"other"}: nothing survives
        assert solution.entry_of(3) == frozenset()

    def test_engines_agree_on_both_modes(self):
        for mode in JoinMode:
            fast = solve(self._instance(mode))
            slow = solve_sets(self._instance(mode))
            assert fast.entry == slow.entry
            assert fast.exit == slow.exit


def random_instance(rng: random.Random) -> DataflowInstance:
    n_labels = rng.randint(1, 12)
    labels = frozenset(range(n_labels))
    flow = frozenset(
        (rng.randrange(n_labels), rng.randrange(n_labels))
        for _ in range(rng.randint(0, 3 * n_labels))
    )
    pool = [f"d{i}" for i in range(rng.randint(1, 8))]

    def random_facts():
        return frozenset(rng.sample(pool, rng.randint(0, len(pool))))

    extremal = frozenset(rng.sample(range(n_labels), rng.randint(1, n_labels)))
    return DataflowInstance(
        labels=labels,
        flow=flow,
        extremal_labels=extremal,
        extremal_value={label: random_facts() for label in extremal},
        kill={label: random_facts() for label in labels},
        gen={label: random_facts() for label in labels},
        join_mode=rng.choice(list(JoinMode)),
    )


class TestSolverEquivalence:
    @pytest.mark.parametrize("seed", range(40))
    def test_engines_agree_on_random_instances(self, seed):
        instance = random_instance(random.Random(seed))
        fast = solve(instance)
        slow = solve_sets(instance)
        assert fast.entry == slow.entry
        assert fast.exit == slow.exit

    @pytest.mark.parametrize("processes,assignments", [(1, 3), (2, 2), (3, 6), (4, 4)])
    def test_engines_agree_on_synthetic_chains(self, processes, assignments):
        from repro.analysis.reaching_active import _build_instance
        from repro.cfg.builder import build_cfg
        from repro.vhdl.elaborate import elaborate_source

        design = elaborate_source(
            workloads.synthetic_chain_program(processes, assignments)
        )
        program_cfg = build_cfg(design)
        for cfg in program_cfg.processes.values():
            for mode in JoinMode:
                instance = _build_instance(cfg, mode)
                fast = solve(instance)
                slow = solve_sets(instance)
                assert fast.entry == slow.entry
                assert fast.exit == slow.exit


class TestPropagateEquivalence:
    def _random_closure_problem(self, rng: random.Random):
        labels = list(range(rng.randint(1, 15)))
        names = [f"n{i}" for i in range(6)]
        seeds = [
            Entry(rng.choice(names), rng.choice(labels), rng.choice(list(Access)))
            for _ in range(rng.randint(0, 30))
        ]
        copy_edges = {}
        for _ in range(rng.randint(0, 3 * len(labels))):
            copy_edges.setdefault(rng.choice(labels), set()).add(rng.choice(labels))
        return seeds, copy_edges

    @pytest.mark.parametrize("seed", range(40))
    def test_propagate_matches_naive_on_random_graphs(self, seed):
        seeds, copy_edges = self._random_closure_problem(random.Random(seed))
        assert propagate(seeds, copy_edges) == propagate_naive(seeds, copy_edges)

    def test_propagate_accepts_matrix_seeds(self):
        matrix = ResourceMatrix(
            [Entry("a", 1, Access.R0), Entry("x", 2, Access.M0)]
        )
        closed = propagate(matrix, {1: {2}, 2: {1}})
        assert closed == propagate_naive(matrix, {1: {2}, 2: {1}})
        assert Entry("a", 2, Access.R0) in closed
        # seeds are not mutated
        assert Entry("a", 2, Access.R0) not in matrix

    def test_self_loop_edges_are_harmless(self):
        seeds = [Entry("a", 1, Access.R0)]
        edges = {1: {1, 2}}
        assert propagate(seeds, edges) == propagate_naive(seeds, edges)


class TestPipelineEquivalence:
    """The whole analysis, bitset backend vs. set-based oracle backend."""

    def _reference_backend(self, monkeypatch):
        monkeypatch.setattr(reaching_defs_mod, "solve", solve_sets)
        monkeypatch.setattr(reaching_active_mod, "solve", solve_sets)
        monkeypatch.setattr(closure_mod, "propagate", propagate_naive)
        monkeypatch.setattr(improved_mod, "propagate", propagate_naive)

    @pytest.mark.parametrize("source,kwargs", WORKLOADS)
    @pytest.mark.parametrize("improved", [True, False], ids=["improved", "basic"])
    def test_rm_global_and_graph_identical(self, monkeypatch, source, kwargs, improved):
        fast = analyze(source, improved=improved, **kwargs)
        self._reference_backend(monkeypatch)
        slow = analyze(source, improved=improved, **kwargs)
        assert fast.reaching.entry == slow.reaching.entry
        assert fast.reaching.exit == slow.reaching.exit
        for name, fast_active in fast.active.items():
            slow_active = slow.active[name]
            assert fast_active.over_entry == slow_active.over_entry
            assert fast_active.under_entry == slow_active.under_entry
        assert fast.specialized.present == slow.specialized.present
        assert fast.specialized.active == slow.specialized.active
        assert fast.rm_global == slow.rm_global
        assert fast.graph.nodes == slow.graph.nodes
        assert fast.graph.edges == slow.graph.edges

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_chains_identical(self, monkeypatch, seed):
        rng = random.Random(seed)
        source = workloads.synthetic_chain_program(
            rng.randint(1, 4), rng.randint(1, 8)
        )
        fast = analyze(source, improved=True)
        self._reference_backend(monkeypatch)
        slow = analyze(source, improved=True)
        assert fast.rm_global == slow.rm_global
        assert fast.graph.edges == slow.graph.edges


class TestBitIndices:
    @pytest.mark.parametrize(
        "bits", [0, 1, (1 << 300) - 1, (1 << 5) | (1 << 150) | (1 << 299)]
    )
    def test_matches_naive_decomposition(self, bits):
        assert bit_indices(bits) == [
            i for i in range(bits.bit_length()) if bits >> i & 1
        ]


class TestFlowGraphOracle:
    """Bitset-native FlowGraph vs. the materialised-edge-set construction."""

    def _oracle(self, matrix, include_self_loops=True):
        return FlowGraph.from_edges(
            resource_matrix_edges(matrix, include_self_loops=include_self_loops),
            nodes=matrix.names(),
        )

    @pytest.mark.parametrize("source,kwargs", WORKLOADS)
    @pytest.mark.parametrize("improved", [True, False], ids=["improved", "basic"])
    def test_byte_identical_renderings_on_workloads(self, source, kwargs, improved):
        result = analyze(source, improved=improved, **kwargs)
        graph = result.graph
        oracle = self._oracle(result.rm_global)
        assert graph.to_dot() == oracle.to_dot()
        assert graph.to_adjacency() == oracle.to_adjacency()
        assert graph.edges == oracle.edges
        assert graph.nodes == oracle.nodes
        assert graph == oracle

    def test_byte_identical_renderings_on_8xN_chain(self):
        result = analyze(workloads.synthetic_chain_program(8, 12), improved=True)
        graph = result.graph
        oracle = self._oracle(result.rm_global)
        assert graph.to_dot() == oracle.to_dot()
        assert graph.to_adjacency() == oracle.to_adjacency()
        assert graph.edge_count() == oracle.edge_count()

    def test_self_loop_exclusion_matches_oracle(self):
        result = analyze(workloads.challenge_f_program(), improved=True)
        graph = FlowGraph.from_resource_matrix(
            result.rm_global, include_self_loops=False
        )
        oracle = self._oracle(result.rm_global, include_self_loops=False)
        # the oracle drops isolated nodes' self-loops but keeps the nodes
        assert graph.edges == oracle.edges
        assert graph.to_adjacency() == oracle.to_adjacency()

    def test_graph_algebra_agrees_with_oracle(self):
        result = analyze(workloads.producer_consumer_program(), improved=True)
        graph = result.graph
        oracle = self._oracle(result.rm_global)
        assert (
            graph.transitive_closure().edges == oracle.transitive_closure().edges
        )
        assert graph.is_transitive() == oracle.is_transitive()
        assert (
            graph.collapse_environment_nodes().edges
            == oracle.collapse_environment_nodes().edges
        )
        for node in sorted(graph.nodes):
            assert graph.successors(node) == oracle.successors(node)
            assert graph.predecessors(node) == oracle.predecessors(node)
            assert graph.reachable_from(node) == oracle.reachable_from(node)


class TestWordBackend:
    """The word-packed (numpy) backend vs. the Python-int backend.

    Both are production backends behind :mod:`repro.dataflow.bitset`;
    whichever :data:`~repro.dataflow.bitset.DEFAULT_SELECTION` picks, the
    other must stay byte-for-byte equivalent — asserted here on the raw
    sweep results, on the rendered documents of all eight paper workloads,
    and on the pack/unpack round-trip itself.
    """

    def _closure_problem(self, source, **kwargs):
        result = analyze(source, **kwargs)
        copy_edges = closure_mod.merge_edges(
            closure_mod.present_value_edges(result.specialized),
            closure_mod.synchronized_value_edges(
                result.program_cfg, result.specialized
            ),
        )
        return result, copy_edges

    def test_pack_unpack_round_trip(self):
        if not bitset.HAVE_WORD_BACKEND:
            pytest.skip("numpy not available")
        rng = random.Random(11)
        for _ in range(50):
            value = rng.getrandbits(rng.randint(0, 700))
            words = bitset.words_for(max(value.bit_length(), 1))
            assert bitset.unpack(bitset.pack(value, words)) == value

    def test_words_for_boundaries(self):
        assert bitset.words_for(0) == 1
        assert bitset.words_for(1) == 1
        assert bitset.words_for(64) == 1
        assert bitset.words_for(65) == 2
        assert bitset.words_for(640) == 10

    def test_backend_resolution_order(self, monkeypatch):
        monkeypatch.delenv(bitset.ENV_VAR, raising=False)
        assert bitset.backend_for("closure") in (bitset.INT, bitset.WORDS)
        monkeypatch.setenv(bitset.ENV_VAR, "words")
        expected = bitset.WORDS if bitset.HAVE_WORD_BACKEND else bitset.INT
        assert bitset.backend_for("closure") == expected
        monkeypatch.setenv(bitset.ENV_VAR, "nonsense")
        assert bitset.backend_for("closure") == bitset.backend_for("closure")
        with bitset.force_backend(bitset.INT):
            assert bitset.backend_for("closure") == bitset.INT
            assert bitset.backend_for("flow_graph") == bitset.INT
        monkeypatch.delenv(bitset.ENV_VAR, raising=False)
        assert bitset.backend_for("unknown-phase") == bitset.INT

    @pytest.mark.parametrize("source,kwargs", WORKLOADS)
    def test_propagate_backends_agree(self, source, kwargs):
        if not bitset.HAVE_WORD_BACKEND:
            pytest.skip("numpy not available")
        result, copy_edges = self._closure_problem(source, improved=False, **kwargs)
        via_int = propagate(result.rm_local, copy_edges, backend=bitset.INT)
        via_words = propagate(result.rm_local, copy_edges, backend=bitset.WORDS)
        assert via_int == via_words
        assert via_int == propagate_naive(result.rm_local, copy_edges)

    @pytest.mark.parametrize("source,kwargs", WORKLOADS)
    def test_flow_graph_backends_agree(self, source, kwargs):
        if not bitset.HAVE_WORD_BACKEND:
            pytest.skip("numpy not available")
        result = analyze(source, improved=True, **kwargs)
        via_int = FlowGraph.from_resource_matrix(
            result.rm_global, backend=bitset.INT
        )
        via_words = FlowGraph.from_resource_matrix(
            result.rm_global, backend=bitset.WORDS
        )
        assert via_int.nodes == via_words.nodes
        assert via_int.edges == via_words.edges
        assert via_int.to_adjacency() == via_words.to_adjacency()
        assert via_int.to_dot() == via_words.to_dot()


class TestBackendByteIdenticalDocuments:
    """analyze/check/lint JSON must be byte-identical across both backends.

    The ``timings`` block is wall-clock and differs even between two runs
    of the *same* backend, so it is stripped before the byte comparison;
    everything else — graphs, matrices, reports, findings — must match
    exactly over all eight paper workloads.
    """

    @staticmethod
    def _without_timings(text: str) -> str:
        data = json.loads(text)
        data.pop("timings", None)
        return json.dumps(data, sort_keys=True)

    def _documents(self, source):
        from repro.pipeline.render import (
            analyze_document,
            check_document,
            json_text,
            lint_document,
        )
        from repro.pipeline.stages import Pipeline
        from repro.security.policy import TwoLevelPolicy

        pipeline = Pipeline()
        run = pipeline.run(source)
        analyze_text = json_text(analyze_document(run, file="w.vhd"))

        policy = TwoLevelPolicy(secret_resources=[])
        checked = pipeline.run(
            source, policy=policy, report_options={"transitive": True}
        )
        check_text = json_text(
            check_document(checked, policy=policy, file="w.vhd")
        )

        linted = pipeline.run_lint(source)
        lint_text = json_text(
            lint_document(linted, findings=linted.artifacts.lint, file="w.vhd")
        )
        return analyze_text, check_text, lint_text

    @pytest.mark.parametrize(
        "name,source",
        [pytest.param(n, s, id=n) for n, s in workloads.batch_workload_sources()],
    )
    def test_documents_identical_across_backends(self, name, source):
        if not bitset.HAVE_WORD_BACKEND:
            pytest.skip("numpy not available")
        with bitset.force_backend(bitset.INT):
            via_int = self._documents(source)
        with bitset.force_backend(bitset.WORDS):
            via_words = self._documents(source)
        for int_text, words_text in zip(via_int, via_words):
            assert self._without_timings(int_text) == self._without_timings(
                words_text
            )


class TestPerSessionUniverse:
    """Independent analyses must not share or leak interned names."""

    def test_sessions_get_independent_universes(self):
        first = analyze(workloads.paper_program_a(), loop_processes=False)
        size_before = len(first.universe)
        second = analyze(workloads.producer_consumer_program())
        assert first.universe is not second.universe
        # the second analysis interned nothing into the first session
        assert len(first.universe) == size_before
        assert "left" not in first.universe
        assert "a" not in second.universe

    def test_explicit_universe_is_threaded_through_the_pipeline(self):
        universe = FactUniverse()
        result = analyze(workloads.challenge_f_program(), universe=universe)
        assert result.universe is universe
        assert result.rm_local.universe is universe
        assert result.rm_global.universe is universe

    def test_shared_universe_pools_two_runs(self):
        universe = FactUniverse()
        first = analyze(workloads.paper_program_a(), universe=universe)
        second = analyze(workloads.challenge_f_program(), universe=universe)
        assert first.rm_global.universe is second.rm_global.universe
        # both graphs stay internally consistent against their own matrices
        assert first.graph.edges == FlowGraph.from_edges(
            resource_matrix_edges(first.rm_global)
        ).edges
        assert second.graph.edges == FlowGraph.from_edges(
            resource_matrix_edges(second.rm_global)
        ).edges

    def test_cross_universe_matrix_equality_and_union(self):
        left = ResourceMatrix([Entry("a", 1, Access.R0), Entry("b", 1, Access.M0)])
        right = ResourceMatrix([Entry("b", 1, Access.M0), Entry("a", 1, Access.R0)])
        assert left.universe is not right.universe
        assert left == right
        extra = ResourceMatrix([Entry("z", 9, Access.M1)])
        combined = left.union(extra)
        assert Entry("z", 9, Access.M1) in combined
        assert len(combined) == 3
