"""Tests for the VHDL1 lexer."""

import pytest

from repro.errors import LexerError
from repro.vhdl.lexer import tokenize
from repro.vhdl.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestTokenKinds:
    def test_empty_input_gives_only_eof(self):
        assert kinds("") == [TokenKind.EOF]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("entity foo is end foo;")
        assert tokens[0].kind is TokenKind.KEYWORD
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[1].text == "foo"

    def test_identifiers_are_lowercased(self):
        assert texts("MySignal") == ["mysignal"]
        assert tokenize("ENTITY")[0].kind is TokenKind.KEYWORD

    def test_integer_literal(self):
        token = tokenize("127")[0]
        assert token.kind is TokenKind.INTEGER
        assert token.text == "127"

    def test_char_literal(self):
        token = tokenize("'1'")[0]
        assert token.kind is TokenKind.CHAR_LITERAL
        assert token.text == "1"

    def test_char_literal_lowercase_normalised(self):
        assert tokenize("'z'")[0].text == "Z"

    def test_char_literal_invalid_value(self):
        with pytest.raises(LexerError):
            tokenize("'q'")

    def test_char_literal_unterminated(self):
        with pytest.raises(LexerError):
            tokenize("'1")

    def test_string_literal(self):
        token = tokenize('"10ZX"')[0]
        assert token.kind is TokenKind.STRING_LITERAL
        assert token.text == "10ZX"

    def test_string_literal_invalid_character(self):
        with pytest.raises(LexerError):
            tokenize('"102"')

    def test_string_literal_unterminated(self):
        with pytest.raises(LexerError):
            tokenize('"10')

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("@")


class TestOperators:
    def test_assignment_operators(self):
        assert kinds("a := b;")[1] is TokenKind.ASSIGN_VAR
        assert kinds("a <= b;")[1] is TokenKind.ASSIGN_SIG

    def test_relational_operators(self):
        assert kinds("a = b")[1] is TokenKind.EQ
        assert kinds("a /= b")[1] is TokenKind.NEQ
        assert kinds("a < b")[1] is TokenKind.LT
        assert kinds("a > b")[1] is TokenKind.GT
        assert kinds("a >= b")[1] is TokenKind.GE

    def test_arithmetic_operators(self):
        assert kinds("a + b")[1] is TokenKind.PLUS
        assert kinds("a - b")[1] is TokenKind.MINUS
        assert kinds("a * b")[1] is TokenKind.STAR
        assert kinds("a / b")[1] is TokenKind.SLASH
        assert kinds("a & b")[1] is TokenKind.AMPERSAND

    def test_punctuation(self):
        source = "( ) : ; , =>"
        assert kinds(source)[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.COLON,
            TokenKind.SEMICOLON,
            TokenKind.COMMA,
            TokenKind.ARROW,
        ]


class TestCommentsAndPositions:
    def test_line_comments_are_skipped(self):
        assert texts("a -- this is a comment\nb") == ["a", "b"]

    def test_comment_at_end_of_input(self):
        assert texts("a -- trailing") == ["a"]

    def test_minus_followed_by_identifier_is_not_a_comment(self):
        assert kinds("a - b")[1] is TokenKind.MINUS

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].position.line == 1
        assert tokens[0].position.column == 1
        assert tokens[1].position.line == 2
        assert tokens[1].position.column == 3

    def test_is_keyword_helper(self):
        token = tokenize("process")[0]
        assert token.is_keyword("process")
        assert token.is_keyword("PROCESS")
        assert not token.is_keyword("entity")
