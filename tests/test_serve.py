"""Tests for ``vhdl-ifa serve``: the long-lived HTTP analysis service.

The headline property is payload identity: a server response body is the
same JSON document ``vhdl-ifa analyze --json`` / ``check --json`` prints for
the same input.  Per-stage wall-clock ``timings`` (and the cache state
reflected in ``cached_stages``) are inherently run-dependent, so identity is
asserted byte-for-byte on the serialised document with exactly those two
volatile fields normalised on both sides.
"""

import json
import http.client

import pytest

from repro import workloads
from repro.cli import main
from repro.pipeline import (
    AnalysisServer,
    ArtifactCache,
    ServerThread,
    TieredArtifactCache,
    json_text,
)

VOLATILE_FIELDS = ("timings", "cached_stages")


def _request(port, method, path, payload=None, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None if payload is None else json.dumps(payload)
    connection.request(method, path, body=body)
    response = connection.getresponse()
    return response.status, response.read().decode("utf-8")


def _normalised(document_text):
    """The canonical bytes of a response with the volatile fields fixed."""
    document = json.loads(document_text)
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return json_text(document) + "\n"


@pytest.fixture(scope="module")
def server():
    with ServerThread(
        AnalysisServer(port=0, cache=TieredArtifactCache(ArtifactCache()))
    ) as running:
        yield running


@pytest.fixture
def workload_files(tmp_path):
    paths = []
    for name, source in workloads.batch_workload_sources():
        path = tmp_path / f"{name}.vhd"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
    return paths


class TestPayloadIdentity:
    def test_analyze_matches_cli_on_every_paper_workload(
        self, server, workload_files, capsys
    ):
        assert len(workload_files) >= 8
        for path in workload_files:
            status, served = _request(server.port, "POST", "/analyze", {"file": path})
            assert status == 200
            assert main(["analyze", path, "--json"]) == 0
            printed = capsys.readouterr().out
            assert _normalised(served) == _normalised(printed)

    def test_check_matches_cli_on_every_paper_workload(
        self, server, workload_files, capsys
    ):
        for path in workload_files:
            status, served = _request(
                server.port, "POST", "/check", {"file": path, "secret": ["clk"]}
            )
            assert status == 200
            main(["check", path, "--secret", "clk", "--json"])
            printed = capsys.readouterr().out
            assert _normalised(served) == _normalised(printed)

    def test_analyze_flags_mirror_the_cli(self, server, workload_files, capsys):
        path = workload_files[0]
        status, served = _request(
            server.port,
            "POST",
            "/analyze",
            {"file": path, "basic": True, "collapse": True, "self_loops": True},
        )
        assert status == 200
        assert (
            main(["analyze", path, "--json", "--basic", "--collapse", "--self-loops"])
            == 0
        )
        printed = capsys.readouterr().out
        assert _normalised(served) == _normalised(printed)

    def test_source_body_analyses_without_a_file(self, server):
        status, served = _request(
            server.port,
            "POST",
            "/analyze",
            {"source": workloads.challenge_f_program()},
        )
        assert status == 200
        document = json.loads(served)
        assert document["design"] == "challenge_f"
        assert "file" not in document


class TestWarmCacheAcrossRequests:
    def test_second_identical_request_is_served_from_cache(self, workload_files):
        with ServerThread(
            AnalysisServer(port=0, cache=TieredArtifactCache(ArtifactCache()))
        ) as warm_server:
            path = workload_files[0]
            _, cold = _request(warm_server.port, "POST", "/analyze", {"file": path})
            assert json.loads(cold)["cached_stages"] == []
            _, warm = _request(warm_server.port, "POST", "/analyze", {"file": path})
            warm_document = json.loads(warm)
            assert {"parse", "elaborate", "closure"} <= set(
                warm_document["cached_stages"]
            )
            _, stats = _request(warm_server.port, "GET", "/stats")
            stats_document = json.loads(stats)
            assert stats_document["requests"]["POST /analyze"] == 2
            assert stats_document["cache"]["hits"] > 0


class TestServiceBehaviour:
    def test_stats_endpoint_shape(self, server):
        status, body = _request(server.port, "GET", "/stats")
        assert status == 200
        document = json.loads(body)
        assert document["command"] == "stats"
        assert document["uptime_seconds"] >= 0
        assert "cache" in document

    def test_malformed_json_is_a_400(self, server):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        connection.request("POST", "/analyze", body=b"{not json")
        response = connection.getresponse()
        assert response.status == 400
        assert "error" in json.loads(response.read())

    def test_missing_file_is_a_400_not_a_crash(self, server):
        status, body = _request(
            server.port, "POST", "/analyze", {"file": "/nonexistent/d.vhd"}
        )
        assert status == 400
        assert "error" in json.loads(body)

    def test_parse_error_is_a_400(self, server):
        status, body = _request(
            server.port, "POST", "/analyze", {"source": "entity broken is"}
        )
        assert status == 400

    def test_file_and_source_together_are_rejected(self, server):
        status, body = _request(
            server.port, "POST", "/analyze", {"file": "x", "source": "y"}
        )
        assert status == 400

    def test_unknown_path_is_a_404(self, server):
        status, body = _request(server.port, "GET", "/nonsense")
        assert status == 404

    def test_wrong_method_is_a_405(self, server):
        status, _ = _request(server.port, "GET", "/analyze")
        assert status == 405
        status, _ = _request(server.port, "POST", "/stats", {})
        assert status == 405

    def test_server_survives_bad_requests(self, server, workload_files):
        _request(server.port, "POST", "/analyze", {"source": "entity broken is"})
        status, _ = _request(
            server.port, "POST", "/analyze", {"file": workload_files[0]}
        )
        assert status == 200


class TestRobustnessFixes:
    def test_internal_errors_become_500_json_not_dead_connections(self, server):
        # any non-analysis exception must surface as a JSON 500 body
        status, document = server._dispatch(
            "POST", "/analyze", b'{"file": 42}'
        )  # non-string file -> TypeError inside open(), not a ReproError
        assert status in (400, 500)
        assert "error" in document
        # ... and the server must still answer afterwards
        status, _ = _request(server.port, "GET", "/stats")
        assert status == 200

    def test_unexpected_handler_exception_is_a_500(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(server.pipeline, "run", boom)
        status, document = server._dispatch(
            "POST", "/analyze", json.dumps({"source": "x"}).encode()
        )
        assert status == 500
        assert "kaboom" in document["error"]

    def test_negative_content_length_is_a_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port), timeout=60) as sock:
            sock.sendall(
                b"POST /analyze HTTP/1.1\r\n"
                b"Content-Length: -1\r\n"
                b"\r\n"
            )
            response = sock.recv(65536).decode("utf-8", "replace")
        assert response.startswith("HTTP/1.1 400")


class TestVersionEndpoint:
    def test_version_document(self, server):
        status, body = _request(server.port, "GET", "/version")
        assert status == 200
        document = json.loads(body)
        assert document["schema"] == "vhdl-ifa/v1"
        assert document["command"] == "version"
        from repro.version import version

        assert document["version"] == version()

    def test_version_rejects_post(self, server):
        status, _ = _request(server.port, "POST", "/version", {})
        assert status == 405


POLICY_DOCUMENT = {
    "name": "mls",
    "levels": {"public": 0, "secret": 1},
    "resources": {"key": "secret"},
    "allow": [{"from": "public", "to": "secret"}],
}


class TestPolicyEndpoint:
    def test_validate_and_register(self, server, workload_files):
        status, body = _request(server.port, "POST", "/policy", POLICY_DOCUMENT)
        assert status == 200
        document = json.loads(body)
        assert document["schema"] == "vhdl-ifa/v1"
        assert document["valid"] is True
        assert document["registered"] == "mls"
        assert document["policy"]["levels"] == {"public": 0, "secret": 1}
        # the registered name now drives /check
        status, body = _request(
            server.port, "POST", "/check",
            {"source": workloads.challenge_f_program(), "policy": "mls"},
        )
        assert status == 200
        checked = json.loads(body)
        assert checked["clean"] is False
        assert checked["violations"][0]["code"] == "IFA001"
        # ... and shows up in /stats
        status, stats = _request(server.port, "GET", "/stats")
        assert "mls" in json.loads(stats)["policies"]

    def test_invalid_document_is_a_400(self, server):
        status, body = _request(
            server.port, "POST", "/policy", {"levels": {"public": "zero"}}
        )
        assert status == 400
        document = json.loads(body)
        assert document["schema"] == "vhdl-ifa/v1"
        assert "levels" in document["error"]

    def test_inline_policy_on_check(self, server, workload_files):
        inline = {key: value for key, value in POLICY_DOCUMENT.items() if key != "name"}
        status, body = _request(
            server.port, "POST", "/check",
            {"source": workloads.challenge_f_program(), "policy": inline},
        )
        assert status == 200
        assert json.loads(body)["clean"] is False

    def test_policy_and_secret_are_mutually_exclusive(self, server):
        status, body = _request(
            server.port, "POST", "/check",
            {"source": "x", "policy": "mls", "secret": ["k"]},
        )
        assert status == 400

    def test_check_with_policy_matches_cli_policy_file(
        self, server, workload_files, tmp_path, capsys
    ):
        # the acceptance property: a policy expressed only as a file drives
        # the CLI to the same violations the server reports for the same
        # declarative document
        path = tmp_path / "design.vhd"
        path.write_text(workloads.challenge_f_program(), encoding="utf-8")
        inline = {key: value for key, value in POLICY_DOCUMENT.items() if key != "name"}
        status, served = _request(
            server.port, "POST", "/check", {"file": str(path), "policy": inline}
        )
        assert status == 200
        policy_file = tmp_path / "mls.json"
        policy_file.write_text(json.dumps(inline), encoding="utf-8")
        assert main(["check", str(path), "--policy", str(policy_file), "--json"]) == 3
        printed = capsys.readouterr().out
        assert _normalised(served) == _normalised(printed)


class TestSchemaStamp:
    def test_every_response_carries_the_schema(self, server, workload_files):
        responses = [
            _request(server.port, "POST", "/analyze", {"file": workload_files[0]}),
            _request(
                server.port, "POST", "/check",
                {"file": workload_files[0], "secret": ["clk"]},
            ),
            _request(server.port, "GET", "/stats"),
            _request(server.port, "GET", "/version"),
            _request(server.port, "GET", "/nonsense"),
            _request(server.port, "POST", "/analyze", {"file": "/missing.vhd"}),
        ]
        for _, body in responses:
            document = json.loads(body)
            assert list(document)[0] == "schema"
            assert document["schema"] == "vhdl-ifa/v1"


class TestPolicyOverwriteProtection:
    def test_replacing_a_registered_policy_is_a_409(self, workload_files):
        from repro.pipeline import AnalysisServer, ServerThread

        with ServerThread(AnalysisServer(port=0)) as guarded:
            strict = dict(POLICY_DOCUMENT, name="strict")
            status, _ = _request(guarded.port, "POST", "/policy", strict)
            assert status == 200
            # identical re-post is idempotent ...
            status, _ = _request(guarded.port, "POST", "/policy", strict)
            assert status == 200
            # ... but a different definition under the same name is refused
            permissive = dict(strict)
            permissive["allow"] = [
                {"from": "public", "to": "secret"},
                {"from": "secret", "to": "public"},
            ]
            status, body = _request(guarded.port, "POST", "/policy", permissive)
            assert status == 409
            assert "already registered" in json.loads(body)["error"]
            # the original policy still drives /check verdicts
            status, body = _request(
                guarded.port, "POST", "/check",
                {"source": workloads.challenge_f_program(), "policy": "strict"},
            )
            assert status == 200 and json.loads(body)["clean"] is False
