"""Tests for the FlowGraph result type."""

from repro.analysis.flowgraph import FlowGraph, resource_matrix_edges
from repro.analysis.resource_matrix import (
    Access,
    ResourceMatrix,
    incoming_node,
    outgoing_node,
)


def small_graph():
    return FlowGraph.from_edges([("a", "b"), ("b", "c")])


class TestConstruction:
    def test_from_resource_matrix_connects_reads_to_modifications(self):
        matrix = ResourceMatrix()
        matrix.add("a", 1, Access.R0)
        matrix.add("b", 1, Access.M0)
        matrix.add("c", 2, Access.R0)
        matrix.add("d", 2, Access.M1)
        graph = FlowGraph.from_resource_matrix(matrix)
        assert graph.edges == {("a", "b"), ("c", "d")}

    def test_from_resource_matrix_does_not_connect_across_labels(self):
        matrix = ResourceMatrix()
        matrix.add("a", 1, Access.R0)
        matrix.add("b", 2, Access.M0)
        graph = FlowGraph.from_resource_matrix(matrix)
        assert graph.edges == set()
        assert graph.nodes == {"a", "b"}

    def test_self_loops_can_be_excluded(self):
        matrix = ResourceMatrix()
        matrix.add("a", 1, Access.R0)
        matrix.add("a", 1, Access.M0)
        with_loops = FlowGraph.from_resource_matrix(matrix)
        without = FlowGraph.from_resource_matrix(matrix, include_self_loops=False)
        assert ("a", "a") in with_loops.edges
        assert ("a", "a") not in without.edges

    def test_from_edges_registers_nodes(self):
        graph = FlowGraph.from_edges([("x", "y")], nodes=["z"])
        assert graph.nodes == {"x", "y", "z"}

    def test_both_construction_paths_agree(self):
        matrix = ResourceMatrix()
        matrix.add("a", 1, Access.R0)
        matrix.add("b", 1, Access.R1)
        matrix.add("c", 1, Access.M0)
        matrix.add("c", 2, Access.R0)
        matrix.add("d", 2, Access.M1)
        matrix.add("lonely", 3, Access.R0)
        bitset = FlowGraph.from_resource_matrix(matrix)
        oracle = FlowGraph.from_edges(
            resource_matrix_edges(matrix), nodes=matrix.names()
        )
        assert bitset == oracle
        assert bitset.to_dot() == oracle.to_dot()
        assert bitset.to_adjacency() == oracle.to_adjacency()

    def test_edges_are_decoded_lazily_and_iterable(self):
        graph = small_graph()
        assert sorted(graph.iter_edges()) == [("a", "b"), ("b", "c")]
        assert set(graph) == {("a", "b"), ("b", "c")}
        assert ("a", "b") in graph
        assert ("a", "c") not in graph

    def test_has_node(self):
        graph = small_graph()
        assert graph.has_node("a")
        assert not graph.has_node("nope")


class TestQueries:
    def test_successors_and_predecessors(self):
        graph = small_graph()
        assert graph.successors("a") == {"b"}
        assert graph.predecessors("c") == {"b"}
        assert graph.successors("c") == frozenset()

    def test_reachability(self):
        graph = small_graph()
        assert graph.reachable_from("a") == {"b", "c"}
        assert graph.flows_to("a", "c")
        assert not graph.flows_to("c", "a")

    def test_reachable_with_cycle(self):
        graph = FlowGraph.from_edges([("a", "b"), ("b", "a")])
        assert graph.reachable_from("a") == {"a", "b"}

    def test_counts(self):
        graph = small_graph()
        assert graph.node_count() == 3
        assert graph.edge_count() == 2


class TestClosureAndTransitivity:
    def test_transitive_closure_adds_composed_edges(self):
        closed = small_graph().transitive_closure()
        assert ("a", "c") in closed.edges

    def test_is_transitive(self):
        assert not small_graph().is_transitive()
        assert small_graph().transitive_closure().is_transitive()

    def test_closure_is_idempotent(self):
        closed = small_graph().transitive_closure()
        assert closed.transitive_closure().edges == closed.edges


class TestTransformations:
    def test_without_self_loops(self):
        graph = FlowGraph.from_edges([("a", "a"), ("a", "b")])
        assert graph.without_self_loops().edges == {("a", "b")}

    def test_restricted_to(self):
        graph = FlowGraph.from_edges([("a", "b"), ("b", "c")])
        restricted = graph.restricted_to(["a", "b"])
        assert restricted.edges == {("a", "b")}
        assert restricted.nodes == {"a", "b"}

    def test_renamed_merges_nodes(self):
        graph = FlowGraph.from_edges([("a1", "b"), ("a2", "b")])
        merged = graph.renamed({"a1": "a", "a2": "a"})
        assert merged.edges == {("a", "b")}
        assert merged.nodes == {"a", "b"}

    def test_collapse_environment_nodes(self):
        graph = FlowGraph.from_edges(
            [(incoming_node("a"), "b"), ("b", outgoing_node("c"))]
        )
        collapsed = graph.collapse_environment_nodes()
        assert collapsed.edges == {("a", "b"), ("b", "c")}

    def test_edge_difference_and_subgraph(self):
        ours = small_graph()
        theirs = ours.transitive_closure()
        assert ours.is_subgraph_of(theirs)
        assert theirs.edge_difference(ours) == {("a", "c")}


class TestExport:
    def test_dot_output_mentions_every_node_and_edge(self):
        dot = small_graph().to_dot()
        assert dot.startswith("digraph")
        assert '"a" -> "b";' in dot
        assert '"b" -> "c";' in dot

    def test_dot_shapes_for_environment_nodes(self):
        graph = FlowGraph.from_edges([(incoming_node("a"), outgoing_node("b"))])
        dot = graph.to_dot()
        assert "invhouse" in dot
        assert "house" in dot

    def test_adjacency_rendering(self):
        adjacency = small_graph().to_adjacency()
        assert adjacency == {"a": ["b"], "b": ["c"], "c": []}

    def test_summary_mentions_transitivity(self):
        assert "non-transitive" in small_graph().summary()
        assert "non-transitive" not in small_graph().transitive_closure().summary()
