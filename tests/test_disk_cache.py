"""Tests for the persistent artifact store and the two-tier composition."""

import json
import multiprocessing
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro import workloads
from repro.pipeline import (
    STAGE_NAMES,
    AnalysisOptions,
    ArtifactCache,
    DiskArtifactCache,
    Pipeline,
    TieredArtifactCache,
    expand_jobs,
    open_cache,
    run_batch,
)
from repro.pipeline.cache import FORMAT_VERSION

ANALYSIS_STAGE_NAMES = [name for name in STAGE_NAMES if name != "report"]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def _populate(cache_dir, source):
    """One cold run over a fresh tiered cache; returns the cold result."""
    cache = TieredArtifactCache(ArtifactCache(), DiskArtifactCache(cache_dir))
    return Pipeline(cache).run(source)


def _fresh_run(cache_dir, source, **kwargs):
    """A run over brand-new tiers (the in-test proxy for a fresh process)."""
    cache = TieredArtifactCache(ArtifactCache(), DiskArtifactCache(cache_dir))
    return Pipeline(cache).run(source, **kwargs)


class TestDiskRoundTrip:
    def test_fresh_process_serves_every_stage_from_disk(self, cache_dir):
        source = workloads.challenge_f_program()
        cold = _populate(cache_dir, source)
        warm = _fresh_run(cache_dir, source)
        assert not cold.cached_stages
        assert warm.cached_stages == ANALYSIS_STAGE_NAMES
        assert {"parse", "elaborate", "closure"} <= set(warm.cached_stages)
        assert warm.result.graph.to_adjacency() == cold.result.graph.to_adjacency()
        assert warm.result.summary() == cold.result.summary()

    def test_reloaded_artifacts_share_one_universe(self, cache_dir):
        source = workloads.producer_consumer_program()
        _populate(cache_dir, source)
        warm = _fresh_run(cache_dir, source)
        result = warm.result
        assert result.rm_local.universe is result.universe
        assert result.rm_global.universe is result.universe
        assert result.graph._universe is result.universe

    def test_differing_options_key_differently_on_disk(self, cache_dir):
        source = workloads.producer_consumer_program()
        _populate(cache_dir, source)
        basic = _fresh_run(cache_dir, source, options=AnalysisOptions(improved=False))
        assert "closure" in basic.computed_stages
        assert {"parse", "elaborate", "cfg"} <= set(basic.cached_stages)

    def test_subprocess_is_served_from_the_populated_dir(self, cache_dir, tmp_path):
        # The real acceptance shape: an actually-fresh interpreter with a
        # populated --cache-dir serves parse/elaborate/closure from disk.
        design = tmp_path / "design.vhd"
        design.write_text(workloads.challenge_f_program(), encoding="utf-8")
        argv = [
            sys.executable, "-m", "repro.cli", "analyze", str(design),
            "--json", "--cache-dir", cache_dir,
        ]
        src = str(Path(__file__).resolve().parent.parent / "src")
        cold = subprocess.run(
            argv, capture_output=True, text=True, env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"}
        )
        assert cold.returncode == 0, cold.stderr
        assert json.loads(cold.stdout)["cached_stages"] == []
        warm = subprocess.run(
            argv, capture_output=True, text=True, env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"}
        )
        assert warm.returncode == 0, warm.stderr
        warm_doc = json.loads(warm.stdout)
        assert {"parse", "elaborate", "closure"} <= set(warm_doc["cached_stages"])
        cold_doc = json.loads(cold.stdout)
        for document in (cold_doc, warm_doc):
            document.pop("timings")
            document.pop("cached_stages")
        assert warm_doc == cold_doc


class TestCorruptionIsEvictedNotRaised:
    def _entry_files(self, cache_dir):
        return [
            path
            for path in sorted(Path(cache_dir).glob("*/*.pkl"))
            if path.parent.name != "universes"
        ]

    def test_truncated_entries_are_evicted(self, cache_dir):
        source = workloads.challenge_f_program()
        _populate(cache_dir, source)
        for path in self._entry_files(cache_dir):
            path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        disk = DiskArtifactCache(cache_dir)
        warm = Pipeline(TieredArtifactCache(ArtifactCache(), disk)).run(source)
        assert not warm.cached_stages  # everything recomputed...
        assert warm.result is not None  # ...and the run still succeeds
        assert disk.misses > 0 and disk.hits == 0

    def test_garbage_entries_are_evicted(self, cache_dir):
        disk = DiskArtifactCache(cache_dir)
        disk.put("parse:key", {"payload": 1})
        path = disk._entry_path("parse:key")
        path.write_bytes(b"this is not a pickle")
        assert disk.get("parse:key") is None  # miss, not a crash...
        assert not path.exists()  # ...and the poisoned file is evicted
        assert disk.get("parse:unknown") is None  # absent key: plain miss
        assert disk.misses == 2 and disk.hits == 0

    def test_wrong_version_tag_is_evicted(self, cache_dir):
        source = workloads.challenge_f_program()
        cold = _populate(cache_dir, source)
        for path in self._entry_files(cache_dir):
            tag, _version, key, lengths, payload = pickle.loads(path.read_bytes())
            path.write_bytes(
                pickle.dumps((tag, FORMAT_VERSION + 1, key, lengths, payload))
            )
        warm = _fresh_run(cache_dir, source)
        assert not warm.cached_stages
        assert warm.result.summary() == cold.result.summary()

    def test_stale_index_version_evicts_the_whole_cache(self, cache_dir):
        source = workloads.challenge_f_program()
        _populate(cache_dir, source)
        index_path = Path(cache_dir) / "index.json"
        index = json.loads(index_path.read_text(encoding="utf-8"))
        index["version"] = FORMAT_VERSION + 1
        index_path.write_text(json.dumps(index), encoding="utf-8")
        disk = DiskArtifactCache(cache_dir)
        assert len(disk) == 0
        assert json.loads(index_path.read_text())["version"] == FORMAT_VERSION

    def test_corrupt_index_is_rebuilt_and_entries_stay_servable(self, cache_dir):
        source = workloads.challenge_f_program()
        _populate(cache_dir, source)
        (Path(cache_dir) / "index.json").write_text("{not json", encoding="utf-8")
        warm = _fresh_run(cache_dir, source)
        assert warm.cached_stages == ANALYSIS_STAGE_NAMES
        index = json.loads((Path(cache_dir) / "index.json").read_text())
        assert index["version"] == FORMAT_VERSION

    @pytest.mark.parametrize(
        "torn_entries",
        [42, ["a", "b"], "entries-as-text", {"some/entry.pkl": "not-a-dict"}],
        ids=["int", "list", "string", "non-dict-values"],
    )
    def test_torn_index_shapes_are_rebuilt_not_raised(self, cache_dir, torn_entries):
        # A concurrently-rewritten index can be valid JSON of the wrong
        # shape; that must behave exactly like unparsable bytes: rebuild
        # from the entry files, keep every entry servable.
        source = workloads.challenge_f_program()
        _populate(cache_dir, source)
        index_path = Path(cache_dir) / "index.json"
        index_path.write_text(
            json.dumps({"version": FORMAT_VERSION, "entries": torn_entries}),
            encoding="utf-8",
        )
        warm = _fresh_run(cache_dir, source)
        assert warm.cached_stages == ANALYSIS_STAGE_NAMES
        rebuilt = json.loads(index_path.read_text(encoding="utf-8"))
        assert isinstance(rebuilt["entries"], dict)
        assert all(isinstance(entry, dict) for entry in rebuilt["entries"].values())

    def test_torn_index_still_accepts_new_puts(self, cache_dir):
        _populate(cache_dir, workloads.challenge_f_program())
        index_path = Path(cache_dir) / "index.json"
        index_path.write_text(
            json.dumps({"version": FORMAT_VERSION, "entries": 7}), encoding="utf-8"
        )
        # The store must come up writable, not just readable.
        run = _fresh_run(cache_dir, workloads.producer_consumer_program())
        assert run.result.summary()

    def test_missing_universe_snapshot_is_a_miss(self, cache_dir):
        source = workloads.producer_consumer_program()
        _populate(cache_dir, source)
        for path in (Path(cache_dir) / "universes").glob("*.pkl"):
            path.unlink()
        warm = _fresh_run(cache_dir, source)
        # frontend stages still hit; universe-bound ones recompute
        assert {"parse", "elaborate", "cfg"} <= set(warm.cached_stages)
        assert "local" in warm.computed_stages
        assert warm.result.rm_local.universe is warm.result.universe


class TestEvictionAndStats:
    def test_size_budget_evicts_least_recently_used(self, tmp_path):
        disk = DiskArtifactCache(tmp_path / "small", max_bytes=2048)
        for index in range(64):
            disk.put(f"parse:{index}", "x" * 128)
        stats = disk.stats()
        assert 0 < stats["entries"] < 64
        assert stats["bytes"] <= 2048
        # the most recent key survived
        assert "parse:63" in disk

    def test_stats_shape(self, cache_dir):
        _populate(cache_dir, workloads.challenge_f_program())
        disk = DiskArtifactCache(cache_dir)
        stats = disk.stats()
        assert stats["entries"] == len(ANALYSIS_STAGE_NAMES)
        assert stats["version"] == FORMAT_VERSION
        assert set(stats["stages"]) == set(ANALYSIS_STAGE_NAMES)
        assert stats["bytes"] > 0 and stats["universes"] >= 1

    def test_clear_empties_the_store(self, cache_dir):
        _populate(cache_dir, workloads.challenge_f_program())
        disk = DiskArtifactCache(cache_dir)
        disk.clear()
        assert len(disk) == 0
        assert disk.stats()["universes"] == 0
        warm = _fresh_run(cache_dir, workloads.challenge_f_program())
        assert not warm.cached_stages

    def test_unpicklable_values_are_skipped_silently(self, tmp_path):
        disk = DiskArtifactCache(tmp_path / "c")
        disk.put("parse:k", lambda: None)  # lambdas don't pickle
        assert disk.get("parse:k") is None
        assert len(disk) == 0


class TestTieredCache:
    def test_disk_hits_promote_into_memory(self, cache_dir):
        source = workloads.challenge_f_program()
        _populate(cache_dir, source)
        tier = TieredArtifactCache(ArtifactCache(), DiskArtifactCache(cache_dir))
        Pipeline(tier).run(source)
        assert tier.disk.hits == len(ANALYSIS_STAGE_NAMES)
        again = Pipeline(tier).run(source)
        assert again.cached_stages == ANALYSIS_STAGE_NAMES
        # second run is served by the memory tier alone
        assert tier.disk.hits == len(ANALYSIS_STAGE_NAMES)
        assert tier.memory.hits == len(ANALYSIS_STAGE_NAMES)

    def test_open_cache_factory(self, cache_dir):
        assert open_cache(None, memory=False) is None
        assert isinstance(open_cache(None, memory=True), ArtifactCache)
        tiered = open_cache(cache_dir)
        assert isinstance(tiered, TieredArtifactCache)
        assert tiered.disk is not None and Path(cache_dir).is_dir()

    def test_tier_stats_compose(self, cache_dir):
        tier = open_cache(cache_dir)
        tier.put("parse:k", 1)
        assert tier.get("parse:k") == 1
        assert tier.get("parse:missing") is None
        stats = tier.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["memory"]["entries"] == 1
        assert stats["disk"]["entries"] == 1


def _writer_process(cache_dir, worker, results):
    """Hammer one shared cache dir with interleaved puts and gets."""
    try:
        disk = DiskArtifactCache(cache_dir)
        for index in range(40):
            disk.put(f"parse:w{worker}:{index}", {"worker": worker, "index": index})
            read_back = disk.get(f"parse:w{worker}:{index}")
            assert read_back == {"worker": worker, "index": index}
        results.put(None)
    except BaseException as error:  # pragma: no cover - failure reporting
        results.put(repr(error))


class TestConcurrentWriters:
    def test_two_processes_share_one_dir_without_corruption(self, cache_dir):
        context = multiprocessing.get_context("spawn")
        results = context.Queue()
        workers = [
            context.Process(target=_writer_process, args=(cache_dir, n, results))
            for n in range(2)
        ]
        for process in workers:
            process.start()
        outcomes = [results.get(timeout=120) for _ in workers]
        for process in workers:
            process.join(timeout=120)
        assert outcomes == [None, None]
        # the index is intact JSON with the current version...
        index = json.loads((Path(cache_dir) / "index.json").read_text())
        assert index["version"] == FORMAT_VERSION
        # ...and every surviving entry from both writers is servable
        disk = DiskArtifactCache(cache_dir)
        served = 0
        for worker in range(2):
            for index_number in range(40):
                value = disk.get(f"parse:w{worker}:{index_number}")
                if value is not None:
                    assert value == {"worker": worker, "index": index_number}
                    served += 1
        assert served == 80


class TestBatchDiskTier:
    def test_parallel_workers_share_the_disk_tier(self, tmp_path):
        path = tmp_path / "multi.vhd"
        path.write_text(workloads.multi_entity_program(3, 2, 6), encoding="utf-8")
        cache_dir = str(tmp_path / "cache")
        cache = open_cache(cache_dir)
        jobs = expand_jobs([str(path)], all_entities=True, cache=cache)
        cold = run_batch(jobs, AnalysisOptions(), parallel=False, cache=cache)
        assert cold.ok
        warm = run_batch(
            jobs, AnalysisOptions(), parallel=True, max_workers=2,
            cache_dir=cache_dir,
        )
        assert warm.ok
        for item in warm.items:
            assert {"parse", "elaborate", "closure"} <= set(
                item.data["cached_stages"]
            )
        assert [item.text for item in warm.items] == [
            item.text for item in cold.items
        ]
