"""Tests for the security-policy layer and the covert-channel report."""

import pytest

from repro.analysis.api import analyze
from repro.analysis.flowgraph import FlowGraph
from repro.errors import PolicyError
from repro.security.policy import (
    Clearance,
    FlowPolicy,
    PUBLIC,
    SECRET,
    TwoLevelPolicy,
    check_policy,
)
from repro.security.report import build_report, output_dependencies
from repro import workloads


class TestPolicies:
    def test_two_level_policy_classification(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        assert policy.level_of("key") == SECRET
        assert policy.level_of("other") == PUBLIC
        assert policy.secret_resources == {"key"}

    def test_environment_nodes_share_their_resource_level(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        assert policy.level_of("key○") == SECRET
        assert policy.level_of("key•") == SECRET

    def test_two_level_policy_direction(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        assert policy.allows(PUBLIC, SECRET)
        assert not policy.allows(SECRET, PUBLIC)
        assert policy.allows(SECRET, SECRET)

    def test_custom_non_transitive_policy(self):
        a, b, c = Clearance(0, "a"), Clearance(1, "b"), Clearance(2, "c")
        policy = FlowPolicy()
        policy.assign("x", a)
        policy.assign("y", b)
        policy.assign("z", c)
        policy.permit(a, b)
        policy.permit(b, c)
        # a -> c is deliberately NOT permitted: channel-control style policy
        assert policy.allows(a, b) and policy.allows(b, c)
        assert not policy.allows(a, c)


class TestCheckPolicy:
    def _graph(self):
        return FlowGraph.from_edges([("key", "t"), ("t", "out"), ("plain", "out")])

    def test_direct_edge_checking(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        violations = check_policy(self._graph(), policy, transitive=False)
        assert len(violations) == 1
        assert (violations[0].source, violations[0].target) == ("key", "t")

    def test_transitive_checking_reports_paths(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        violations = check_policy(self._graph(), policy, transitive=True)
        targets = {v.target for v in violations}
        assert targets == {"t", "out"}
        witness = next(v for v in violations if v.target == "out")
        assert witness.path == ("key", "t", "out")

    def test_restrict_to_limits_endpoints(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        violations = check_policy(
            self._graph(), policy, transitive=True, restrict_to=["key", "out"]
        )
        assert len(violations) == 1
        assert violations[0].target == "out"

    def test_violation_description(self):
        policy = TwoLevelPolicy(secret_resources=["key"])
        violation = check_policy(self._graph(), policy, transitive=True)[0]
        assert "key" in violation.describe()
        assert "not permitted" in violation.describe()

    def test_wrong_policy_type_rejected(self):
        with pytest.raises(PolicyError):
            check_policy(self._graph(), object())  # type: ignore[arg-type]

    def test_self_loops_are_ignored(self):
        graph = FlowGraph.from_edges([("key", "key")])
        policy = TwoLevelPolicy(secret_resources=["key"])
        assert check_policy(graph, policy) == []


class TestReports:
    def test_challenge_f_is_clean_for_the_overwritten_key(self):
        result = analyze(workloads.challenge_f_program())
        policy = TwoLevelPolicy(secret_resources=["key"])
        report = build_report(result, policy)
        # the only secret-to-public edge is key -> t, and t is overwritten
        # before reaching the output; restricting to ports shows no leak
        port_report = build_report(result, policy, restrict_to_ports=True)
        assert port_report.is_clean
        assert report.output_dependencies == {"leak": ["plain"]}

    def test_leaky_design_is_flagged(self):
        source = """
        entity leaky is
          port( key : in std_logic_vector(7 downto 0);
                leak : out std_logic_vector(7 downto 0) );
        end leaky;
        architecture a of leaky is
        begin
          p : process begin leak <= key; wait on key; end process p;
        end a;
        """
        result = analyze(source)
        policy = TwoLevelPolicy(secret_resources=["key"])
        report = build_report(result, policy)
        assert not report.is_clean
        assert report.output_dependencies == {"leak": ["key"]}
        assert "violation" in report.to_text()

    def test_output_dependencies_uses_direct_edges_only(self):
        result = analyze(workloads.challenge_f_program())
        deps = output_dependencies(result)
        assert deps == {"leak": ["plain"]}

    def test_report_text_lists_dependencies(self):
        result = analyze(workloads.producer_consumer_program())
        policy = TwoLevelPolicy()
        report = build_report(result, policy)
        text = report.to_text()
        assert "result <- left, right" in text
        assert "No policy violations" in text

    def test_mux_output_depends_on_select_and_both_inputs(self):
        result = analyze(workloads.conditional_program())
        deps = output_dependencies(result)
        assert deps == {"y": ["a", "b", "sel"]}
