"""Tests for the local dependency analysis (Table 6)."""

from repro.analysis.local_deps import local_dependencies, local_resource_matrix
from repro.analysis.resource_matrix import Access, Entry
from repro.cfg.builder import build_cfg
from repro.vhdl.elaborate import elaborate_source
from repro import workloads


def matrix_for(source, process="p", loop=True):
    design = elaborate_source(source)
    program_cfg = build_cfg(design, loop_processes=loop)
    return program_cfg, local_dependencies(program_cfg.processes[process].process)


class TestAssignments:
    def test_variable_assignment_entries(self):
        program_cfg, matrix = matrix_for(workloads.paper_program_b(), loop=False)
        labels = sorted(program_cfg.processes["p"].body_labels)
        first, second = labels[0], labels[1]
        assert Entry("b", first, Access.M0) in matrix
        assert Entry("a", first, Access.R0) in matrix
        assert Entry("c", second, Access.M0) in matrix
        assert Entry("b", second, Access.R0) in matrix

    def test_signal_assignment_modifies_active_value(self):
        program_cfg, matrix = matrix_for(
            workloads.producer_consumer_program(), process="producer"
        )
        producer = program_cfg.processes["producer"]
        link_label = next(iter(producer.assignment_labels_of_signal("link")))
        assert Entry("link", link_label, Access.M1) in matrix
        assert Entry("mixed", link_label, Access.R0) in matrix

    def test_null_contributes_nothing(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          p : process begin null; end process p;
        end a;
        """
        _, matrix = matrix_for(source)
        assert len(matrix) == 0


class TestImplicitFlows:
    def test_condition_reads_flow_into_both_branches(self):
        program_cfg, matrix = matrix_for(workloads.conditional_program())
        process = program_cfg.processes["p"]
        assign_labels = sorted(process.assignment_labels_of_variable("t"))
        for label in assign_labels:
            assert Entry("sel", label, Access.R0) in matrix

    def test_nested_conditions_accumulate(self):
        source = """
        entity e is port( c1 : in std_logic; c2 : in std_logic; y : out std_logic ); end e;
        architecture a of e is
        begin
          p : process
            variable t : std_logic;
          begin
            if c1 = '1' then
              if c2 = '1' then
                t := '1';
              else
                t := '0';
              end if;
            else
              null;
            end if;
            y <= t;
            wait on c1, c2;
          end process p;
        end a;
        """
        program_cfg, matrix = matrix_for(source)
        process = program_cfg.processes["p"]
        for label in process.assignment_labels_of_variable("t"):
            assert Entry("c1", label, Access.R0) in matrix
            assert Entry("c2", label, Access.R0) in matrix

    def test_while_guard_flows_into_body(self):
        program_cfg, matrix = matrix_for(workloads.overwriting_loop_program())
        process = program_cfg.processes["p"]
        acc_labels = process.assignment_labels_of_variable("acc")
        # the assignment inside the loop body reads the guard's variable
        inside = [
            label
            for label in acc_labels
            if Entry("counter", label, Access.R0) in matrix
        ]
        assert inside

    def test_guards_produce_no_entries_of_their_own(self):
        program_cfg, matrix = matrix_for(workloads.conditional_program())
        process = program_cfg.processes["p"]
        guard_labels = {
            label
            for label, block in process.blocks.items()
            if block.is_guard and label in process.body_labels
        }
        assert guard_labels
        for label in guard_labels:
            assert matrix.at_label(label) == []


class TestWaitStatements:
    def test_wait_reads_active_values_of_all_process_signals(self):
        program_cfg, matrix = matrix_for(
            workloads.producer_consumer_program(), process="producer"
        )
        producer = program_cfg.processes["producer"]
        wait_label = next(iter(producer.wait_labels))
        r1_names = {e.name for e in matrix.at_label(wait_label) if e.access is Access.R1}
        assert r1_names == {"left", "right", "link"}

    def test_wait_reads_waited_on_signals(self):
        program_cfg, matrix = matrix_for(
            workloads.producer_consumer_program(), process="producer"
        )
        wait_label = next(iter(program_cfg.processes["producer"].wait_labels))
        r0_names = {e.name for e in matrix.at_label(wait_label) if e.access is Access.R0}
        assert {"left", "right"} <= r0_names

    def test_wait_condition_reads(self):
        source = """
        entity e is port( clk : in std_logic; en : in std_logic; q : out std_logic ); end e;
        architecture a of e is
        begin
          p : process begin q <= en; wait on clk until en = '1'; end process p;
        end a;
        """
        program_cfg, matrix = matrix_for(source)
        wait_label = next(iter(program_cfg.processes["p"].wait_labels))
        r0_names = {e.name for e in matrix.at_label(wait_label) if e.access is Access.R0}
        assert {"clk", "en"} <= r0_names


class TestWholeProgram:
    def test_local_matrix_is_union_over_processes(self, producer_consumer_design):
        program_cfg = build_cfg(producer_consumer_design)
        combined = local_resource_matrix(program_cfg)
        separate = local_dependencies(
            program_cfg.processes["producer"].process
        ).union(local_dependencies(program_cfg.processes["consumer"].process))
        assert combined == separate

    def test_matrix_rendering(self, producer_consumer_design):
        program_cfg = build_cfg(producer_consumer_design)
        table = local_resource_matrix(program_cfg).to_table()
        assert "label" in table and "resource" in table
        assert "link" in table
