"""Per-rule reproducers and unit tests for the lint engine.

Every registered code (``IFA101`` … ``IFA108``) has one minimal design
below that triggers exactly that rule (``IFA104``'s isolated signal
necessarily also trips ``IFA102``; the assertion accounts for it).
``IFA107`` cannot be produced from well-formed VHDL1 source — the CFG
builder connects every statement — so its reproducer severs a flow edge
on a real ``ProcessCFG`` directly.
"""

import dataclasses
from types import SimpleNamespace

import pytest

from repro import workloads
from repro.analysis.api import analyze
from repro.analysis.lint import (
    FAIL_ON_CHOICES,
    LintConfig,
    LintRule,
    findings_fail,
    registered_codes,
    registered_rules,
    rule,
    run_lint_rules,
    severity_counts,
    severity_rank,
)
from repro.analysis.lint.rules import UnreachableStatementRule
from repro.errors import AnalysisError, PolicyError
from repro.security.report import diagnostic_sort_key
from repro.workspace import Workspace


@pytest.fixture(scope="module")
def workspace():
    return Workspace()


def codes_of(linted):
    return sorted({finding.code for finding in linted.findings})


MULTIPLE_DRIVERS = """
entity r101 is
  port( a : in std_logic; o : out std_logic );
end r101;
architecture rtl of r101 is
  signal s : std_logic;
begin
  p1 : process begin s <= a; wait on a; end process p1;
  p2 : process begin s <= a; wait on a; end process p2;
  p3 : process begin o <= s; wait on s; end process p3;
end rtl;
"""

WRITTEN_NEVER_READ = """
entity r102 is
  port( a : in std_logic; o : out std_logic );
end r102;
architecture rtl of r102 is
  signal dead : std_logic;
begin
  p1 : process begin dead <= a; o <= a; wait on a; end process p1;
end rtl;
"""

READ_NEVER_WRITTEN = """
entity r103 is
  port( a : in std_logic; o : out std_logic );
end r103;
architecture rtl of r103 is
  signal ghost : std_logic;
begin
  p1 : process begin o <= ghost; wait on ghost; end process p1;
end rtl;
"""

DEAD_PROCESS = """
entity r104 is
  port( a : in std_logic; o : out std_logic );
end r104;
architecture rtl of r104 is
  signal iso : std_logic;
begin
  p1 : process begin iso <= a; wait on a; end process p1;
  p2 : process begin o <= a; wait on a; end process p2;
end rtl;
"""

INCOMPLETE_SENSITIVITY = """
entity r105 is
  port( a : in std_logic; clk : in std_logic; o : out std_logic );
end r105;
architecture rtl of r105 is
begin
  p : process begin o <= a; wait on clk; end process p;
end rtl;
"""

COMBINATIONAL_LOOP = """
entity r106 is
  port( o : out std_logic );
end r106;
architecture rtl of r106 is
  signal x : std_logic;
  signal y : std_logic;
begin
  p1 : process begin x <= y; wait on y; end process p1;
  p2 : process begin y <= x; wait on x; end process p2;
  p3 : process begin o <= x; wait on x; end process p3;
end rtl;
"""

CLOCKED_LOOP = """
entity r106c is
  port( clk : in std_logic; o : out std_logic );
end r106c;
architecture rtl of r106c is
  signal x : std_logic;
  signal y : std_logic;
begin
  p1 : process begin x <= y; wait on clk; end process p1;
  p2 : process begin y <= x; wait on x; end process p2;
  p3 : process begin o <= x; wait on x; end process p3;
end rtl;
"""

SHADOWED_ASSIGNMENT = """
entity r108 is
  port( a : in std_logic; b : in std_logic; o : out std_logic );
end r108;
architecture rtl of r108 is
begin
  p : process
    variable v : std_logic;
  begin
    v := a;
    v := b;
    o <= v;
    wait on a, b;
  end process p;
end rtl;
"""


class TestReproducers:
    def test_ifa101_multiple_drivers(self, workspace):
        linted = workspace.lint(MULTIPLE_DRIVERS)
        assert codes_of(linted) == ["IFA101"]
        (finding,) = linted.findings
        assert finding.severity == "error"
        assert finding.source == "s"
        assert finding.path == ("p1", "p2")
        assert linted.exit_code == 3

    def test_ifa102_written_never_read(self, workspace):
        linted = workspace.lint(WRITTEN_NEVER_READ)
        assert codes_of(linted) == ["IFA102"]
        (finding,) = linted.findings
        assert finding.severity == "warning"
        assert finding.source == "dead"
        assert linted.exit_code == 0  # warning < the default --fail-on error

    def test_ifa103_read_never_written(self, workspace):
        linted = workspace.lint(READ_NEVER_WRITTEN)
        assert codes_of(linted) == ["IFA103"]
        assert linted.findings[0].source == "ghost"

    def test_ifa104_dead_process(self, workspace):
        linted = workspace.lint(DEAD_PROCESS)
        # The isolated signal is necessarily also written-never-read.
        assert codes_of(linted) == ["IFA102", "IFA104"]
        (finding,) = [f for f in linted.findings if f.code == "IFA104"]
        assert finding.source == "p1"
        assert finding.path == ("iso",)

    def test_ifa104_skips_designs_without_output_ports(self, workspace):
        linted = workspace.lint(workloads.paper_program_a())
        assert "IFA104" not in codes_of(linted)

    def test_ifa105_incomplete_sensitivity(self, workspace):
        linted = workspace.lint(INCOMPLETE_SENSITIVITY)
        assert codes_of(linted) == ["IFA105"]
        (finding,) = linted.findings
        assert finding.source == "p"
        assert finding.target == "a"

    def test_ifa106_combinational_loop(self, workspace):
        linted = workspace.lint(COMBINATIONAL_LOOP)
        assert codes_of(linted) == ["IFA106"]
        (finding,) = linted.findings
        assert finding.severity == "error"
        assert finding.path == ("x", "y")

    def test_ifa106_clocked_driver_breaks_the_loop(self, workspace):
        linted = workspace.lint(CLOCKED_LOOP)
        assert "IFA106" not in codes_of(linted)

    def test_ifa107_unreachable_statement(self):
        result = analyze(workloads.paper_program_a())
        name, cfg = next(iter(result.program_cfg.processes.items()))
        severed_label = max(cfg.body_labels)
        severed = dataclasses.replace(
            cfg,
            flow={edge for edge in cfg.flow if edge[1] != severed_label},
        )
        analysis = SimpleNamespace(
            program_cfg=SimpleNamespace(processes={name: severed})
        )
        (finding,) = UnreachableStatementRule().check(analysis)
        assert finding.code == "IFA107"
        assert finding.target == f"L{severed_label}"

    def test_ifa107_silent_on_well_formed_source(self, workspace):
        for _, source in workloads.batch_workload_sources():
            assert "IFA107" not in codes_of(workspace.lint(source))

    def test_ifa108_shadowed_assignment(self, workspace):
        linted = workspace.lint(SHADOWED_ASSIGNMENT)
        assert codes_of(linted) == ["IFA108"]
        (finding,) = linted.findings
        assert finding.severity == "info"
        assert finding.target == "v"

    def test_ifa108_on_the_paper_overwrite_challenge(self, workspace):
        linted = workspace.lint(workloads.challenge_f_program())
        assert codes_of(linted) == ["IFA108"]
        assert linted.findings[0].target == "t"


class TestRegistry:
    def test_every_catalog_code_is_registered_once(self):
        codes = registered_codes()
        assert codes == sorted(set(codes))
        assert set(codes) >= {f"IFA10{i}" for i in range(1, 9)}

    def test_registry_maps_each_code_to_its_rule(self):
        for code, rule_class in registered_rules().items():
            assert rule_class.code == code
            assert rule_class.title
            assert set(rule_class.requires) <= {
                "cfg", "reaching", "local", "closure", "flow_graph"
            }

    def test_duplicate_code_is_refused(self):
        with pytest.raises(AnalysisError):

            @rule
            class Impostor(LintRule):
                code = "IFA101"
                title = "already taken"
                requires = ("cfg",)

    def test_malformed_code_is_refused(self):
        with pytest.raises(AnalysisError):

            @rule
            class BadCode(LintRule):
                code = "XYZ1"
                title = "bad"
                requires = ("cfg",)

    def test_severity_rank_orders_severities(self):
        assert severity_rank("error") > severity_rank("warning")
        assert severity_rank("warning") > severity_rank("info")


class TestEngine:
    def test_findings_are_deterministically_sorted(self, workspace):
        run = workspace.lint_run(DEAD_PROCESS)
        findings = run.artifacts.lint
        assert list(findings) == sorted(findings, key=diagnostic_sort_key)
        again = run_lint_rules(run.result)
        assert again == findings

    def test_severity_counts(self, workspace):
        linted = workspace.lint(MULTIPLE_DRIVERS)
        counts = severity_counts(linted.findings)
        assert counts == {"findings": 1, "errors": 1, "warnings": 0, "infos": 0}

    def test_findings_fail_thresholds(self, workspace):
        warning = workspace.lint(WRITTEN_NEVER_READ).findings
        error = workspace.lint(MULTIPLE_DRIVERS).findings
        assert not findings_fail(warning, "error")
        assert findings_fail(warning, "warning")
        assert not findings_fail(warning, "never")
        assert findings_fail(error, "error")
        assert findings_fail(error, "warning")
        assert not findings_fail(error, "never")
        with pytest.raises(PolicyError):
            findings_fail(error, "sometimes")
        assert set(FAIL_ON_CHOICES) == {"error", "warning", "never"}


class TestLintConfig:
    def test_disable_filters_a_code(self, workspace):
        config = LintConfig(disable=("IFA108",))
        linted = workspace.lint(workloads.challenge_f_program(), config=config)
        assert linted.findings == []
        assert linted.clean

    def test_enable_is_an_allowlist(self, workspace):
        config = LintConfig(enable=("IFA104",))
        linted = workspace.lint(DEAD_PROCESS, config=config)
        assert codes_of(linted) == ["IFA104"]

    def test_disable_wins_over_enable(self):
        config = LintConfig(enable=("IFA101",), disable=("IFA101",))
        assert not config.allows("IFA101")

    def test_severity_override_changes_exit_code(self, workspace):
        config = LintConfig(severity=(("IFA102", "error"),))
        linted = workspace.lint(WRITTEN_NEVER_READ, config=config)
        (finding,) = linted.findings
        assert finding.severity == "error"
        assert linted.exit_code == 3

    def test_from_dict_rejects_unknown_code(self):
        with pytest.raises(PolicyError) as excinfo:
            LintConfig.from_dict({"disable": ["IFA999"]}, context="doc")
        assert "IFA999" in str(excinfo.value)

    def test_from_dict_rejects_unknown_severity(self):
        with pytest.raises(PolicyError):
            LintConfig.from_dict({"severity": {"IFA101": "fatal"}})

    def test_from_dict_rejects_unknown_key(self):
        with pytest.raises(PolicyError):
            LintConfig.from_dict({"rules": ["IFA101"]})

    def test_round_trips_through_to_dict(self):
        config = LintConfig(
            enable=("IFA101", "IFA102"),
            disable=("IFA108",),
            severity=(("IFA102", "error"),),
        )
        assert LintConfig.from_dict(config.to_dict()) == config

    def test_apply_keeps_sorted_order(self, workspace):
        run = workspace.lint_run(DEAD_PROCESS)
        config = LintConfig(severity=(("IFA104", "error"),))
        applied = config.apply(run.artifacts.lint)
        assert list(applied) == sorted(applied, key=diagnostic_sort_key)
