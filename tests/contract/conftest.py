"""Fixtures for the consumer-contract corpus under ``tests/contract/pacts``.

``recorded_corpus`` loads the committed corpus once per session (the load
itself re-derives every content address, so a hand-edited file fails here).
``fresh_corpus`` re-records the whole corpus from live surfaces once per
session — the recording fixture the integrity tests replay against: a
committed corpus that no longer matches a fresh recording means either the
producer drifted or a volatile field is missing its matcher rule.
"""

from pathlib import Path

import pytest

from repro.contract import Corpus, record_corpus

PACTS_DIR = Path(__file__).resolve().parent / "pacts"


@pytest.fixture(scope="session")
def pacts_dir() -> Path:
    return PACTS_DIR


@pytest.fixture(scope="session")
def recorded_corpus() -> Corpus:
    return Corpus.load(PACTS_DIR)


@pytest.fixture(scope="session")
def fresh_corpus(tmp_path_factory) -> Corpus:
    scratch = tmp_path_factory.mktemp("contract-recording")
    return record_corpus(scratch)
