"""Integrity and coverage gates on the committed interaction corpus.

These tests never boot a server against the corpus (that is
``tests/test_contracts.py``); they pin what the committed files themselves
must guarantee: coverage of every serve route, every recorded error
status, all four JSON CLI subcommands, content-addressed integrity, and —
through the session-scoped recording fixture — that a *fresh* recording
still reproduces the committed corpus bit-for-bit after normalisation.
"""

import dataclasses
import json
import re

import pytest

from repro.contract import diff_documents, interaction_identity
from repro.contract.model import Interaction
from repro.pipeline.render import SCHEMA_VERSION

#: Every route the server dispatches (mirrors serve.py's routing tables).
SERVE_ROUTES = (
    "/analyze", "/check", "/lint", "/policy",
    "/stats", "/version", "/healthz", "/metrics",
)


class TestCoverage:
    def test_corpus_is_large_enough(self, recorded_corpus):
        assert len(recorded_corpus) >= 40

    def test_every_serve_route_is_recorded(self, recorded_corpus):
        recorded = set(recorded_corpus.http_paths())
        for route in SERVE_ROUTES:
            assert route in recorded, f"no interaction exercises {route}"

    def test_every_error_status_is_recorded(self, recorded_corpus):
        statuses = {
            interaction.response["status"]
            for interaction in recorded_corpus
            if interaction.kind == "http"
        }
        assert {200, 400, 404, 405, 409, 413, 429, 504} <= statuses

    def test_all_four_cli_subcommands_are_recorded(self, recorded_corpus):
        assert recorded_corpus.cli_subcommands() == [
            "analyze", "batch", "check", "lint",
        ]

    def test_all_eight_workloads_are_recorded(self, recorded_corpus):
        from repro import workloads

        analyzed = {
            interaction.description.removeprefix("analyze ")
            for interaction in recorded_corpus
            if interaction.kind == "http"
            and interaction.description.startswith("analyze ")
            and interaction.response["status"] == 200
        }
        for name, _ in workloads.batch_workload_sources():
            assert name in analyzed

    def test_recorded_against_current_schema(self, recorded_corpus):
        for interaction in recorded_corpus:
            assert interaction.schema == SCHEMA_VERSION


class TestContentAddressing:
    def test_ids_are_content_addressed(self, recorded_corpus):
        for interaction in recorded_corpus:
            assert interaction.id == interaction_identity(
                interaction.profile, interaction.request
            )

    def test_file_names_are_canonical(self, pacts_dir, recorded_corpus):
        on_disk = sorted(path.name for path in pacts_dir.glob("*.json"))
        canonical = sorted(
            interaction.file_name for interaction in recorded_corpus
        )
        assert on_disk == canonical

    def test_hand_edited_request_is_rejected(self, pacts_dir):
        path = sorted(pacts_dir.glob("analyze-challenge-f-*.json"))[0]
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["request"]["path"] = "/lint"  # tamper with the stimulus
        with pytest.raises(ValueError, match="content[- ]address"):
            Interaction.from_dict(payload, origin=path.name)

    def test_no_absolute_paths_in_committed_files(self, pacts_dir):
        # CLI interactions must reference inputs through placeholders only.
        for path in pacts_dir.glob("*.json"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            request = json.dumps(payload["request"])
            assert not re.search(r'"/(?:tmp|home|root|var)/', request), (
                f"{path.name} leaks an absolute path in its request"
            )


class TestRecordingFixture:
    """The pytest recording fixture: a fresh recording matches the corpus."""

    def test_fresh_recording_matches_committed_corpus(
        self, recorded_corpus, fresh_corpus
    ):
        committed = {i.id: i for i in recorded_corpus}
        fresh = {i.id: i for i in fresh_corpus}
        assert sorted(committed) == sorted(fresh), (
            "the recording inventory changed; re-record the corpus "
            "(vhdl-ifa contract record)"
        )
        for interaction_id, recorded in committed.items():
            live = fresh[interaction_id]
            divergences = diff_documents(
                recorded.response["document"], live.response["document"]
            )
            assert not divergences, (
                f"{recorded.description} ({interaction_id}) drifted: "
                + "; ".join(str(d) for d in divergences)
            )
            assert recorded.response.get("status") == live.response.get("status")
            assert recorded.response.get("exit_code") == live.response.get(
                "exit_code"
            )
            assert recorded.matchers == live.matchers

    def test_interactions_round_trip_through_dict(self, recorded_corpus):
        for interaction in recorded_corpus:
            clone = Interaction.from_dict(interaction.to_dict())
            assert clone == interaction
            assert dataclasses.asdict(clone) == dataclasses.asdict(interaction)
