"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import workloads
from repro.aes import generator
from repro.vhdl.elaborate import elaborate_source


@pytest.fixture
def program_a_source() -> str:
    """The paper's program (a): ``c := b; b := a``."""
    return workloads.paper_program_a()


@pytest.fixture
def program_b_source() -> str:
    """The paper's program (b): ``b := a; c := b``."""
    return workloads.paper_program_b()


@pytest.fixture
def producer_consumer_source() -> str:
    """Two processes communicating through an internal signal."""
    return workloads.producer_consumer_program()


@pytest.fixture
def conditional_source() -> str:
    """A mux with an implicit flow through its select input."""
    return workloads.conditional_program()


@pytest.fixture
def challenge_f_source() -> str:
    """The overwritten-secret program of Open Challenge F."""
    return workloads.challenge_f_program()


@pytest.fixture
def shift_rows_paper_source() -> str:
    """The Figure 5 ShiftRows workload (variables plus a shared temporary)."""
    return generator.shift_rows_paper_source()


@pytest.fixture
def producer_consumer_design(producer_consumer_source):
    """Elaborated producer/consumer design."""
    return elaborate_source(producer_consumer_source)


@pytest.fixture
def conditional_design(conditional_source):
    """Elaborated mux design."""
    return elaborate_source(conditional_source)
