"""Summary-cache invalidation (``repro.hier.summary``).

Summaries are content-addressed by the entity's *self slice*, so editing one
entity of a hierarchical design must recompute exactly that entity's summary
— every other entity is served from cache — and the re-linked document must
reflect the edit.  These tests instrument the summary builder to count real
recomputations.
"""

import pytest

from repro import Workspace, workloads
from repro.hier import build_hierarchy, summary_cache_key
from repro.hier.summary import SUMMARY_FORMAT
from repro.pipeline import analyze_document, json_text
from repro.vhdl.parser import parse_program

VOLATILE = ("timings", "cached_stages")


@pytest.fixture
def built_entities(monkeypatch):
    """Record which entities' summaries are actually (re)built."""
    import repro.hier.summary as summary_module

    built = []
    original = summary_module._build_summary

    def recording(unit, loop_processes, digest):
        built.append(unit.name.lower())
        return original(unit, loop_processes, digest)

    monkeypatch.setattr(summary_module, "_build_summary", recording)
    return built


def _doc(run):
    document = analyze_document(run)
    for field in VOLATILE:
        document.pop(field, None)
    return json_text(document)


class TestInvalidation:
    def test_cold_run_builds_every_entity_once(self, tmp_path, built_entities):
        ws = Workspace(cache_dir=str(tmp_path))
        source = workloads.hierarchical_bus_program(
            banks=2, cells_per_bank=2, depth=3
        )
        ws.analyze_run(source)
        # three distinct entities, one build each — instances share summaries
        assert sorted(built_entities) == ["bank", "bus_top", "reg_cell"]

    def test_warm_run_builds_nothing(self, tmp_path, built_entities):
        ws = Workspace(cache_dir=str(tmp_path))
        source = workloads.hierarchical_mux_program()
        ws.analyze_run(source)
        built_entities.clear()
        run = ws.analyze_run(source)
        assert built_entities == []
        summary_stage = run.stages[0]
        assert summary_stage.name == "summary" and summary_stage.cached

    def test_warm_run_survives_a_fresh_workspace(self, tmp_path, built_entities):
        # the cache is the disk tier: a new session over the same cache_dir
        # still links without rebuilding any summary
        source = workloads.hierarchical_mux_program()
        Workspace(cache_dir=str(tmp_path)).analyze_run(source)
        built_entities.clear()
        Workspace(cache_dir=str(tmp_path)).analyze_run(source)
        assert built_entities == []

    def test_leaf_edit_recomputes_exactly_one_summary(
        self, tmp_path, built_entities
    ):
        ws = Workspace(cache_dir=str(tmp_path))
        source = workloads.hierarchical_bus_program(
            banks=2, cells_per_bank=2, depth=3
        )
        before = ws.analyze_run(source)
        built_entities.clear()

        # edit the leaf entity's behaviour (reg_cell's store process)
        edited = source.replace("state <= nxt;", "state <= (nxt xor clr);", 1)
        assert edited != source
        after = ws.analyze_run(edited)
        assert built_entities == ["reg_cell"]
        assert _doc(after) != _doc(before)

    def test_root_edit_recomputes_only_the_root(self, tmp_path, built_entities):
        ws = Workspace(cache_dir=str(tmp_path))
        source = workloads.hierarchical_bus_program(
            banks=2, cells_per_bank=2, depth=3
        )
        ws.analyze_run(source)
        built_entities.clear()
        edited = source.replace("ready <= bs_0;", "ready <= (bs_0 or bs_1);", 1)
        assert edited != source
        ws.analyze_run(edited)
        assert built_entities == ["bus_top"]

    def test_port_map_edit_recomputes_nothing(self, tmp_path, built_entities):
        # rebinding an instance changes linking, not any entity's self slice
        ws = Workspace(cache_dir=str(tmp_path))
        source = workloads.hierarchical_mux_program()
        before = ws.analyze_run(source)
        built_entities.clear()
        edited = source.replace("port map (lo, sel, n2)", "port map (hi, sel, n2)")
        assert edited != source
        after = ws.analyze_run(edited)
        assert built_entities == []
        assert _doc(after) != _doc(before)

    def test_identical_entities_share_one_summary_across_files(
        self, tmp_path, built_entities
    ):
        # content addressing: the same leaf entity in two different designs
        # is summarised once
        ws = Workspace(cache_dir=str(tmp_path))
        ws.analyze_run(workloads.hierarchical_register_file(cells=2, depth=3))
        built_entities.clear()
        other = workloads.hierarchical_register_file(
            cells=3, depth=3, name="other_file"
        )
        ws.analyze_run(other)
        assert built_entities == ["other_file"]


class TestCacheKeys:
    def test_key_shape_and_option_sensitivity(self):
        program = parse_program(workloads.hierarchical_mux_program())
        unit = build_hierarchy(program).unit_of("stage")
        key = summary_cache_key(unit)
        assert key.startswith(f"summary:v{SUMMARY_FORMAT}:")
        assert key.endswith(":stage:loop_processes=True")
        # loop_processes shapes the summary; improved/under-approx do not
        assert summary_cache_key(unit, loop_processes=False) != key

    def test_summary_entries_land_in_their_own_cache_section(self, tmp_path):
        ws = Workspace(cache_dir=str(tmp_path))
        ws.analyze_run(workloads.hierarchical_mux_program())
        section = tmp_path / "summary"
        assert section.is_dir()
        assert len(list(section.glob("*.pkl"))) == 2  # stage + mux_top
