"""Golden tests pinning the fast front end to the reference implementation.

The production tokenizer (:func:`repro.vhdl.lexer.tokenize`, one master
regex) must be indistinguishable from the original character-at-a-time
scanner (kept as :func:`repro.vhdl.lexer.tokenize_reference`): identical
token streams — kinds, texts *and* positions — identical ASTs through the
parser, and identical errors (message and position) on every lexical
failure mode.  The inputs cover all eight paper workloads, the AES
generator sources, and the lexical edge cases (comments, character/string
literals, multi-line constructs).
"""

import pytest

from repro import workloads
from repro.aes.generator import aes_round_source, shift_rows_paper_source
from repro.errors import LexerError
from repro.vhdl.lexer import Lexer, tokenize, tokenize_reference
from repro.vhdl.parser import Parser, parse_program
from repro.vhdl.stdlogic import STD_LOGIC_CHARS
from repro.vhdl.tokens import TokenKind

WORKLOAD_SOURCES = [
    pytest.param(source, id=name)
    for name, source in workloads.batch_workload_sources()
] + [
    pytest.param(shift_rows_paper_source(), id="aes-shiftrows"),
    pytest.param(aes_round_source(), id="aes-round"),
]

EDGE_CASES = [
    pytest.param("", id="empty"),
    pytest.param("-- only a comment, no newline", id="comment-only-no-newline"),
    pytest.param("-- line one\n-- line two\n", id="comment-only"),
    pytest.param("entity e is end; -- trailing comment", id="trailing-comment"),
    pytest.param("a := b; -- c := d;\ne <= f;", id="commented-out-code"),
    pytest.param("x := '1'; y := '0'; z := 'Z';", id="char-literals"),
    pytest.param(
        "v := " + " & ".join(f"'{c}'" for c in sorted(STD_LOGIC_CHARS)) + ";",
        id="all-std-logic-chars",
    ),
    pytest.param("v := 'z' & 'u' & 'x';", id="char-literal-lowercase"),
    pytest.param('v := "1010"; w := "zzzz";', id="string-literals"),
    pytest.param('v := "";', id="empty-string-literal"),
    pytest.param("IF A /= B THEN C := D; END IF;", id="uppercase-keywords"),
    pytest.param("a:=b;c<=d;e=>f", id="no-whitespace-operators"),
    pytest.param("x := 1 + 23 * 456 - 7890;", id="integers"),
    pytest.param(
        "if a = '1'\n   and b = '0'\nthen\n   c := d\n      + e;\nend if;",
        id="multi-line-statement",
    ),
    pytest.param("\n\n\n   a\t:=\r\n  b;\n\n", id="whitespace-shapes"),
    pytest.param("process (clk)\nbegin\n  wait on clk;\nend process;", id="process"),
]

ERROR_CASES = [
    pytest.param("a := ?;", id="unexpected-char"),
    pytest.param("a := $b;", id="unexpected-dollar"),
    pytest.param("a := '", id="char-eof-after-quote"),
    pytest.param("a := '1", id="char-eof-after-value"),
    pytest.param("a := '12';", id="char-too-long"),
    pytest.param("a := 'q';", id="char-not-std-logic"),
    pytest.param("a := ''; b := c;", id="char-empty"),
    pytest.param('a := "101', id="string-unterminated"),
    pytest.param('a := "10q0";', id="string-bad-char"),
    pytest.param('\n\n  x := "abc";', id="string-bad-char-position"),
]


def _stream(tokens):
    return [(token.kind, token.text, token.position) for token in tokens]


class TestGoldenTokenStreams:
    @pytest.mark.parametrize("source", WORKLOAD_SOURCES)
    def test_workload_token_streams_identical(self, source):
        assert _stream(tokenize(source)) == _stream(tokenize_reference(source))

    @pytest.mark.parametrize("source", EDGE_CASES)
    def test_edge_case_token_streams_identical(self, source):
        assert _stream(tokenize(source)) == _stream(tokenize_reference(source))

    @pytest.mark.parametrize("source", ERROR_CASES)
    def test_lexical_errors_identical(self, source):
        with pytest.raises(LexerError) as fast:
            tokenize(source)
        with pytest.raises(LexerError) as reference:
            tokenize_reference(source)
        assert str(fast.value) == str(reference.value)
        assert fast.value.position == reference.value.position

    def test_streams_end_with_eof(self):
        tokens = tokenize("entity e is end;")
        assert tokens[-1].kind is TokenKind.EOF
        assert tokens[-1].position == tokenize_reference("entity e is end;")[-1].position

    def test_identifiers_normalised_to_lower_case(self):
        (token, _) = tokenize("CamelCase")[:2]
        assert token.kind is TokenKind.IDENTIFIER
        assert token.text == "camelcase"

    def test_char_literal_value_normalised_to_upper_case(self):
        tokens = tokenize("'z'")
        assert tokens[0].kind is TokenKind.CHAR_LITERAL
        assert tokens[0].text == "Z"

    def test_reference_class_still_scans(self):
        # The oracle must stay importable and callable on its own.
        assert _stream(Lexer("a := b;").tokenize()) == _stream(tokenize("a := b;"))


class TestGoldenASTs:
    @pytest.mark.parametrize("source", WORKLOAD_SOURCES)
    def test_workload_asts_identical(self, source):
        via_fast = parse_program(source)
        via_reference = Parser(tokenize_reference(source)).parse_program()
        assert via_fast == via_reference

    def test_multi_entity_ast_identical(self):
        source = workloads.multi_entity_program(3, 2, 4)
        assert (
            parse_program(source)
            == Parser(tokenize_reference(source)).parse_program()
        )
