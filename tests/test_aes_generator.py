"""Tests for the generated VHDL1 AES workload: parseability, simulation
equivalence against the reference, and the analysis properties the evaluation
relies on."""

import random

import pytest

from repro.aes import generator, reference
from repro.analysis.api import analyze, analyze_kemmerer
from repro.semantics.simulator import simulate
from repro.vhdl.elaborate import elaborate_source
from repro.vhdl.parser import parse_program

ALL_SOURCES = {
    "shift_rows_paper": generator.shift_rows_paper_source(),
    "shift_rows_entity": generator.shift_rows_entity_source(),
    "add_round_key": generator.add_round_key_source(),
    "add_round_key_bytes": generator.add_round_key_bytewise_source(num_bytes=4),
    "sub_bytes": generator.sub_bytes_source(),
    "mix_column": generator.mix_column_source(),
    "key_schedule_step": generator.key_schedule_step_source(),
    "aes_round": generator.aes_round_source(),
}


class TestGeneratedSourcesAreWellFormed:
    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_parses_and_elaborates(self, name):
        design = elaborate_source(ALL_SOURCES[name])
        assert design.processes

    @pytest.mark.parametrize("name", sorted(ALL_SOURCES))
    def test_analysis_runs(self, name):
        result = analyze(ALL_SOURCES[name])
        assert result.graph.node_count() > 0

    def test_sub_bytes_eight_bit_variant(self):
        source = generator.sub_bytes_source(sbox_bits=8)
        program = parse_program(source)
        assert program.entities[0].ports[0].port_type.width == 8

    def test_sub_bytes_rejects_wrong_table_size(self):
        with pytest.raises(ValueError):
            generator.sub_bytes_source(sbox_bits=4, sbox=[0] * 5)

    def test_expected_sources_describe_a_permutation(self):
        expected = generator.shift_rows_expected_sources()
        assert len(expected) == 12
        assert sorted(expected.values()) == sorted(expected.keys())


class TestSimulationMatchesReference:
    def setup_method(self):
        self.rng = random.Random(2005)

    def _random_state(self):
        return [self.rng.randrange(256) for _ in range(16)]

    def test_shift_rows(self):
        design = elaborate_source(generator.shift_rows_entity_source())
        for _ in range(3):
            state = self._random_state()
            outputs = simulate(design, {"state_i": reference.state_to_bitstring(state)})
            got = reference.bitstring_to_state(outputs["state_o"].to_string())
            assert got == reference.shift_rows(state)

    def test_add_round_key(self):
        design = elaborate_source(generator.add_round_key_source())
        for _ in range(3):
            state, key = self._random_state(), self._random_state()
            outputs = simulate(
                design,
                {
                    "state_i": reference.state_to_bitstring(state),
                    "key_i": reference.state_to_bitstring(key),
                },
            )
            got = reference.bitstring_to_state(outputs["state_o"].to_string())
            assert got == reference.add_round_key(state, key)

    def test_mix_column(self):
        design = elaborate_source(generator.mix_column_source())
        for _ in range(3):
            column = [self.rng.randrange(256) for _ in range(4)]
            outputs = simulate(
                design,
                {f"c{i}_i": format(column[i], "08b") for i in range(4)},
            )
            got = [int(outputs[f"c{i}_o"].to_string(), 2) for i in range(4)]
            assert got == reference.mix_single_column(column)

    def test_sub_bytes_reduced_box(self):
        design = elaborate_source(generator.sub_bytes_source(sbox_bits=4))
        for value in range(16):
            outputs = simulate(design, {"nibble_i": format(value, "04b")})
            assert int(outputs["nibble_o"].to_string(), 2) == generator.REDUCED_SBOX[value]

    def test_key_schedule_step_structure(self):
        design = elaborate_source(generator.key_schedule_step_source(rcon=0x01))
        words = [0x2B7E1516, 0x28AED2A6, 0xABF71588, 0x09CF4F3C]
        outputs = simulate(
            design, {f"w{i}_i": format(words[i], "032b") for i in range(4)}
        )
        got = [int(outputs[f"w{i}_o"].to_string(), 2) for i in range(4, 8)]
        rotated = ((words[3] << 8) | (words[3] >> 24)) & 0xFFFFFFFF
        w4 = words[0] ^ rotated ^ (0x01 << 24)
        w5 = words[1] ^ w4
        w6 = words[2] ^ w5
        w7 = words[3] ^ w6
        assert got == [w4, w5, w6, w7]

    def test_aes_round_pipeline(self):
        design = elaborate_source(generator.aes_round_source())
        state, key = self._random_state(), self._random_state()
        outputs = simulate(
            design,
            {
                "state_i": reference.state_to_bitstring(state),
                "key_i": reference.state_to_bitstring(key),
            },
        )
        expected = reference.shift_rows(reference.add_round_key(state, key))
        assert reference.bitstring_to_state(outputs["state_o"].to_string()) == expected


class TestAnalysisOfGeneratedComponents:
    def test_bytewise_add_round_key_keeps_bytes_separate(self):
        source = generator.add_round_key_bytewise_source(num_bytes=4)
        ours = analyze(source, improved=True).collapsed_graph().without_self_loops()
        kemmerer = analyze_kemmerer(source).graph.without_self_loops()
        for index in range(4):
            # besides the carrying temporary, only the matching state/key bytes
            input_sources = ours.predecessors(f"out_{index}") - {"t"}
            assert input_sources == frozenset({f"state_{index}", f"key_{index}"})
            # the shared temporary makes the baseline mix the bytes
            other_bytes = {
                f"state_{j}" for j in range(4) if j != index
            }
            assert other_bytes <= kemmerer.predecessors(f"out_{index}")

    def test_bytewise_add_round_key_simulates_correctly(self):
        source = generator.add_round_key_bytewise_source(num_bytes=4)
        design = elaborate_source(source)
        inputs = {}
        state = [0x12, 0x34, 0x56, 0x78]
        key = [0xFF, 0x0F, 0xF0, 0x00]
        for index in range(4):
            inputs[f"state_{index}"] = format(state[index], "08b")
            inputs[f"key_{index}"] = format(key[index], "08b")
        outputs = simulate(design, inputs)
        got = [int(outputs[f"out_{index}"].to_string(), 2) for index in range(4)]
        assert got == [s ^ k for s, k in zip(state, key)]

    def test_add_round_key_flows(self):
        result = analyze(generator.add_round_key_source())
        graph = result.graph
        assert graph.has_edge("state_i", "state_o")
        assert graph.has_edge("key_i", "state_o")

    def test_sub_bytes_flow_is_through_the_temporary(self):
        result = analyze(generator.sub_bytes_source())
        graph = result.graph_without_self_loops()
        assert graph.has_edge("nibble_i", "t")
        assert graph.has_edge("t", "nibble_o")

    def test_aes_round_cross_process_flows(self):
        result = analyze(generator.aes_round_source())
        graph = result.graph
        from repro.analysis.resource_matrix import outgoing_node

        sink = outgoing_node("state_o")
        assert graph.has_edge("after_sr", sink)
        # both primary inputs reach the output through the pipeline stages
        assert graph.has_edge("state_i", "after_ark")
        assert graph.has_edge("after_ark", "after_sr")
        assert graph.has_edge("state_i", sink)
        assert graph.has_edge("key_i", sink)

    def test_figure5_shapes(self):
        nodes = [n for row in generator.shift_rows_row_nodes().values() for n in row]
        ours = (
            analyze(generator.shift_rows_paper_source(), loop_processes=False)
            .collapsed_graph()
            .without_self_loops()
            .restricted_to(nodes)
        )
        kemmerer = (
            analyze_kemmerer(generator.shift_rows_paper_source(), loop_processes=False)
            .graph.without_self_loops()
            .restricted_to(nodes)
        )
        assert ours.node_count() == kemmerer.node_count() == 12
        assert ours.edge_count() == 12
        assert kemmerer.edge_count() == 132
