"""The example scripts must stay runnable — they double as end-to-end tests."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(script, cwd=None):
    """Run one example in a child interpreter that can import ``repro``.

    The child may run with any working directory (the tests use a tmp dir so
    DOT outputs don't litter the repo), so ``PYTHONPATH`` must carry the
    *absolute* path of ``src`` — a relative entry would resolve against the
    child's cwd and the import would fail.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(SRC_DIR) if not existing else str(SRC_DIR) + os.pathsep + existing
    )
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=env,
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script, tmp_path):
    completed = run_example(script, cwd=tmp_path)
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3


class TestExampleContent:
    def test_quickstart_reports_dependencies(self, tmp_path):
        completed = run_example(EXAMPLES_DIR / "quickstart.py", cwd=tmp_path)
        assert "result <- data, enable, mask" in completed.stdout

    def test_shiftrows_audit_reports_the_precision_gap(self, tmp_path):
        completed = run_example(EXAMPLES_DIR / "aes_shiftrows_audit.py", cwd=tmp_path)
        assert "false positives eliminated by the analysis: 120" in completed.stdout

    def test_covert_channel_check_distinguishes_the_variants(self, tmp_path):
        completed = run_example(EXAMPLES_DIR / "covert_channel_check.py", cwd=tmp_path)
        assert "verdict: PERMISSIBLE" in completed.stdout
        assert "verdict: COVERT CHANNEL FOUND" in completed.stdout

    def test_simulation_example_validates_against_reference(self, tmp_path):
        completed = run_example(EXAMPLES_DIR / "simulate_aes_round.py", cwd=tmp_path)
        assert "MISMATCH" not in completed.stdout
        assert completed.stdout.count("OK") >= 4
