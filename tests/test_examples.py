"""The example scripts must stay runnable — they double as end-to-end tests."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # DOT outputs land in the script directory, not cwd
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3


class TestExampleContent:
    def test_quickstart_reports_dependencies(self, tmp_path):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "result <- data, enable, mask" in completed.stdout

    def test_shiftrows_audit_reports_the_precision_gap(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "aes_shiftrows_audit.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "false positives eliminated by the analysis: 120" in completed.stdout

    def test_covert_channel_check_distinguishes_the_variants(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "covert_channel_check.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "verdict: PERMISSIBLE" in completed.stdout
        assert "verdict: COVERT CHANNEL FOUND" in completed.stdout

    def test_simulation_example_validates_against_reference(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "simulate_aes_round.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert "MISMATCH" not in completed.stdout
        assert completed.stdout.count("OK") >= 4
