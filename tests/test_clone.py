"""Golden tests for the structural AST cloner (``repro.vhdl.clone``).

The cloner replaced ``copy.deepcopy`` on the elaboration hot path; these
tests pin its contract: a clone is *equal* to a deepcopy for every statement
and declaration of every workload, shares the frozen position objects it is
allowed to share, and isolates elaboration's in-place mutations from the
cached parse artifact.
"""

import copy

import pytest

from repro import workloads
from repro.vhdl import ast
from repro.vhdl.clone import (
    clone_declaration,
    clone_expression,
    clone_statement,
    clone_statements,
)
from repro.vhdl.elaborate import elaborate
from repro.vhdl.parser import parse_program

ALL_WORKLOADS = (
    workloads.batch_workload_sources() + workloads.hierarchy_workload_sources()
)


def _processes(program):
    for architecture in program.architectures:
        for stmt in architecture.body:
            if isinstance(stmt, ast.ProcessStatement):
                yield stmt


@pytest.mark.parametrize("name,source", ALL_WORKLOADS, ids=lambda v: v[:20])
def test_clone_equals_deepcopy_across_workloads(name, source):
    program = parse_program(source)
    for process in _processes(program):
        assert clone_statements(process.body) == copy.deepcopy(process.body)
        for decl in process.declarations:
            assert clone_declaration(decl) == copy.deepcopy(decl)


def test_clone_is_a_distinct_tree_sharing_positions():
    program = parse_program(workloads.paper_program_a())
    process = next(_processes(program))
    cloned = clone_statements(process.body)
    assert cloned == process.body
    for original, copy_ in zip(process.body, cloned):
        assert original is not copy_
        assert original.position is copy_.position  # frozen, safe to share


def test_rename_hook_rewrites_every_occurrence():
    source = """
entity e is
  port( a : in std_logic;
        b : out std_logic );
end e;

architecture rtl of e is
begin
  p : process
    variable v : std_logic;
  begin
    v := (a and a);
    if (v = '1') then
      b <= v;
    end if;
    wait on a;
  end process p;
end rtl;
"""
    process = next(_processes(parse_program(source)))
    renamed = clone_statements(process.body, lambda n: f"x_{n}")
    assign, branch, wait = renamed
    assert assign.target == "x_v"
    assert assign.value.left.ident == "x_a"
    assert branch.then_branch[0].target == "x_b"
    assert wait.signals == ("x_a",)
    # the original is untouched
    assert process.body[0].target == "v"


def test_elaboration_does_not_mutate_the_parse_artifact():
    # elaborate stamps labels and resolves name kinds on *copies*; analysing
    # the same parsed program twice must start from pristine statements both
    # times, and leave the artifact equal to a fresh parse
    program = parse_program(workloads.challenge_f_program())
    pristine = copy.deepcopy(program)
    first = elaborate(program)
    assert program == pristine
    second = elaborate(program)
    assert program == pristine
    assert [p.name for p in first.processes] == [p.name for p in second.processes]


def test_unsupported_nodes_raise():
    with pytest.raises(TypeError, match="cannot clone"):
        clone_statement(object())  # type: ignore[arg-type]
    with pytest.raises(TypeError, match="cannot clone"):
        clone_declaration(object())  # type: ignore[arg-type]
    with pytest.raises(TypeError, match="cannot clone"):
        clone_expression(object())  # type: ignore[arg-type]
