"""Tests for the pure-Python AES-128 reference implementation (FIPS-197)."""

import pytest
from hypothesis import given, strategies as st

from repro.aes import reference as aes

states = st.lists(st.integers(0, 255), min_size=16, max_size=16)


class TestSBox:
    def test_known_entries(self):
        # FIPS-197 Figure 7
        assert aes.SBOX[0x00] == 0x63
        assert aes.SBOX[0x01] == 0x7C
        assert aes.SBOX[0x53] == 0xED
        assert aes.SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(aes.SBOX) == list(range(256))

    @given(st.integers(0, 255))
    def test_inverse_sbox(self, byte):
        assert aes.INV_SBOX[aes.SBOX[byte]] == byte


class TestFieldArithmetic:
    def test_xtime_examples(self):
        # FIPS-197 Section 4.2.1
        assert aes.xtime(0x57) == 0xAE
        assert aes.xtime(0xAE) == 0x47
        assert aes.xtime(0x47) == 0x8E
        assert aes.xtime(0x8E) == 0x07

    def test_gf_multiply_example(self):
        assert aes.gf_multiply(0x57, 0x13) == 0xFE

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_gf_multiply_commutative(self, a, b):
        assert aes.gf_multiply(a, b) == aes.gf_multiply(b, a)

    @given(st.integers(0, 255))
    def test_gf_multiply_identity(self, a):
        assert aes.gf_multiply(a, 1) == a
        assert aes.gf_multiply(a, 0) == 0


class TestRoundTransformations:
    @given(states)
    def test_shift_rows_leaves_row_zero_untouched(self, state):
        shifted = aes.shift_rows(state)
        for column in range(4):
            assert shifted[4 * column] == state[4 * column]

    @given(states)
    def test_shift_rows_is_a_permutation_of_the_state(self, state):
        assert sorted(aes.shift_rows(state)) == sorted(state)

    @given(states)
    def test_shift_rows_applied_four_times_is_identity(self, state):
        result = state
        for _ in range(4):
            result = aes.shift_rows(result)
        assert result == state

    def test_mix_single_column_example(self):
        # FIPS-197 Appendix B, round 1 MixColumns, first column
        assert aes.mix_single_column([0xD4, 0xBF, 0x5D, 0x30]) == [
            0x04,
            0x66,
            0x81,
            0xE5,
        ]

    @given(states)
    def test_add_round_key_is_an_involution(self, state):
        key = list(range(16))
        assert aes.add_round_key(aes.add_round_key(state, key), key) == state

    @given(states)
    def test_sub_bytes_invertible(self, state):
        substituted = aes.sub_bytes(state)
        assert [aes.INV_SBOX[b] for b in substituted] == state


class TestKeySchedule:
    KEY = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6,
        0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
    ]

    def test_first_round_key_is_the_key(self):
        assert aes.expand_key(self.KEY)[0] == self.KEY

    def test_fips_197_appendix_a_round_keys(self):
        round_keys = aes.expand_key(self.KEY)
        # w[4..7] of the FIPS-197 Appendix A.1 expansion
        assert round_keys[1] == [
            0xA0, 0xFA, 0xFE, 0x17, 0x88, 0x54, 0x2C, 0xB1,
            0x23, 0xA3, 0x39, 0x39, 0x2A, 0x6C, 0x76, 0x05,
        ]
        # the final round key w[40..43]
        assert round_keys[10] == [
            0xD0, 0x14, 0xF9, 0xA8, 0xC9, 0xEE, 0x25, 0x89,
            0xE1, 0x3F, 0x0C, 0xC8, 0xB6, 0x63, 0x0C, 0xA6,
        ]

    def test_wrong_key_length_rejected(self):
        with pytest.raises(ValueError):
            aes.expand_key([0] * 15)


class TestEncryption:
    def test_fips_197_appendix_b(self):
        plaintext = [
            0x32, 0x43, 0xF6, 0xA8, 0x88, 0x5A, 0x30, 0x8D,
            0x31, 0x31, 0x98, 0xA2, 0xE0, 0x37, 0x07, 0x34,
        ]
        key = TestKeySchedule.KEY
        expected = [
            0x39, 0x25, 0x84, 0x1D, 0x02, 0xDC, 0x09, 0xFB,
            0xDC, 0x11, 0x85, 0x97, 0x19, 0x6A, 0x0B, 0x32,
        ]
        assert aes.encrypt_block(plaintext, key) == expected

    def test_fips_197_appendix_c_1(self):
        plaintext = list(bytes.fromhex("00112233445566778899aabbccddeeff"))
        key = list(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        expected = list(bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"))
        assert aes.encrypt_block(plaintext, key) == expected

    def test_wrong_block_length_rejected(self):
        with pytest.raises(ValueError):
            aes.encrypt_block([0] * 8, [0] * 16)


class TestStateConversions:
    @given(states)
    def test_bitstring_roundtrip(self, state):
        assert aes.bitstring_to_state(aes.state_to_bitstring(state)) == state

    def test_bytes_roundtrip(self):
        block = bytes(range(16))
        assert aes.state_to_bytes(aes.bytes_to_state(block)) == block

    def test_invalid_lengths_rejected(self):
        with pytest.raises(ValueError):
            aes.bytes_to_state(b"short")
        with pytest.raises(ValueError):
            aes.bitstring_to_state("1" * 64)
