"""Tests for Tables 7 (specialisation), 8 (closure) and 9 (improved analysis)."""

from repro.analysis.api import analyze
from repro.analysis.closure import (
    merge_edges,
    present_value_edges,
    propagate,
    synchronized_value_edges,
)
from repro.analysis.reaching_defs import INITIAL_LABEL
from repro.analysis.resource_matrix import (
    Access,
    Entry,
    ResourceMatrix,
    incoming_node,
    outgoing_node,
)
from repro import workloads
from repro.aes.generator import shift_rows_paper_source


class TestSpecialization:
    def test_present_specialisation_restricts_to_read_names(self):
        result = analyze(workloads.paper_program_b(), loop_processes=False)
        labels = sorted(result.program_cfg.processes["p"].body_labels)
        first, second = labels[0], labels[1]
        # at label 2 only b is read, so RD† there only mentions b
        names = {name for name, _ in result.specialized.present_at(second)}
        assert names == {"b"}
        # and its definition is label 1, not the initial value
        assert result.specialized.present_at(second) == frozenset({("b", first)})

    def test_active_specialisation_lives_at_wait_labels(self):
        result = analyze(workloads.producer_consumer_program())
        wait_labels = result.program_cfg.wait_labels
        assert set(result.specialized.active) <= set(wait_labels)
        producer = result.program_cfg.processes["producer"]
        producer_wait = next(iter(producer.wait_labels))
        link_assign = next(iter(producer.assignment_labels_of_signal("link")))
        assert ("link", link_assign) in result.specialized.active_at(producer_wait)

    def test_no_active_specialisation_without_cross_flow(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal link : std_logic;
        begin
          p1 : process
            variable v : std_logic;
          begin
            v := a;
            link <= v;
          end process p1;
          p2 : process begin y <= link; wait on link; end process p2;
        end arch;
        """
        result = analyze(source)
        assert result.specialized.active == {}


class TestCopyEdges:
    def test_present_value_edges_point_from_definition_to_use(self):
        result = analyze(workloads.paper_program_b(), loop_processes=False)
        labels = sorted(result.program_cfg.processes["p"].body_labels)
        first, second = labels[0], labels[1]
        edges = present_value_edges(result.specialized)
        assert second in edges.get(first, set())

    def test_synchronized_value_edges_cross_processes(self):
        result = analyze(workloads.producer_consumer_program())
        producer = result.program_cfg.processes["producer"]
        consumer = result.program_cfg.processes["consumer"]
        link_assign = next(iter(producer.assignment_labels_of_signal("link")))
        result_assign = next(iter(consumer.assignment_labels_of_signal("result")))
        edges = synchronized_value_edges(result.program_cfg, result.specialized)
        assert result_assign in edges.get(link_assign, set())

    def test_merge_edges(self):
        merged = merge_edges({1: {2}}, {1: {3}, 4: {5}})
        assert merged == {1: {2, 3}, 4: {5}}


class TestPropagation:
    def test_propagate_copies_r0_entries_transitively(self):
        seeds = [
            Entry("a", 1, Access.R0),
            Entry("x", 1, Access.M0),
            Entry("y", 3, Access.M0),
        ]
        matrix = propagate(seeds, {1: {2}, 2: {3}})
        assert Entry("a", 2, Access.R0) in matrix
        assert Entry("a", 3, Access.R0) in matrix

    def test_propagate_does_not_copy_modifications(self):
        seeds = [Entry("x", 1, Access.M0)]
        matrix = propagate(seeds, {1: {2}})
        assert Entry("x", 2, Access.M0) not in matrix
        assert len(matrix) == 1

    def test_propagate_handles_cycles(self):
        seeds = [Entry("a", 1, Access.R0)]
        matrix = propagate(seeds, {1: {2}, 2: {1}})
        assert len(matrix) == 2


class TestClosureOnPaperPrograms:
    def test_program_a_graph_is_non_transitive(self):
        result = analyze(workloads.paper_program_a(), improved=False, loop_processes=False)
        graph = result.graph_without_self_loops()
        assert graph.has_edge("b", "c")
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("a", "c")
        assert not graph.is_transitive()

    def test_program_b_graph_contains_the_composed_flow(self):
        result = analyze(workloads.paper_program_b(), improved=False, loop_processes=False)
        graph = result.graph_without_self_loops()
        assert graph.edges == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_global_matrix_contains_local_matrix(self):
        for source in (workloads.paper_program_a(), workloads.producer_consumer_program()):
            result = analyze(source, improved=False)
            assert result.rm_local.entries() <= result.rm_global.entries()

    def test_cross_process_flow_through_synchronisation(self):
        result = analyze(workloads.producer_consumer_program(), improved=False)
        graph = result.graph_without_self_loops()
        assert graph.has_edge("left", "result")
        assert graph.has_edge("right", "result")
        assert graph.has_edge("mixed", "result")


class TestImprovedAnalysis:
    def test_initial_value_nodes_for_program_b(self):
        result = analyze(workloads.paper_program_b(), improved=True, loop_processes=False)
        graph = result.graph_without_self_loops()
        assert graph.has_edge(incoming_node("a"), "c")
        assert not graph.has_edge(incoming_node("b"), "c")

    def test_initial_value_nodes_for_program_a(self):
        result = analyze(workloads.paper_program_a(), improved=True, loop_processes=False)
        graph = result.graph_without_self_loops()
        assert graph.has_edge(incoming_node("b"), "c")
        assert not graph.has_edge(incoming_node("a"), "c")

    def test_outgoing_nodes_exist_for_out_ports(self):
        result = analyze(workloads.challenge_f_program())
        assert "leak" in result.outgoing_labels
        assert outgoing_node("leak") in result.graph.nodes

    def test_outgoing_node_receives_flows_from_inputs(self):
        result = analyze(workloads.producer_consumer_program())
        graph = result.graph
        assert graph.has_edge("left", outgoing_node("result"))
        assert graph.has_edge(incoming_node("left"), outgoing_node("result"))

    def test_overwritten_secret_does_not_reach_output(self):
        # The closure copies every value that can actually reach the output
        # assignment into the outgoing node's reads, so the *direct* edges into
        # ``leak•`` are the complete answer; the graph is non-transitive and
        # the spurious path key -> t -> leak• must not be read as a flow.
        result = analyze(workloads.challenge_f_program())
        graph = result.graph
        sink = outgoing_node("leak")
        assert graph.has_edge("plain", sink)
        assert graph.has_edge(incoming_node("plain"), sink)
        assert not graph.has_edge("key", sink)
        assert not graph.has_edge(incoming_node("key"), sink)
        # the intermediate edges that make the naive path exist are themselves
        # correct flows: key reaches t, and t's final value reaches leak
        assert graph.has_edge("key", "t")
        assert graph.has_edge("t", sink)

    def test_improved_matrix_is_superset_of_basic(self):
        for source in (workloads.paper_program_b(), workloads.producer_consumer_program()):
            basic = analyze(source, improved=False)
            improved = analyze(source, improved=True)
            assert basic.rm_global.entries() <= improved.rm_global.entries()

    def test_outgoing_labels_do_not_collide_with_program_labels(self):
        result = analyze(workloads.producer_consumer_program())
        program_labels = result.program_cfg.labels
        for label in result.outgoing_labels.values():
            assert label not in program_labels


class TestShiftRowsPrecision:
    def test_rows_are_kept_separate(self):
        from repro.aes.generator import shift_rows_expected_sources, shift_rows_row_nodes

        result = analyze(shift_rows_paper_source(), improved=True, loop_processes=False)
        nodes = [n for row in shift_rows_row_nodes().values() for n in row]
        graph = (
            result.collapsed_graph().without_self_loops().restricted_to(nodes)
        )
        for target, source in shift_rows_expected_sources().items():
            assert graph.predecessors(target) == frozenset({source})
        assert graph.edge_count() == 12
