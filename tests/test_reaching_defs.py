"""Tests for the whole-program Reaching Definitions analysis (Table 5)."""

from repro.analysis.reaching_active import analyze_all_active_signals
from repro.analysis.reaching_defs import (
    INITIAL_LABEL,
    analyze_reaching_definitions,
    generated_signals_at_wait,
    generated_signals_at_wait_naive,
    initial_definitions,
    killed_signals_at_wait,
    killed_signals_at_wait_naive,
)
from repro.cfg.builder import build_cfg
from repro.cfg.labels import BlockKind
from repro.vhdl.elaborate import elaborate_source
from repro import workloads


def analyse(source, loop=True):
    design = elaborate_source(source)
    program_cfg = build_cfg(design, loop_processes=loop)
    active = analyze_all_active_signals(program_cfg.processes)
    reaching = analyze_reaching_definitions(program_cfg, active)
    return design, program_cfg, active, reaching


class TestInitialDefinitions:
    def test_every_mentioned_resource_starts_at_question_mark(self):
        _, program_cfg, _, reaching = analyse(workloads.producer_consumer_program())
        producer = program_cfg.processes["producer"]
        entry = reaching.entry_of(producer.entry_label)
        assert ("left", INITIAL_LABEL) in entry
        assert ("right", INITIAL_LABEL) in entry
        assert ("mixed", INITIAL_LABEL) in entry
        assert ("link", INITIAL_LABEL) in entry

    def test_initial_definitions_helper(self):
        _, program_cfg, _, _ = analyse(workloads.producer_consumer_program())
        producer = program_cfg.processes["producer"]
        resources = {name for name, _ in initial_definitions(producer)}
        assert resources == {"left", "right", "mixed", "link"}


class TestVariableDefinitions:
    def test_assignment_kills_initial_value(self):
        _, program_cfg, _, reaching = analyse(workloads.paper_program_b(), loop=False)
        process = program_cfg.processes["p"]
        labels = sorted(process.body_labels)
        first, second = labels[0], labels[1]
        # after "b := a" the initial value of b no longer reaches label 2
        assert ("b", INITIAL_LABEL) not in reaching.entry_of(second)
        assert ("b", first) in reaching.entry_of(second)
        # a is never assigned, its initial value reaches everywhere
        assert ("a", INITIAL_LABEL) in reaching.entry_of(second)

    def test_program_a_keeps_initial_b(self):
        _, program_cfg, _, reaching = analyse(workloads.paper_program_a(), loop=False)
        process = program_cfg.processes["p"]
        first = sorted(process.body_labels)[0]
        assert ("b", INITIAL_LABEL) in reaching.entry_of(first)


class TestWaitGenKill:
    def test_wait_generates_present_definitions_for_may_active_signals(self):
        _, program_cfg, active, reaching = analyse(
            workloads.producer_consumer_program()
        )
        producer = program_cfg.processes["producer"]
        consumer = program_cfg.processes["consumer"]
        producer_wait = next(iter(producer.wait_labels))
        consumer_wait = next(iter(consumer.wait_labels))
        # link may be active at the producer's wait, so both waits define link
        assert generated_signals_at_wait(program_cfg, active, producer_wait) == {
            "link",
            "result",
        }
        assert generated_signals_at_wait(program_cfg, active, consumer_wait) == {
            "link",
            "result",
        }
        # ... and the consumer reads link defined at its own wait label
        consumer_read_label = min(consumer.body_labels)
        defs = reaching.definitions_of("link", consumer_read_label)
        assert consumer_wait in defs

    def test_wait_kill_uses_under_approximation(self):
        _, program_cfg, active, _ = analyse(workloads.producer_consumer_program())
        producer = program_cfg.processes["producer"]
        producer_wait = next(iter(producer.wait_labels))
        killed = killed_signals_at_wait(program_cfg, active, producer_wait)
        # link is definitely active at the producer's wait (single path)
        assert "link" in killed

    def test_factorised_and_naive_cross_flow_agree(self):
        for source in (
            workloads.producer_consumer_program(),
            workloads.conditional_program(),
            workloads.challenge_f_program(),
        ):
            _, program_cfg, active, _ = analyse(source)
            for wait_label in program_cfg.wait_labels:
                assert killed_signals_at_wait(
                    program_cfg, active, wait_label
                ) == killed_signals_at_wait_naive(program_cfg, active, wait_label)
                assert generated_signals_at_wait(
                    program_cfg, active, wait_label
                ) == generated_signals_at_wait_naive(program_cfg, active, wait_label)

    def test_process_without_wait_disables_cross_flow(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal link : std_logic;
        begin
          p1 : process
            variable v : std_logic;
          begin
            v := a;
            link <= v;
          end process p1;
          p2 : process begin y <= link; wait on link; end process p2;
        end arch;
        """
        _, program_cfg, active, _ = analyse(source)
        wait_label = next(iter(program_cfg.processes["p2"].wait_labels))
        assert generated_signals_at_wait(program_cfg, active, wait_label) == frozenset()
        assert killed_signals_at_wait(program_cfg, active, wait_label) == frozenset()


class TestOverwrittenSecret:
    def test_overwritten_definition_does_not_reach_the_output(self):
        _, program_cfg, _, reaching = analyse(workloads.challenge_f_program())
        process = program_cfg.processes["p"]
        labels = sorted(process.body_labels)
        key_assign, plain_assign, output_assign = labels[0], labels[1], labels[2]
        defs_of_t = reaching.definitions_of("t", output_assign)
        assert plain_assign in defs_of_t
        assert key_assign not in defs_of_t

    def test_under_approximation_kills_earlier_synchronised_values(self):
        # In the two-phase design the second wait is guaranteed to resynchronise
        # ``stage``; only the second wait's definition reaches the export.
        _, program_cfg, _, reaching = analyse(workloads.two_phase_program())
        process = program_cfg.processes["p"]
        wait_labels = sorted(process.wait_labels)
        export_label = max(process.assignment_labels_of_signal("result"))
        defs_of_stage = reaching.definitions_of("stage", export_label)
        assert wait_labels[1] in defs_of_stage
        assert wait_labels[0] not in defs_of_stage
        assert INITIAL_LABEL not in defs_of_stage

    def test_ablated_analysis_keeps_the_overwritten_definitions(self):
        design = elaborate_source(workloads.two_phase_program())
        program_cfg = build_cfg(design)
        active = analyze_all_active_signals(program_cfg.processes)
        reaching = analyze_reaching_definitions(
            program_cfg, active, use_under_approximation=False
        )
        process = program_cfg.processes["p"]
        wait_labels = sorted(process.wait_labels)
        export_label = max(process.assignment_labels_of_signal("result"))
        defs_of_stage = reaching.definitions_of("stage", export_label)
        assert wait_labels[0] in defs_of_stage
        assert INITIAL_LABEL in defs_of_stage

    def test_signal_present_values_only_defined_at_waits_or_initially(self):
        _, program_cfg, _, reaching = analyse(workloads.producer_consumer_program())
        wait_labels = set(program_cfg.wait_labels) | {INITIAL_LABEL}
        signal_names = set(program_cfg.design.signals)
        for label in program_cfg.labels:
            for name, def_label in reaching.entry_of(label):
                if name in signal_names:
                    assert def_label in wait_labels
