"""Unit tests for the ResourceMatrix container and the node-name helpers."""

from repro.analysis.resource_matrix import (
    Access,
    Entry,
    ResourceMatrix,
    base_resource,
    incoming_node,
    is_incoming,
    is_outgoing,
    outgoing_node,
)


class TestAccessKinds:
    def test_read_and_modify_predicates(self):
        assert Access.R0.is_read and Access.R1.is_read
        assert not Access.R0.is_modify
        assert Access.M0.is_modify and Access.M1.is_modify
        assert not Access.M1.is_read


class TestNodeNameHelpers:
    def test_incoming_and_outgoing_names(self):
        assert incoming_node("key") == "key○"
        assert outgoing_node("ct") == "ct•"

    def test_predicates(self):
        assert is_incoming(incoming_node("a"))
        assert is_outgoing(outgoing_node("a"))
        assert not is_incoming("a") and not is_outgoing("a")

    def test_base_resource(self):
        assert base_resource(incoming_node("a")) == "a"
        assert base_resource(outgoing_node("a")) == "a"
        assert base_resource("a") == "a"


class TestResourceMatrix:
    def _matrix(self):
        matrix = ResourceMatrix()
        matrix.add("a", 1, Access.R0)
        matrix.add("b", 1, Access.M0)
        matrix.add("s", 2, Access.M1)
        matrix.add("s", 3, Access.R1)
        return matrix

    def test_add_reports_novelty(self):
        matrix = ResourceMatrix()
        assert matrix.add("a", 1, Access.R0)
        assert not matrix.add("a", 1, Access.R0)
        assert len(matrix) == 1

    def test_membership_and_iteration(self):
        matrix = self._matrix()
        assert Entry("a", 1, Access.R0) in matrix
        assert Entry("a", 9, Access.R0) not in matrix
        assert len(list(matrix)) == 4

    def test_label_and_name_queries(self):
        matrix = self._matrix()
        assert matrix.labels() == {1, 2, 3}
        assert matrix.names() == {"a", "b", "s"}
        assert {e.name for e in matrix.at_label(1)} == {"a", "b"}
        assert [e.name for e in matrix.reads_at(1)] == ["a"]
        assert [e.name for e in matrix.modifications_at(1)] == ["b"]

    def test_access_queries(self):
        matrix = self._matrix()
        assert {e.name for e in matrix.with_access(Access.M1)} == {"s"}
        assert [e.label for e in matrix.reads_of("a")] == [1]
        assert matrix.reads_of("s", Access.R1)[0].label == 3

    def test_union_and_update(self):
        left = self._matrix()
        right = ResourceMatrix([Entry("z", 9, Access.M0)])
        combined = left.union(right)
        assert len(combined) == 5
        left.update(right)
        assert left == combined

    def test_copy_is_independent(self):
        matrix = self._matrix()
        clone = matrix.copy()
        clone.add("new", 7, Access.R0)
        assert len(matrix) == 4
        assert len(clone) == 5

    def test_index_by_label(self):
        grouped = self._matrix().index_by_label()
        assert set(grouped) == {1, 2, 3}
        assert len(grouped[1]) == 2

    def test_equality_and_entries(self):
        assert self._matrix() == self._matrix()
        assert self._matrix().entries() == self._matrix().entries()

    def test_table_rendering_is_sorted_by_label(self):
        table = self._matrix().to_table()
        lines = table.splitlines()
        assert lines[0].startswith("label")
        labels = [int(line.split()[0]) for line in lines[1:]]
        assert labels == sorted(labels)


class TestCrossUniverseReencoding:
    """eq/union across universes, including strict-superset universes.

    Matrices built in different sessions have incompatible bit positions, so
    comparison and union must re-encode by name — also when one universe
    holds strictly more interned names than the other (e.g. an artifact
    loaded from a cache snapshot taken later in a session's life).
    """

    def _entries(self, matrix):
        matrix.add("a", 1, Access.R0)
        matrix.add("b", 1, Access.M0)
        matrix.add("s", 2, Access.M1)
        return matrix

    def test_equality_when_one_universe_is_a_strict_superset(self):
        from repro.dataflow.universe import FactUniverse

        small = FactUniverse()
        big = FactUniverse()
        # interleave extra names so shared names land on different bits
        for name in ("x", "a", "y", "b", "z", "s", "w"):
            big.intern(name)
        left = self._entries(ResourceMatrix(universe=small))
        right = self._entries(ResourceMatrix(universe=big))
        assert set(big) > set(small)
        assert left == right and right == left
        right.add("extra", 1, Access.R0)
        assert left != right

    def test_union_reencodes_into_the_superset_universe(self):
        from repro.dataflow.universe import FactUniverse

        small = FactUniverse()
        big = FactUniverse()
        big.intern_all(["pad0", "a", "pad1", "s"])
        left = self._entries(ResourceMatrix(universe=small))
        right = ResourceMatrix(universe=big)
        right.add("s", 2, Access.M1)  # overlaps left on a different bit
        right.add("q", 9, Access.R1)

        combined = right.union(left)
        assert combined.universe is big
        assert Entry("a", 1, Access.R0) in combined
        assert Entry("q", 9, Access.R1) in combined
        assert len(combined) == 4  # the shared ("s", 2, M1) is not doubled

        # and the mirror-direction union gives the same entry set
        mirrored = left.union(right)
        assert mirrored.universe is small
        assert mirrored == combined
        assert mirrored.entries() == combined.entries()

    def test_union_interns_foreign_names_into_the_target_universe(self):
        from repro.dataflow.universe import FactUniverse

        small = FactUniverse()
        left = ResourceMatrix(universe=small)
        left.add("a", 1, Access.R0)
        foreign = ResourceMatrix(universe=FactUniverse(["only_here"]))
        foreign.add("only_here", 4, Access.M0)
        left.update(foreign)
        assert "only_here" in small
        assert Entry("only_here", 4, Access.M0) in left
