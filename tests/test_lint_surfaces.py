"""Cross-surface contract tests for the lint engine.

The headline property mirrors ``tests/test_serve.py``: the findings the
lint stage produces are **byte-identical** on every surface — the single
file ``vhdl-ifa lint --json`` document, each batch job's ``"lint"``
section, and the ``POST /lint`` serve response — asserted over every paper
workload with only the run-dependent ``timings`` / ``cached_stages``
fields normalised.  The rest covers the ``[lint]`` policy table round
trip, the shared ``--fail-on`` exit-code contract and the
``scripts/check_invariants.py`` repo gate (which must fail on a seeded
violation).
"""

import json
import http.client
import subprocess
import sys
from pathlib import Path

import pytest

from repro import workloads
from repro.cli import main
from repro.pipeline import (
    AnalysisServer,
    ArtifactCache,
    ServerThread,
    TieredArtifactCache,
    json_text,
)
from repro.security.policy_file import load_policy_file, policy_to_dict
from repro.workspace import Workspace

VOLATILE_FIELDS = ("timings", "cached_stages")

REPO_ROOT = Path(__file__).resolve().parent.parent

LINT_POLICY_TOML = """\
[lint]
disable = ["IFA108"]

[lint.severity]
IFA102 = "error"
"""


def _request(port, method, path, payload=None, timeout=60):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None if payload is None else json.dumps(payload)
    connection.request(method, path, body=body)
    response = connection.getresponse()
    return response.status, response.read().decode("utf-8")


def _normalised(document_text):
    document = json.loads(document_text)
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return json_text(document) + "\n"


def _lint_body(document_text):
    """The surface-independent lint payload of any lint-bearing document."""
    document = json.loads(document_text)
    return json_text(
        {key: document[key] for key in ("clean", "findings", "summary")}
    )


@pytest.fixture(scope="module")
def server():
    with ServerThread(
        AnalysisServer(port=0, cache=TieredArtifactCache(ArtifactCache()))
    ) as running:
        yield running


@pytest.fixture
def workload_files(tmp_path):
    paths = []
    for name, source in workloads.batch_workload_sources():
        path = tmp_path / f"{name}.vhd"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
    return paths


@pytest.fixture
def lint_policy(tmp_path):
    path = tmp_path / "lint_policy.toml"
    path.write_text(LINT_POLICY_TOML, encoding="utf-8")
    return str(path)


@pytest.fixture
def noisy_file(tmp_path):
    # challenge_f carries the paper's overwritten-variable IFA108 finding.
    path = tmp_path / "noisy.vhd"
    path.write_text(workloads.challenge_f_program(), encoding="utf-8")
    return str(path)


class TestByteIdentityAcrossSurfaces:
    def test_serve_matches_cli_on_every_paper_workload(
        self, server, workload_files, capsys
    ):
        assert len(workload_files) >= 8
        for path in workload_files:
            status, served = _request(server.port, "POST", "/lint", {"file": path})
            assert status == 200
            assert main(["lint", path, "--json", "--fail-on", "never"]) == 0
            printed = capsys.readouterr().out
            assert _normalised(served) == _normalised(printed)

    def test_batch_sections_match_cli_on_every_paper_workload(
        self, workload_files, capsys
    ):
        assert (
            main(["batch", *workload_files, "--lint", "--json", "--sequential"])
            == 0
        )
        batch_document = json.loads(capsys.readouterr().out)
        jobs = {job["file"]: job for job in batch_document["jobs"]}
        assert set(jobs) == set(workload_files)
        for path in workload_files:
            assert main(["lint", path, "--json", "--fail-on", "never"]) == 0
            single = capsys.readouterr().out
            assert json_text(jobs[path]["lint"]) == _lint_body(single)

    def test_policy_configured_lint_is_identical_on_all_surfaces(
        self, server, noisy_file, lint_policy, capsys
    ):
        # CLI with --policy …
        assert main(["lint", noisy_file, "--json", "--policy", lint_policy]) == 0
        single = capsys.readouterr().out
        # … the batch section driven by the same policy file …
        assert (
            main(
                ["batch", noisy_file, "--lint", "--json", "--sequential",
                 "--policy", lint_policy]
            )
            == 0
        )
        batch_document = json.loads(capsys.readouterr().out)
        (job,) = batch_document["jobs"]
        assert json_text(job["lint"]) == _lint_body(single)
        # … and the serve response with the policy inline.
        policy_document = policy_to_dict(load_policy_file(lint_policy))
        status, served = _request(
            server.port,
            "POST",
            "/lint",
            {"file": noisy_file, "policy": policy_document},
        )
        assert status == 200
        assert _normalised(served) == _normalised(single)
        # The [lint] table really did apply: IFA108 is disabled.
        assert json.loads(single)["clean"] is True


class TestLintPolicyRoundTrip:
    def test_lint_table_survives_to_dict(self, lint_policy):
        policy = load_policy_file(lint_policy)
        document = policy_to_dict(policy)
        assert document["lint"] == {
            "disable": ["IFA108"],
            "severity": {"IFA102": "error"},
        }
        assert policy.lint is not None
        assert not policy.lint.allows("IFA108")

    def test_lint_only_document_is_a_valid_policy(self):
        workspace = Workspace()
        policy = workspace.policy({"lint": {"disable": ["IFA108"]}})
        linted = workspace.lint(
            workloads.challenge_f_program(), policy=policy
        )
        assert linted.clean

    def test_explicit_config_wins_over_policy(self, lint_policy):
        from repro.analysis.lint import LintConfig

        workspace = Workspace()
        policy = workspace.load_policy(lint_policy)
        linted = workspace.lint(
            workloads.challenge_f_program(), policy=policy, config=LintConfig()
        )
        assert [finding.code for finding in linted.findings] == ["IFA108"]


MULTI_DRIVER = """
entity md is
  port( a : in std_logic; o : out std_logic );
end md;
architecture rtl of md is
  signal s : std_logic;
begin
  p1 : process begin s <= a; wait on a; end process p1;
  p2 : process begin s <= a; wait on a; end process p2;
  p3 : process begin o <= s; wait on s; end process p3;
end rtl;
"""

DEAD_SIGNAL = """
entity ds is
  port( a : in std_logic; o : out std_logic );
end ds;
architecture rtl of ds is
  signal dead : std_logic;
begin
  p1 : process begin dead <= a; o <= a; wait on a; end process p1;
end rtl;
"""


class TestFailOn:
    @pytest.fixture
    def error_file(self, tmp_path):
        path = tmp_path / "md.vhd"
        path.write_text(MULTI_DRIVER, encoding="utf-8")
        return str(path)

    @pytest.fixture
    def warning_file(self, tmp_path):
        path = tmp_path / "ds.vhd"
        path.write_text(DEAD_SIGNAL, encoding="utf-8")
        return str(path)

    def test_lint_error_finding_exits_3_by_default(self, error_file, capsys):
        assert main(["lint", error_file]) == 3
        assert "IFA101" in capsys.readouterr().out

    def test_lint_fail_on_never_reports_without_failing(self, error_file, capsys):
        assert main(["lint", error_file, "--fail-on", "never"]) == 0
        assert "IFA101" in capsys.readouterr().out

    def test_lint_warning_needs_fail_on_warning(self, warning_file, capsys):
        assert main(["lint", warning_file]) == 0
        assert main(["lint", warning_file, "--fail-on", "warning"]) == 3
        capsys.readouterr()

    def test_check_fail_on_never_reports_violations_without_failing(
        self, noisy_file, capsys
    ):
        assert main(["check", noisy_file, "--secret", "key"]) == 3
        assert (
            main(["check", noisy_file, "--secret", "key", "--fail-on", "never"])
            == 0
        )
        assert "IFA001" in capsys.readouterr().out

    def test_batch_lint_aggregates_fail_on(
        self, error_file, warning_file, capsys
    ):
        argv = ["batch", error_file, warning_file, "--lint", "--sequential"]
        assert main(argv) == 3  # the IFA101 error trips the default
        capsys.readouterr()
        assert main([*argv, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_batch_warning_thresholds(self, warning_file, capsys):
        argv = ["batch", warning_file, "--lint", "--sequential"]
        assert main(argv) == 0  # warnings don't trip the default
        capsys.readouterr()
        assert main([*argv, "--fail-on", "warning"]) == 3
        capsys.readouterr()


SEEDED_VIOLATIONS = '''
from repro.dataflow.facts import FactUniverse
from repro.pipeline.stages import Stage
from repro.pipeline.render import json_text

GLOBAL = FactUniverse()
CODE_A = "IFA101"
CODE_B = "IFA101"


def f(u=FactUniverse()):
    return u


BAD_STAGE = Stage("mystery", "attr", f)


def g(doc):
    return json_text({"raw": doc})
'''


class TestInvariantGate:
    def run_gate(self, *paths):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_invariants.py"),
             *paths],
            capture_output=True,
            text=True,
        )

    def test_repo_tree_is_clean(self):
        result = self.run_gate()
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_seeded_violations_all_fire(self, tmp_path):
        seeded = tmp_path / "seeded.py"
        seeded.write_text(SEEDED_VIOLATIONS, encoding="utf-8")
        result = self.run_gate(str(seeded))
        assert result.returncode == 1
        for fragment in (
            "module scope",                 # global FactUniverse()
            "default argument",             # FactUniverse() default
            "Stage('mystery'",              # missing option_fields
            "not a stamped document",       # raw json_text payload
            "assigned 2 times",             # duplicate diagnostic code
        ):
            assert fragment in result.stderr, fragment

    def test_docs_gate_requires_catalog_entries(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_docs.py")],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "lint catalog matches rules.py" in result.stdout
