"""Tests for elaboration (Section 3.3): rewrites, scoping and error checking."""

import pytest

from repro.errors import ElaborationError
from repro.vhdl import ast
from repro.vhdl.elaborate import elaborate, elaborate_source
from repro.vhdl.parser import parse_program


class TestUnitSelection:
    def test_single_architecture_needs_no_entity_name(self):
        design = elaborate_source(
            "entity e is end e;"
            "architecture a of e is begin p : process begin null; end process p; end a;"
        )
        assert design.name == "e"
        assert design.architecture_name == "a"

    def test_multiple_architectures_require_entity_name(self):
        source = (
            "entity e1 is end e1;"
            "entity e2 is end e2;"
            "architecture a of e1 is begin p : process begin null; end process p; end a;"
            "architecture b of e2 is begin q : process begin null; end process q; end b;"
        )
        with pytest.raises(ElaborationError):
            elaborate(parse_program(source))
        design = elaborate(parse_program(source), "e2")
        assert design.processes[0].name == "q"

    def test_missing_entity_rejected(self):
        source = "architecture a of ghost is begin p : process begin null; end process p; end a;"
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_missing_architecture_rejected(self):
        with pytest.raises(ElaborationError):
            elaborate_source("entity lonely is end lonely;")


class TestConcurrentAssignRewriting:
    SOURCE = """
    entity e is
      port( a : in std_logic; b : in std_logic; y : out std_logic );
    end e;
    architecture a of e is
    begin
      y <= a and b;
    end a;
    """

    def test_becomes_a_process_with_trailing_wait(self):
        design = elaborate_source(self.SOURCE)
        assert len(design.processes) == 1
        process = design.processes[0]
        assert process.synthesized
        assert isinstance(process.body[0], ast.SignalAssign)
        wait = process.body[-1]
        assert isinstance(wait, ast.Wait)
        assert set(wait.signals) == {"a", "b"}

    def test_sensitivity_excludes_non_signals(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
        begin
          y <= a xor '1';
        end arch;
        """
        design = elaborate_source(source)
        assert set(design.processes[0].body[-1].signals) == {"a"}


class TestBlocks:
    SOURCE = """
    entity e is port( a : in std_logic; y : out std_logic ); end e;
    architecture arch of e is
    begin
      blk : block
        signal hidden : std_logic;
      begin
        inner : process
        begin
          hidden <= a;
          wait on a;
        end process inner;

        y <= hidden;
      end block blk;
    end arch;
    """

    def test_block_signals_are_hoisted(self):
        design = elaborate_source(self.SOURCE)
        assert "hidden" in design.signals
        assert not design.signals["hidden"].is_port

    def test_block_body_is_flattened(self):
        design = elaborate_source(self.SOURCE)
        names = [p.name for p in design.processes]
        assert "inner" in names
        assert len(design.processes) == 2  # inner + synthesized concurrent assign

    def test_duplicate_block_signal_rejected(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
          signal s : std_logic;
        begin
          blk : block
            signal s : std_logic;
          begin
            inner : process begin s <= a; wait on a; end process inner;
          end block blk;
        end arch;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)


class TestSensitivityLists:
    def test_sensitivity_list_becomes_trailing_wait(self):
        source = """
        entity e is port( clk : in std_logic; q : out std_logic ); end e;
        architecture a of e is
        begin
          p : process(clk)
          begin
            q <= clk;
          end process p;
        end a;
        """
        design = elaborate_source(source)
        wait = design.processes[0].body[-1]
        assert isinstance(wait, ast.Wait)
        assert wait.signals == ("clk",)


class TestNameResolution:
    def test_kinds_are_resolved(self):
        source = """
        entity e is port( s : in std_logic; y : out std_logic ); end e;
        architecture a of e is
        begin
          p : process
            variable v : std_logic;
          begin
            v := s;
            y <= v;
            wait on s;
          end process p;
        end a;
        """
        design = elaborate_source(source)
        body = design.processes[0].body
        assert body[0].value.kind is ast.NameKind.SIGNAL
        assert body[1].value.kind is ast.NameKind.VARIABLE

    def test_undeclared_name_rejected(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          p : process begin x := ghost; end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_assignment_to_undeclared_variable_rejected(self):
        source = """
        entity e is port( s : in std_logic ); end e;
        architecture a of e is
        begin
          p : process begin x := s; wait on s; end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_assignment_to_input_port_rejected(self):
        source = """
        entity e is port( s : in std_logic ); end e;
        architecture a of e is
        begin
          p : process begin s <= '1'; wait on s; end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_variable_shadowing_signal_rejected(self):
        source = """
        entity e is port( s : in std_logic ); end e;
        architecture a of e is
        begin
          p : process
            variable s : std_logic;
          begin
            s := '1';
            wait on s;
          end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_duplicate_process_names_rejected(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          p : process begin null; end process p;
          p : process begin null; end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)

    def test_signal_declared_in_process_rejected(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          p : process
            signal s : std_logic;
          begin
            null;
          end process p;
        end a;
        """
        with pytest.raises(ElaborationError):
            elaborate_source(source)


class TestToRangeNormalisation:
    SOURCE = """
    entity e is
      port( data : in std_logic_vector(0 to 7);
            y    : out std_logic_vector(7 downto 0) );
    end e;
    architecture a of e is
    begin
      p : process
        variable v : std_logic_vector(0 to 3);
      begin
        v := data(0 to 3);
        y(7 downto 4) <= v(0 to 3);
        y(3 downto 0) <= data(4 to 7);
        wait on data;
      end process p;
    end a;
    """

    def test_declarations_become_downto(self):
        design = elaborate_source(self.SOURCE)
        port_type = design.signals["data"].sig_type
        assert port_type.direction is ast.RangeDirection.DOWNTO
        assert (port_type.left, port_type.right) == (7, 0)
        var_type = design.processes[0].variables["v"].var_type
        assert var_type.direction is ast.RangeDirection.DOWNTO

    def test_slice_references_are_reindexed(self):
        design = elaborate_source(self.SOURCE)
        body = design.processes[0].body
        first = body[0].value
        # data(0 to 7) has offset 7; data(0 to 3) becomes data(7 downto 4)
        assert (first.left, first.right) == (7, 4)
        assert first.direction is ast.RangeDirection.DOWNTO
        # targets are normalised as well
        assert body[1].target_slice == (7, 4, ast.RangeDirection.DOWNTO)
        assert body[2].value.left == 3 and body[2].value.right == 0

    def test_port_classification(self):
        design = elaborate_source(self.SOURCE)
        assert design.signals["data"].is_input
        assert design.signals["y"].is_output
        assert design.signals["data"].width == 8
