"""Tests for the VHDL1 parser and the pretty-printer round trip."""

import pytest

from repro.errors import ParseError
from repro.vhdl import ast
from repro.vhdl.parser import (
    parse_expression,
    parse_program,
    parse_statement,
    parse_statements,
)
from repro.vhdl.pretty import format_program, format_statements


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expression("'1'"), ast.LogicLiteral)
        assert isinstance(parse_expression('"1010"'), ast.VectorLiteral)
        assert isinstance(parse_expression("42"), ast.IntegerLiteral)

    def test_true_false_sugar(self):
        assert parse_expression("true").value == "1"
        assert parse_expression("false").value == "0"

    def test_name_and_slice(self):
        name = parse_expression("data")
        assert isinstance(name, ast.Name) and name.ident == "data"
        sliced = parse_expression("data(7 downto 4)")
        assert isinstance(sliced, ast.SliceName)
        assert (sliced.left, sliced.right) == (7, 4)
        assert sliced.direction is ast.RangeDirection.DOWNTO

    def test_single_bit_index_becomes_degenerate_slice(self):
        sliced = parse_expression("data(3)")
        assert isinstance(sliced, ast.SliceName)
        assert (sliced.left, sliced.right) == (3, 3)

    def test_to_direction_slice(self):
        sliced = parse_expression("data(0 to 3)")
        assert sliced.direction is ast.RangeDirection.TO

    def test_unary_not(self):
        expr = parse_expression("not a")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operator == "not"

    def test_binary_operators(self):
        expr = parse_expression("a xor b")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.operator == "xor"

    def test_precedence_relational_binds_tighter_than_logical(self):
        expr = parse_expression("a = '1' and b = '0'")
        assert expr.operator == "and"
        assert expr.left.operator == "="
        assert expr.right.operator == "="

    def test_precedence_adding_binds_tighter_than_relational(self):
        expr = parse_expression("a + b = c")
        assert expr.operator == "="
        assert expr.left.operator == "+"

    def test_concatenation(self):
        expr = parse_expression("a(6 downto 0) & '0'")
        assert expr.operator == "&"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("a and (b or c)")
        assert expr.operator == "and"
        assert expr.right.operator == "or"

    def test_less_equal_inside_expression_is_relational(self):
        expr = parse_expression("a <= b")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.operator == "<="

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a b")


class TestStatements:
    def test_null(self):
        assert isinstance(parse_statement("null;"), ast.Null)

    def test_variable_assignment(self):
        stmt = parse_statement("x := a xor b;")
        assert isinstance(stmt, ast.VariableAssign)
        assert stmt.target == "x"
        assert stmt.target_slice is None

    def test_variable_slice_assignment(self):
        stmt = parse_statement("x(7 downto 4) := a;")
        assert stmt.target_slice == (7, 4, ast.RangeDirection.DOWNTO)

    def test_signal_assignment(self):
        stmt = parse_statement("s <= '1';")
        assert isinstance(stmt, ast.SignalAssign)

    def test_wait_variants(self):
        full = parse_statement("wait on clk, rst until rst = '0';")
        assert set(full.signals) == {"clk", "rst"}
        assert full.condition is not None

        bare = parse_statement("wait;")
        assert bare.signals == () and bare.condition is None

        on_only = parse_statement("wait on clk;")
        assert on_only.signals == ("clk",) and on_only.condition is None

    def test_wait_until_defaults_signals_to_free_names(self):
        stmt = parse_statement("wait until enable = '1';")
        assert stmt.signals == ("enable",)

    def test_if_with_else(self):
        stmt = parse_statement("if sel = '1' then x := a; else x := b; end if;")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_branch) == 1
        assert len(stmt.else_branch) == 1

    def test_if_without_else_gets_null_branch(self):
        stmt = parse_statement("if sel = '1' then x := a; end if;")
        assert len(stmt.else_branch) == 1
        assert isinstance(stmt.else_branch[0], ast.Null)

    def test_elsif_chain_desugars_to_nested_if(self):
        stmt = parse_statement(
            "if a = '1' then x := '1'; elsif b = '1' then x := '0'; "
            "else x := 'Z'; end if;"
        )
        nested = stmt.else_branch[0]
        assert isinstance(nested, ast.If)
        assert len(nested.else_branch) == 1

    def test_while_loop(self):
        stmt = parse_statement("while c /= \"00\" loop c := c - \"01\"; end loop;")
        assert isinstance(stmt, ast.While)
        assert len(stmt.body) == 1

    def test_statement_sequence(self):
        statements = parse_statements("x := a; y := b; s <= x;")
        assert len(statements) == 3

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("x := a")

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("entity;")


class TestDesignUnits:
    ENTITY = """
    entity adder is
      port( a : in std_logic_vector(3 downto 0);
            b : in std_logic_vector(3 downto 0);
            y : out std_logic_vector(3 downto 0) );
    end adder;
    """

    ARCHITECTURE = """
    architecture behav of adder is
      signal t : std_logic_vector(3 downto 0);
    begin
      p : process
        variable v : std_logic_vector(3 downto 0);
      begin
        v := a + b;
        t <= v;
        wait on a, b;
      end process p;

      y <= t;
    end behav;
    """

    def test_entity_ports(self):
        program = parse_program(self.ENTITY)
        entity = program.entities[0]
        assert entity.name == "adder"
        assert [p.name for p in entity.ports] == ["a", "b", "y"]
        assert entity.ports[0].mode is ast.PortMode.IN
        assert entity.ports[2].mode is ast.PortMode.OUT

    def test_grouped_port_declaration(self):
        program = parse_program(
            "entity e is port( a, b : in std_logic; y : out std_logic ); end e;"
        )
        names = [p.name for p in program.entities[0].ports]
        assert names == ["a", "b", "y"]
        assert all(p.mode is ast.PortMode.IN for p in program.entities[0].ports[:2])

    def test_portless_entity(self):
        program = parse_program("entity top is end top;")
        assert program.entities[0].ports == []

    def test_architecture_structure(self):
        program = parse_program(self.ENTITY + self.ARCHITECTURE)
        arch = program.architectures[0]
        assert arch.entity_name == "adder"
        assert len(arch.declarations) == 1
        assert len(arch.body) == 2
        assert isinstance(arch.body[0], ast.ProcessStatement)
        assert isinstance(arch.body[1], ast.ConcurrentAssign)

    def test_process_with_sensitivity_list(self):
        source = """
        entity e is port( clk : in std_logic; q : out std_logic ); end e;
        architecture a of e is
        begin
          p : process(clk)
          begin
            q <= clk;
          end process p;
        end a;
        """
        program = parse_program(source)
        process = program.architectures[0].body[0]
        assert process.sensitivity == ("clk",)

    def test_block_statement(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          blk : block
            signal inner : std_logic;
          begin
            inner <= '1';
          end block blk;
        end a;
        """
        program = parse_program(source)
        block = program.architectures[0].body[0]
        assert isinstance(block, ast.BlockStatement)
        assert block.name == "blk"
        assert len(block.declarations) == 1

    def test_mismatched_closing_name_rejected(self):
        with pytest.raises(ParseError):
            parse_program("entity foo is end bar;")

    def test_unlabelled_process_rejected(self):
        source = """
        entity e is end e;
        architecture a of e is
        begin
          process begin null; end process;
        end a;
        """
        with pytest.raises(ParseError):
            parse_program(source)

    def test_entity_lookup_helpers(self):
        program = parse_program(self.ENTITY + self.ARCHITECTURE)
        assert program.entity("ADDER") is program.entities[0]
        assert program.entity("missing") is None
        assert program.architecture_of("adder") is program.architectures[0]


class TestPrettyPrinterRoundTrip:
    def _roundtrip(self, source: str) -> None:
        program = parse_program(source)
        printed = format_program(program)
        reparsed = parse_program(printed)
        assert format_program(reparsed) == printed

    def test_roundtrip_full_design(self):
        self._roundtrip(TestDesignUnits.ENTITY + TestDesignUnits.ARCHITECTURE)

    def test_roundtrip_control_flow(self):
        source = """
        entity ctl is port( s : in std_logic; y : out std_logic ); end ctl;
        architecture a of ctl is
        begin
          p : process
            variable c : std_logic_vector(1 downto 0);
          begin
            c := "10";
            while c /= "00" loop
              if s = '1' then
                c := c - "01";
              else
                c := "00";
              end if;
            end loop;
            y <= c(0);
            wait on s;
          end process p;
        end a;
        """
        self._roundtrip(source)

    def test_statement_roundtrip(self):
        from repro.vhdl.parser import parse_statements

        source = "x := a; if a = '1' then s <= b; else null; end if; wait on a;"
        statements = parse_statements(source)
        printed = format_statements(statements)
        assert format_statements(parse_statements(printed)) == printed
