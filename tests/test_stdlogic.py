"""Tests for the IEEE-1164 nine-valued logic domain."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.vhdl.stdlogic import (
    DONT_CARE,
    H,
    L,
    ONE,
    STD_LOGIC_CHARS,
    StdLogic,
    StdLogicVector,
    U,
    W,
    X,
    Z,
    ZERO,
    resolve_values,
    value_to_string,
)

logic_values = st.sampled_from([StdLogic(c) for c in STD_LOGIC_CHARS])
bit_strings = st.text(alphabet="01", min_size=1, max_size=24)


class TestStdLogicBasics:
    def test_interning_returns_same_object(self):
        assert StdLogic("1") is StdLogic("1")
        assert StdLogic(ONE) is ONE

    def test_invalid_character_rejected(self):
        with pytest.raises(SimulationError):
            StdLogic("q")

    def test_equality_with_characters(self):
        assert StdLogic("0") == "0"
        assert StdLogic("0") != "1"

    def test_meaning_strings(self):
        assert StdLogic("U").meaning == "Uninitialized"
        assert StdLogic("-").meaning == "Don't care"

    def test_is_high_and_low_cover_weak_values(self):
        assert ONE.is_high() and H.is_high()
        assert ZERO.is_low() and L.is_low()
        assert not X.is_high() and not X.is_low()

    def test_to_bit(self):
        assert ONE.to_bit() == 1
        assert L.to_bit() == 0
        with pytest.raises(SimulationError):
            Z.to_bit()

    def test_from_bit(self):
        assert StdLogic.from_bit(1) is ONE
        assert StdLogic.from_bit(0) is ZERO

    def test_to_x01(self):
        assert H.to_x01() is ONE
        assert L.to_x01() is ZERO
        assert Z.to_x01() is X
        assert U.to_x01() is X


class TestLogicOperators:
    def test_and_truth_table_corners(self):
        assert (ONE & ONE) is ONE
        assert (ONE & ZERO) is ZERO
        assert (ZERO & X) is ZERO   # 0 dominates and
        assert (ONE & X) is X
        assert (U & ZERO) is ZERO

    def test_or_truth_table_corners(self):
        assert (ZERO | ZERO) is ZERO
        assert (ONE | X) is ONE     # 1 dominates or
        assert (ZERO | X) is X
        assert (U | ONE) is ONE

    def test_xor_truth_table_corners(self):
        assert (ONE ^ ZERO) is ONE
        assert (ONE ^ ONE) is ZERO
        assert (ONE ^ X) is X

    def test_not(self):
        assert ~ONE is ZERO
        assert ~ZERO is ONE
        assert ~H is ZERO
        assert ~L is ONE
        assert ~Z is X

    def test_derived_gates(self):
        assert ONE.nand(ONE) is ZERO
        assert ZERO.nor(ZERO) is ONE
        assert ONE.xnor(ONE) is ONE

    @given(logic_values, logic_values)
    def test_and_or_commutative(self, a, b):
        assert (a & b) is (b & a)
        assert (a | b) is (b | a)
        assert (a ^ b) is (b ^ a)

    @given(logic_values)
    def test_weak_values_behave_like_strong_in_gates(self, a):
        assert (a & H) is (a & ONE)
        assert (a & L) is (a & ZERO)
        assert (a | H) is (a | ONE)
        assert (a | L) is (a | ZERO)


class TestResolution:
    def test_strong_beats_weak(self):
        assert StdLogic.resolve_pair(ZERO, H) is ZERO
        assert StdLogic.resolve_pair(ONE, L) is ONE

    def test_conflicting_strong_drivers_are_unknown(self):
        assert StdLogic.resolve_pair(ZERO, ONE) is X

    def test_high_impedance_is_identity(self):
        for char in STD_LOGIC_CHARS:
            value = StdLogic(char)
            if value is U:
                continue
            assert StdLogic.resolve_pair(value, Z) is value or value is DONT_CARE

    def test_uninitialized_dominates(self):
        for char in STD_LOGIC_CHARS:
            assert StdLogic.resolve_pair(U, StdLogic(char)) is U

    def test_resolve_empty_is_high_impedance(self):
        assert StdLogic.resolve([]) is Z

    def test_resolve_single_driver(self):
        assert StdLogic.resolve([ONE]) is ONE

    @given(logic_values, logic_values)
    def test_resolution_commutative(self, a, b):
        assert StdLogic.resolve_pair(a, b) is StdLogic.resolve_pair(b, a)

    @given(logic_values, logic_values, logic_values)
    def test_resolution_associative(self, a, b, c):
        left = StdLogic.resolve_pair(StdLogic.resolve_pair(a, b), c)
        right = StdLogic.resolve_pair(a, StdLogic.resolve_pair(b, c))
        assert left is right

    @given(logic_values)
    def test_resolution_idempotent_except_dont_care(self, a):
        # IEEE 1164 resolves '-' against '-' to 'X'; every other value is
        # idempotent under resolution.
        if a is DONT_CARE:
            assert StdLogic.resolve_pair(a, a) is X
        else:
            assert StdLogic.resolve_pair(a, a) is a


class TestStdLogicVector:
    def test_from_string_and_back(self):
        vector = StdLogicVector.from_string("10ZX")
        assert vector.to_string() == "10ZX"
        assert vector.width == 4

    def test_from_unsigned(self):
        assert StdLogicVector.from_unsigned(10, 4).to_string() == "1010"
        assert StdLogicVector.from_unsigned(0, 3).to_string() == "000"

    def test_from_unsigned_truncates_modulo_width(self):
        assert StdLogicVector.from_unsigned(17, 4).to_unsigned() == 1

    def test_from_unsigned_rejects_negative(self):
        with pytest.raises(SimulationError):
            StdLogicVector.from_unsigned(-1, 4)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_unsigned_roundtrip(self, value):
        assert StdLogicVector.from_unsigned(value, 16).to_unsigned() == value

    def test_uninitialized(self):
        assert StdLogicVector.uninitialized(3).to_string() == "UUU"

    def test_equality_with_strings(self):
        assert StdLogicVector.from_string("01") == "01"

    def test_bitwise_operators(self):
        a = StdLogicVector.from_string("1100")
        b = StdLogicVector.from_string("1010")
        assert (a & b).to_string() == "1000"
        assert (a | b).to_string() == "1110"
        assert (a ^ b).to_string() == "0110"
        assert (~a).to_string() == "0011"

    def test_bitwise_width_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            StdLogicVector.from_string("11") & StdLogicVector.from_string("1")

    @given(bit_strings, bit_strings)
    def test_xor_self_inverse(self, left, right):
        width = min(len(left), len(right))
        a = StdLogicVector.from_string(left[:width])
        b = StdLogicVector.from_string(right[:width])
        assert ((a ^ b) ^ b) == a

    def test_slice_downto(self):
        vector = StdLogicVector.from_string("10110001")
        assert vector.slice_downto(7, 4).to_string() == "1011"
        assert vector.slice_downto(3, 0).to_string() == "0001"
        assert vector.slice_downto(4, 4).to_string() == "1"

    def test_slice_downto_rejects_bad_bounds(self):
        vector = StdLogicVector.from_string("1011")
        with pytest.raises(SimulationError):
            vector.slice_downto(0, 3)
        with pytest.raises(SimulationError):
            vector.slice_downto(9, 0)

    def test_set_slice_downto(self):
        vector = StdLogicVector.from_string("00000000")
        updated = vector.set_slice_downto(7, 4, StdLogicVector.from_string("1111"))
        assert updated.to_string() == "11110000"
        assert vector.to_string() == "00000000"  # immutability

    def test_set_slice_width_mismatch(self):
        vector = StdLogicVector.from_string("0000")
        with pytest.raises(SimulationError):
            vector.set_slice_downto(3, 2, StdLogicVector.from_string("111"))

    def test_element_downto(self):
        vector = StdLogicVector.from_string("1000")
        assert vector.element_downto(3) is ONE
        assert vector.element_downto(0) is ZERO

    def test_concat(self):
        left = StdLogicVector.from_string("10")
        right = StdLogicVector.from_string("01")
        assert left.concat(right).to_string() == "1001"

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_add_matches_modular_arithmetic(self, a, b):
        va = StdLogicVector.from_unsigned(a, 8)
        vb = StdLogicVector.from_unsigned(b, 8)
        assert va.add(vb).to_unsigned() == (a + b) % 256
        assert va.sub(vb).to_unsigned() == (a - b) % 256

    def test_arithmetic_with_unknown_bits_gives_x(self):
        a = StdLogicVector.from_string("1X00")
        b = StdLogicVector.from_string("0001")
        assert a.add(b).to_string() == "XXXX"

    def test_shifts_and_rotates(self):
        vector = StdLogicVector.from_string("1001")
        assert vector.shift_left(1).to_string() == "0010"
        assert vector.shift_right(1).to_string() == "0100"
        assert vector.rotate_left(1).to_string() == "0011"
        assert vector.rotate_right(1).to_string() == "1100"

    @given(bit_strings, st.integers(0, 40))
    def test_rotate_roundtrip(self, bits, amount):
        vector = StdLogicVector.from_string(bits)
        assert vector.rotate_left(amount).rotate_right(amount) == vector

    def test_comparisons(self):
        small = StdLogicVector.from_unsigned(3, 4)
        large = StdLogicVector.from_unsigned(9, 4)
        assert small.less_than(large) is ONE
        assert large.less_than(small) is ZERO
        assert small.equals(small) is ONE
        assert small.equals(large) is ZERO

    def test_comparison_with_unknown_is_x(self):
        a = StdLogicVector.from_string("1X")
        b = StdLogicVector.from_string("10")
        assert a.equals(b) is X
        assert a.less_than(b) is X


class TestResolveValues:
    def test_scalar_drivers(self):
        assert resolve_values([ZERO, Z, L]) is ZERO

    def test_vector_drivers_resolved_elementwise(self):
        a = StdLogicVector.from_string("1Z")
        b = StdLogicVector.from_string("Z0")
        assert resolve_values([a, b]).to_string() == "10"

    def test_empty_driver_set_rejected(self):
        with pytest.raises(SimulationError):
            resolve_values([])

    def test_mixed_scalar_vector_rejected(self):
        with pytest.raises(SimulationError):
            resolve_values([ONE, StdLogicVector.from_string("1")])

    def test_mismatched_vector_widths_rejected(self):
        with pytest.raises(SimulationError):
            resolve_values(
                [StdLogicVector.from_string("1"), StdLogicVector.from_string("10")]
            )

    def test_value_to_string(self):
        assert value_to_string(ONE) == "'1'"
        assert value_to_string(StdLogicVector.from_string("10")) == '"10"'
