"""Tests for the v1 session facade (``repro.workspace.Workspace``).

The headline contract: documents produced via the legacy wrappers (a bare
``Pipeline``), via a ``Workspace``, and via the CLI are byte-identical, and
every frontend is a thin shell over the facade.
"""

import json
import threading

import pytest

from repro import Workspace, workloads
from repro.cli import main
from repro.errors import PolicyError
from repro.pipeline import (
    AnalysisOptions,
    Pipeline,
    analyze_document,
    check_document,
    json_text,
)
from repro.security.policy import TwoLevelPolicy

TWO_LEVEL = {
    "levels": {"public": 0, "secret": 1},
    "resources": {"key": "secret"},
    "allow": [{"from": "public", "to": "secret"}],
}

VOLATILE_FIELDS = ("timings", "cached_stages")


def _normalised(document):
    document = dict(document)
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return json_text(document)


@pytest.fixture
def source():
    return workloads.challenge_f_program()


@pytest.fixture
def design_file(tmp_path, source):
    path = tmp_path / "design.vhd"
    path.write_text(source, encoding="utf-8")
    return str(path)


class TestAnalyze:
    def test_analyze_matches_the_legacy_wrapper(self, source):
        from repro.analysis.api import analyze

        ws_result = Workspace().analyze(source)
        legacy = analyze(source)
        assert ws_result.summary() == legacy.summary()
        assert ws_result.graph.to_adjacency() == legacy.graph.to_adjacency()

    def test_documents_are_byte_identical_across_entry_points(
        self, source, design_file, capsys
    ):
        # legacy path: a bare Pipeline, exactly what analysis.api wraps
        legacy_doc = analyze_document(
            Pipeline().run(source, AnalysisOptions()), file=design_file
        )
        # facade path
        ws_doc = analyze_document(
            Workspace(cache=None).analyze_run(source), file=design_file
        )
        # CLI path (built over the facade)
        assert main(["analyze", design_file, "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        assert _normalised(legacy_doc) == _normalised(ws_doc) == _normalised(cli_doc)
        assert legacy_doc["schema"] == "vhdl-ifa/v1"
        assert list(legacy_doc)[0] == "schema"

    def test_analyze_run_exposes_stage_timings(self, source):
        run = Workspace().analyze_run(source)
        assert set(run.timings) >= {"parse", "elaborate", "closure"}

    def test_workspace_cache_warms_across_calls(self, source):
        ws = Workspace()  # default: in-memory cache
        assert ws.analyze_run(source).cached_stages == []
        warm = ws.analyze_run(source)
        assert "parse" in warm.cached_stages and "closure" in warm.cached_stages

    def test_pool_universe_threads_the_workspace_universe(self, source):
        ws = Workspace(cache=None)
        pooled = ws.analyze(source, pool_universe=True)
        assert pooled.universe is ws.universe
        independent = ws.analyze(source)
        assert independent.universe is not ws.universe


class TestCheck:
    def test_check_documents_match_the_cli(self, source, design_file, capsys):
        ws = Workspace(cache=None)
        checked = ws.check(source, TwoLevelPolicy(secret_resources=["key"]))
        assert main(["check", design_file, "--secret", "key", "--json"]) == 3
        cli_doc = json.loads(capsys.readouterr().out)
        assert _normalised(checked.document(file=design_file)) == _normalised(cli_doc)

    def test_policy_resolution_forms(self, source, tmp_path):
        ws = Workspace(cache=None)
        by_object = ws.check(source, TwoLevelPolicy(secret_resources=["key"]))
        by_dict = ws.check(source, TWO_LEVEL)
        path = tmp_path / "p.json"
        path.write_text(json.dumps(TWO_LEVEL), encoding="utf-8")
        by_path = ws.check(source, path)
        ws.register_policy("mls", TWO_LEVEL)
        by_name = ws.check(source, "mls")
        verdicts = [
            [d.to_dict() for d in checked.diagnostics]
            for checked in (by_object, by_dict, by_path, by_name)
        ]
        assert verdicts[0] and all(v == verdicts[0] for v in verdicts)

    def test_unknown_policy_name_is_a_policy_error(self, source):
        with pytest.raises(PolicyError) as excinfo:
            Workspace().check(source, "never-registered")
        assert "never-registered" in str(excinfo.value)

    def test_load_policy_registers_under_document_name(self, tmp_path):
        path = tmp_path / "named.json"
        path.write_text(json.dumps({**TWO_LEVEL, "name": "mls"}), encoding="utf-8")
        ws = Workspace()
        ws.load_policy(path)
        assert "mls" in ws.policies

    def test_exit_code_contract(self, source):
        ws = Workspace(cache=None)
        dirty = ws.check(source, TWO_LEVEL)
        assert (dirty.clean, dirty.exit_code) == (False, 3)
        clean = ws.check(source, TwoLevelPolicy())
        assert (clean.clean, clean.exit_code) == (True, 0)

    def test_transitive_defaults_to_the_policy_mode(self, source):
        ws = Workspace(cache=None)
        transitive_policy = dict(TWO_LEVEL, mode="transitive")
        via_mode = ws.check(source, transitive_policy)
        via_flag = ws.check(source, TWO_LEVEL, transitive=True)
        assert [d.to_dict() for d in via_mode.diagnostics] == [
            d.to_dict() for d in via_flag.diagnostics
        ]


class TestBatch:
    def test_batch_matches_cli_batch(self, tmp_path, capsys):
        paths = []
        for name, text in workloads.batch_workload_sources()[:3]:
            path = tmp_path / f"{name}.vhd"
            path.write_text(text, encoding="utf-8")
            paths.append(str(path))
        report = Workspace().batch(paths, parallel=False)
        assert report.exit_code == 0
        assert main(["batch", *paths, "--sequential", "--json"]) == 0
        cli_doc = json.loads(capsys.readouterr().out)
        ws_doc = report.to_json_dict()
        assert cli_doc["schema"] == ws_doc["schema"] == "vhdl-ifa/v1"
        assert [job["file"] for job in cli_doc["jobs"]] == [
            job["file"] for job in ws_doc["jobs"]
        ]

    def test_batch_with_policy_reports_violations(self, design_file):
        report = Workspace().batch([design_file], parallel=False, policy=TWO_LEVEL)
        assert report.ok and report.violations_found
        assert report.exit_code == 3
        [item] = report.items
        assert item.clean is False
        assert "policy violation" in item.text

    def test_stats_shape(self, source):
        ws = Workspace(policies={"mls": TWO_LEVEL})
        ws.analyze(source)
        stats = ws.stats()
        assert stats["policies"] == ["mls"]
        assert stats["cache"]["entries"] > 0
        assert isinstance(stats["universe"], int)


class TestSharedDiskCache:
    """Two workspaces over one cache dir — the multi-process serve story."""

    def test_second_workspace_is_served_from_disk(self, source, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = Workspace(cache_dir=cache_dir).analyze_run(source)
        assert first.cached_stages == []
        second = Workspace(cache_dir=cache_dir).analyze_run(source)
        assert "parse" in second.cached_stages and "closure" in second.cached_stages
        assert _doc(first) == _doc(second)

    def test_concurrent_workspaces_share_one_dir_safely(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        sources = [
            text for _, text in workloads.batch_workload_sources()[:4]
        ]
        results = {}
        errors = []

        def work(worker_id):
            try:
                ws = Workspace(cache_dir=cache_dir)
                docs = []
                for _ in range(2):  # second pass hits warm entries
                    for text in sources:
                        docs.append(_doc(ws.analyze_run(text)))
                results[worker_id] = docs
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=work, args=(worker_id,)) for worker_id in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == 3
        baseline = results[0]
        assert all(results[worker_id] == baseline for worker_id in results)


def _doc(run):
    """The stable part of an analyze document (timings/cache state dropped)."""
    document = analyze_document(run)
    for field in VOLATILE_FIELDS:
        document.pop(field, None)
    return json_text(document)


class TestReviewRegressions:
    def test_str_policy_path_resolves_like_a_pathlike(self, source, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(json.dumps(TWO_LEVEL), encoding="utf-8")
        # a plain-string path works everywhere a PathLike does
        ws = Workspace(policies={"mls": str(path)})
        assert "mls" in ws.policies
        checked = ws.check(source, str(path))
        assert not checked.clean

    def test_default_parallel_batch_keeps_per_worker_caches(self, design_file, capsys):
        # two jobs for the same file on one worker: the driver pre-parses the
        # shared file and ships it, so even the *first* job skips the parse
        # stage, and the second is served from the worker's in-memory tier —
        # all without --cache-dir (the workspace merely has no *shared*
        # cache; caching is not disabled)
        assert main(["batch", design_file, design_file, "--jobs", "1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        first, second = [job["cached_stages"] for job in document["jobs"]]
        assert first == ["parse"]
        assert {"parse", "elaborate", "closure"} <= set(second)
