"""Tests for the high-level analysis API surface."""

import pytest

from repro import FlowGraph, analyze, analyze_design, elaborate, parse_program
from repro.analysis.api import AnalysisResult, analyze_kemmerer_design
from repro.errors import ElaborationError, ParseError, ReproError
from repro import workloads


class TestPackageSurface:
    def test_package_exports(self):
        import repro

        assert repro.__version__ == "1.0.0"
        for name in ("analyze", "analyze_design", "analyze_kemmerer", "FlowGraph"):
            assert hasattr(repro, name)

    def test_parse_then_elaborate_then_analyse(self):
        program = parse_program(workloads.producer_consumer_program())
        design = elaborate(program)
        result = analyze_design(design)
        assert isinstance(result, AnalysisResult)
        assert isinstance(result.graph, FlowGraph)

    def test_every_error_is_a_repro_error(self):
        with pytest.raises(ReproError):
            parse_program("entity broken")
        with pytest.raises(ParseError):
            parse_program("entity broken")
        with pytest.raises(ElaborationError):
            elaborate(parse_program("entity lonely is end lonely;"))


class TestAnalysisResult:
    def test_summary_mentions_the_design_and_sizes(self):
        result = analyze(workloads.producer_consumer_program())
        summary = result.summary()
        assert "producer_consumer" in summary
        assert "2 processes" in summary
        assert "graph:" in summary

    def test_flow_graph_alias(self):
        result = analyze(workloads.conditional_program())
        assert result.flow_graph is result.graph

    def test_intermediate_artefacts_are_exposed(self):
        result = analyze(workloads.producer_consumer_program())
        assert set(result.active) == {"producer", "consumer"}
        assert result.reaching.entry
        assert len(result.rm_local) > 0
        assert result.specialized.present or result.specialized.active
        assert result.outgoing_labels.keys() == {"result"}

    def test_basic_analysis_has_no_outgoing_labels(self):
        result = analyze(workloads.producer_consumer_program(), improved=False)
        assert result.outgoing_labels == {}
        assert not result.improved

    def test_collapsed_graph_has_no_environment_nodes(self):
        from repro.analysis.resource_matrix import is_incoming, is_outgoing

        result = analyze(workloads.challenge_f_program())
        collapsed = result.collapsed_graph()
        assert not any(is_incoming(n) or is_outgoing(n) for n in collapsed.nodes)

    def test_kemmerer_design_entry_point(self):
        design = elaborate(parse_program(workloads.conditional_program()))
        baseline = analyze_kemmerer_design(design)
        assert baseline.graph.is_transitive()

    def test_entity_selection_by_name(self):
        source = workloads.paper_program_a() + workloads.paper_program_b()
        result = analyze(source, entity_name="prog_b", loop_processes=False)
        assert result.design.name == "prog_b"
        with pytest.raises(ElaborationError):
            analyze(source)  # ambiguous without an entity name


class TestAnalysisOptions:
    def test_loop_processes_changes_the_result(self):
        looped = analyze(workloads.paper_program_a(), improved=False)
        straight = analyze(
            workloads.paper_program_a(), improved=False, loop_processes=False
        )
        assert straight.graph_without_self_loops().is_subgraph_of(
            looped.graph_without_self_loops()
        )
        assert looped.graph.edge_count() > straight.graph.edge_count()

    def test_under_approximation_flag_is_monotone(self):
        full = analyze(workloads.two_phase_program())
        ablated = analyze(
            workloads.two_phase_program(), use_under_approximation=False
        )
        assert full.graph.is_subgraph_of(ablated.graph)
