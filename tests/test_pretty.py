"""Tests for the pretty printer (beyond the round-trip checks in test_parser)."""

import pytest

from repro.vhdl import ast
from repro.vhdl.parser import parse_expression, parse_program, parse_statement
from repro.vhdl.pretty import (
    format_declaration,
    format_entity,
    format_expression,
    format_program,
    format_statement,
    format_type,
)


class TestExpressions:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("'1'", "'1'"),
            ('"10ZX"', '"10ZX"'),
            ("a", "a"),
            ("a(7 downto 0)", "a(7 downto 0)"),
            ("a(3)", "a(3)"),
            ("not a", "(not a)"),
            ("a xor b", "(a xor b)"),
            ("a & '0'", "(a & '0')"),
        ],
    )
    def test_expression_rendering(self, source, expected):
        assert format_expression(parse_expression(source)) == expected

    def test_unknown_expression_node_rejected(self):
        with pytest.raises(TypeError):
            format_expression(object())  # type: ignore[arg-type]


class TestTypesAndDeclarations:
    def test_types(self):
        assert format_type(ast.StdLogicType()) == "std_logic"
        assert (
            format_type(ast.StdLogicVectorType(left=7, right=0))
            == "std_logic_vector(7 downto 0)"
        )
        assert (
            format_type(
                ast.StdLogicVectorType(
                    left=0, right=3, direction=ast.RangeDirection.TO
                )
            )
            == "std_logic_vector(0 to 3)"
        )

    def test_declarations_with_and_without_initialisers(self):
        variable = ast.VariableDeclaration(
            name="v",
            var_type=ast.StdLogicType(),
            initial=ast.LogicLiteral(value="0"),
        )
        signal = ast.SignalDeclaration(
            name="s", sig_type=ast.StdLogicVectorType(left=3, right=0)
        )
        assert format_declaration(variable) == "variable v : std_logic := '0';"
        assert format_declaration(signal) == "signal s : std_logic_vector(3 downto 0);"


class TestStatements:
    def test_single_bit_target_slice_uses_index_syntax(self):
        stmt = parse_statement("y(3) := a;")
        assert format_statement(stmt) == ["y(3) := a;"]

    def test_wait_rendering_variants(self):
        assert format_statement(parse_statement("wait;")) == ["wait;"]
        assert format_statement(parse_statement("wait on a, b;")) == ["wait on a, b;"]
        rendered = format_statement(parse_statement("wait on a until a = '1';"))
        assert rendered == ["wait on a until (a = '1');"]

    def test_if_rendering_always_includes_else(self):
        lines = format_statement(parse_statement("if a = '1' then x := b; end if;"))
        assert "else" in lines
        assert lines[-1] == "end if;"

    def test_nested_indentation(self):
        lines = format_statement(
            parse_statement(
                "while a = '1' loop if b = '1' then x := c; end if; end loop;"
            ),
            indent=1,
        )
        assert lines[0].startswith("  while")
        assert any(line.startswith("    if") for line in lines)


class TestDesignUnits:
    def test_entity_without_ports(self):
        entity = ast.Entity(name="top")
        assert format_entity(entity) == "entity top is\nend top;"

    def test_program_rendering_preserves_unit_order(self):
        source = (
            "entity a is end a;"
            "entity b is end b;"
            "architecture impl of a is begin p : process begin null; end process p; end impl;"
        )
        printed = format_program(parse_program(source))
        assert printed.index("entity a") < printed.index("entity b")
        assert printed.index("entity b") < printed.index("architecture impl")

    def test_block_statements_round_trip(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
        begin
          blk : block
            signal s : std_logic;
          begin
            inner : process begin s <= a; wait on a; end process inner;
          end block blk;
        end arch;
        """
        printed = format_program(parse_program(source))
        assert "blk : block" in printed
        assert format_program(parse_program(printed)) == printed
