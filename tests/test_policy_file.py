"""Tests for the declarative policy layer (``repro.security.policy_file``)."""

import json

import pytest

from repro import workloads
from repro.analysis.api import analyze
from repro.errors import PolicyError
from repro.security.policy import PUBLIC, SECRET, Clearance, TwoLevelPolicy, check_policy
from repro.security.policy_file import (
    POLICY_KEYS,
    DeclaredPolicy,
    PolicyFileError,
    load_policy_file,
    policy_from_dict,
    policy_to_dict,
)

TWO_LEVEL_TOML = """\
name = "two-level"
mode = "channel-control"
default = "public"

[levels]
public = 0
secret = 1

[resources]
key = "secret"

[[allow]]
from = "public"
to = "secret"
"""


@pytest.fixture
def toml_policy(tmp_path):
    path = tmp_path / "two_level.toml"
    path.write_text(TWO_LEVEL_TOML, encoding="utf-8")
    return path


class TestLoading:
    def test_toml_file_loads(self, toml_policy):
        policy = load_policy_file(toml_policy)
        assert isinstance(policy, DeclaredPolicy)
        assert policy.name == "two-level"
        assert policy.transitive is False
        assert policy.level_of("key").name == "secret"
        assert policy.level_of("anything_else").name == "public"
        assert policy.allows(policy.level_of("x"), policy.level_of("key"))
        assert not policy.allows(policy.level_of("key"), policy.level_of("x"))

    def test_json_file_loads(self, tmp_path):
        document = {
            "levels": {"low": 0, "high": 1},
            "resources": {"k": "high"},
            "allow": [{"from": "low", "to": "high"}],
        }
        path = tmp_path / "p.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        policy = load_policy_file(path)
        assert policy.level_of("k").name == "high"
        assert policy.default_level.name == "low"  # lowest rank is the default

    def test_malformed_toml_carries_file_context(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("levels = [not toml", encoding="utf-8")
        with pytest.raises(PolicyFileError) as excinfo:
            load_policy_file(path)
        assert "broken.toml" in str(excinfo.value)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_policy_file(tmp_path / "nope.toml")


class TestValidation:
    def base(self, **overrides):
        document = {
            "levels": {"public": 0, "secret": 1},
            "resources": {"key": "secret"},
            "allow": [{"from": "public", "to": "secret"}],
        }
        document.update(overrides)
        return document

    def test_unknown_top_level_key(self):
        with pytest.raises(PolicyFileError) as excinfo:
            policy_from_dict(self.base(surprise=1), context="doc")
        message = str(excinfo.value)
        assert "doc" in message and "surprise" in message

    def test_unknown_level_in_resources_names_the_key(self):
        with pytest.raises(PolicyFileError) as excinfo:
            policy_from_dict(self.base(resources={"key": "pubic"}))
        message = str(excinfo.value)
        assert "resources.'key'" in message and "pubic" in message

    def test_unknown_level_in_allow_names_the_position(self):
        with pytest.raises(PolicyFileError) as excinfo:
            policy_from_dict(self.base(allow=[{"from": "public", "to": "nope"}]))
        assert "allow[0].to" in str(excinfo.value)

    def test_bad_mode(self):
        with pytest.raises(PolicyFileError) as excinfo:
            policy_from_dict(self.base(mode="sideways"))
        assert "mode" in str(excinfo.value)

    def test_levels_required_and_nonempty(self):
        with pytest.raises(PolicyFileError):
            policy_from_dict({"resources": {}})
        with pytest.raises(PolicyFileError):
            policy_from_dict({"levels": {}})

    def test_boolean_rank_is_rejected(self):
        with pytest.raises(PolicyFileError):
            policy_from_dict(self.base(levels={"public": 0, "secret": True}))

    def test_policy_file_error_is_a_policy_error(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"levels": {}})


class TestPatterns:
    def test_fnmatch_wildcards_apply_in_order(self):
        policy = policy_from_dict(
            {
                "levels": {"public": 0, "secret": 1},
                "resources": {"debug_*": "public", "*": "secret"},
            }
        )
        assert policy.level_of("debug_port").name == "public"
        assert policy.level_of("key").name == "secret"

    def test_exact_names_beat_patterns(self):
        policy = policy_from_dict(
            {
                "levels": {"public": 0, "secret": 1},
                "resources": {"k*": "secret", "klaxon": "public"},
            }
        )
        assert policy.level_of("klaxon").name == "public"
        assert policy.level_of("key").name == "secret"

    def test_environment_nodes_share_the_base_level(self):
        policy = policy_from_dict(
            {"levels": {"public": 0, "secret": 1}, "resources": {"key*": "secret"}}
        )
        assert policy.level_of("key○").name == "secret"  # key○


class TestRoundTrip:
    def test_declared_policy_round_trips(self, toml_policy):
        policy = load_policy_file(toml_policy)
        document = policy_to_dict(policy)
        again = policy_from_dict(document)
        assert policy_to_dict(again) == document
        assert again.levels == policy.levels
        assert again.permitted == policy.permitted
        assert again.default_level == policy.default_level
        assert again.transitive == policy.transitive

    def test_two_level_policy_serialises(self):
        document = policy_to_dict(TwoLevelPolicy(secret_resources=["key", "iv"]))
        assert document["levels"] == {"public": 0, "secret": 1}
        assert document["resources"] == {"iv": "secret", "key": "secret"}
        assert document["allow"] == [{"from": "public", "to": "secret"}]
        rebuilt = policy_from_dict(document)
        assert rebuilt.level_of("key") == Clearance(1, "secret")

    def test_transitive_mode_round_trips(self):
        policy = policy_from_dict(
            {"mode": "transitive", "levels": {"l": 0, "h": 1}}
        )
        assert policy.transitive is True
        assert policy_to_dict(policy)["mode"] == "transitive"


class TestEquivalenceWithInCodePolicy:
    """A policy expressed only as data matches the in-code FlowPolicy."""

    def test_same_violations_on_the_flow_graph(self, toml_policy):
        result = analyze(workloads.challenge_f_program())
        declared = check_policy(result.graph, load_policy_file(toml_policy))
        in_code = check_policy(
            result.graph, TwoLevelPolicy(secret_resources=["key"])
        )
        assert declared == in_code
        assert declared  # the design does leak key into t

    def test_key_order_in_policy_keys_is_stable(self):
        # docs/api.md's key table is gated against this tuple.
        assert POLICY_KEYS == (
            "name", "description", "mode", "default", "levels", "resources", "allow",
            "lint",
        )


class TestSerialisationConflicts:
    def test_conflicting_ranks_for_one_level_name_are_refused(self):
        from repro.security.policy import FlowPolicy

        policy = FlowPolicy(
            levels={"x": Clearance(2, "l")}, default_level=Clearance(0, "l")
        )
        with pytest.raises(PolicyFileError) as excinfo:
            policy_to_dict(policy)
        assert "conflicting ranks" in str(excinfo.value)
