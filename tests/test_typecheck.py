"""Tests for the static well-formedness checker."""

import pytest

from repro.errors import TypeCheckError
from repro.vhdl.elaborate import elaborate_source
from repro.vhdl.typecheck import Severity, assert_well_typed, typecheck


def diagnostics_for(source):
    return typecheck(elaborate_source(source))


def errors_for(source):
    return [d for d in diagnostics_for(source) if d.severity is Severity.ERROR]


def warnings_for(source):
    return [d for d in diagnostics_for(source) if d.severity is Severity.WARNING]


CLEAN = """
entity clean is
  port( a : in std_logic_vector(7 downto 0);
        b : in std_logic_vector(7 downto 0);
        y : out std_logic_vector(7 downto 0) );
end clean;
architecture arch of clean is
begin
  p : process
    variable t : std_logic_vector(7 downto 0);
  begin
    t := a xor b;
    y <= t(7 downto 4) & t(3 downto 0);
    wait on a, b;
  end process p;
end arch;
"""


class TestCleanDesigns:
    def test_no_diagnostics(self):
        assert diagnostics_for(CLEAN) == []

    def test_assert_well_typed_passes(self):
        assert_well_typed(elaborate_source(CLEAN))

    def test_generated_aes_components_are_well_typed(self):
        from repro.aes import generator

        for source in (
            generator.shift_rows_paper_source(),
            generator.shift_rows_entity_source(),
            generator.add_round_key_source(),
            generator.mix_column_source(),
            generator.sub_bytes_source(),
            generator.key_schedule_step_source(),
            generator.aes_round_source(),
        ):
            assert_well_typed(elaborate_source(source))


class TestWidthErrors:
    def test_assignment_width_mismatch(self):
        source = """
        entity e is port( a : in std_logic_vector(7 downto 0) ); end e;
        architecture arch of e is
        begin
          p : process
            variable t : std_logic_vector(3 downto 0);
          begin
            t := a;
            wait on a;
          end process p;
        end arch;
        """
        messages = [d.message for d in errors_for(source)]
        assert any("width" in m for m in messages)

    def test_operator_width_mismatch(self):
        source = """
        entity e is port( a : in std_logic_vector(7 downto 0);
                          b : in std_logic_vector(3 downto 0);
                          y : out std_logic_vector(7 downto 0) ); end e;
        architecture arch of e is
        begin
          p : process begin y <= a xor b; wait on a, b; end process p;
        end arch;
        """
        assert errors_for(source)

    def test_slice_out_of_range(self):
        source = """
        entity e is port( a : in std_logic_vector(3 downto 0); y : out std_logic ); end e;
        architecture arch of e is
        begin
          p : process begin y <= a(7); wait on a; end process p;
        end arch;
        """
        messages = [d.message for d in errors_for(source)]
        assert any("exceeds" in m for m in messages)

    def test_slice_of_scalar(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
        begin
          p : process begin y <= a(0); wait on a; end process p;
        end arch;
        """
        messages = [d.message for d in errors_for(source)]
        assert any("scalar" in m for m in messages)

    def test_assert_well_typed_raises(self):
        source = """
        entity e is port( a : in std_logic_vector(7 downto 0) ); end e;
        architecture arch of e is
        begin
          p : process
            variable t : std_logic_vector(3 downto 0);
          begin
            t := a;
            wait on a;
          end process p;
        end arch;
        """
        with pytest.raises(TypeCheckError):
            assert_well_typed(elaborate_source(source))


class TestWarnings:
    def test_unread_variable_warning(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
        begin
          p : process
            variable unused : std_logic;
          begin
            unused := a;
            wait on a;
          end process p;
        end arch;
        """
        messages = [d.message for d in warnings_for(source)]
        assert any("never read" in m for m in messages)

    def test_reading_output_port_warning(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
        begin
          p : process
            variable t : std_logic;
          begin
            t := y;
            y <= a;
            wait on a;
          end process p;
        end arch;
        """
        messages = [d.message for d in warnings_for(source)]
        assert any("output port" in m for m in messages)

    def test_vector_condition_warning(self):
        source = """
        entity e is port( a : in std_logic_vector(3 downto 0); y : out std_logic ); end e;
        architecture arch of e is
        begin
          p : process
          begin
            if a then
              y <= '1';
            else
              y <= '0';
            end if;
            wait on a;
          end process p;
        end arch;
        """
        messages = [d.message for d in warnings_for(source)]
        assert any("condition" in m for m in messages)

    def test_diagnostic_string_mentions_process(self):
        source = """
        entity e is port( a : in std_logic ); end e;
        architecture arch of e is
        begin
          p : process
            variable unused : std_logic;
          begin
            unused := a;
            wait on a;
          end process p;
        end arch;
        """
        rendered = str(warnings_for(source)[0])
        assert "process p" in rendered
        assert rendered.startswith("warning")
