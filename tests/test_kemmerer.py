"""Tests for Kemmerer's baseline and its comparison with the paper's analysis."""

from repro.analysis.api import analyze, analyze_kemmerer
from repro import workloads
from repro.aes.generator import shift_rows_paper_source, shift_rows_row_nodes


class TestKemmererBaseline:
    def test_result_graph_is_transitively_closed(self):
        result = analyze_kemmerer(workloads.producer_consumer_program())
        assert result.graph.is_transitive()

    def test_direct_graph_is_subgraph_of_closed_graph(self):
        result = analyze_kemmerer(workloads.producer_consumer_program())
        assert result.direct_graph.is_subgraph_of(result.graph)

    def test_program_a_gets_the_spurious_edge(self):
        result = analyze_kemmerer(workloads.paper_program_a(), loop_processes=False)
        graph = result.graph.without_self_loops()
        assert graph.has_edge("a", "c")

    def test_program_b_matches_our_analysis(self):
        ours = analyze(
            workloads.paper_program_b(), improved=False, loop_processes=False
        ).graph_without_self_loops()
        kemmerer = analyze_kemmerer(
            workloads.paper_program_b(), loop_processes=False
        ).graph.without_self_loops()
        assert ours.edges == kemmerer.edges

    def test_our_analysis_is_never_less_sound_than_kemmerer_on_these_programs(self):
        # Kemmerer's method over-approximates the paper's analysis: every edge
        # our analysis reports between program resources is also reported by
        # Kemmerer's transitive closure.
        for source in (
            workloads.paper_program_a(),
            workloads.paper_program_b(),
            workloads.producer_consumer_program(),
            workloads.conditional_program(),
        ):
            ours = analyze(source, improved=False).graph_without_self_loops()
            kemmerer = analyze_kemmerer(source).graph.without_self_loops()
            assert ours.is_subgraph_of(kemmerer)


class TestShiftRowsComparison:
    def test_kemmerer_conflates_the_rows(self):
        nodes = [n for row in shift_rows_row_nodes().values() for n in row]
        kemmerer = (
            analyze_kemmerer(shift_rows_paper_source(), loop_processes=False)
            .graph.without_self_loops()
            .restricted_to(nodes)
        )
        cross_row = [
            (src, dst)
            for src, dst in kemmerer.edges
            if src.split("_")[1] != dst.split("_")[1]
        ]
        assert cross_row, "Kemmerer's method should mix the rows"
        # with a single shared temporary the closure connects every element to
        # every other element
        assert kemmerer.edge_count() == 12 * 11

    def test_our_analysis_is_strictly_more_precise(self):
        nodes = [n for row in shift_rows_row_nodes().values() for n in row]
        ours = (
            analyze(shift_rows_paper_source(), improved=True, loop_processes=False)
            .collapsed_graph()
            .without_self_loops()
            .restricted_to(nodes)
        )
        kemmerer = (
            analyze_kemmerer(shift_rows_paper_source(), loop_processes=False)
            .graph.without_self_loops()
            .restricted_to(nodes)
        )
        assert ours.is_subgraph_of(kemmerer)
        assert ours.edge_count() < kemmerer.edge_count()
        false_positives = kemmerer.edge_difference(ours)
        assert len(false_positives) == 12 * 11 - 12
