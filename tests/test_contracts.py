"""Replay the committed contract corpus against live surfaces.

The headline acceptance properties of the contract suite:

* the whole corpus verifies green in **inline** and **pool** server modes
  (leaning on the repo's byte-identity invariant: CLI ``--json``, inline
  serve and pool serve emit identical documents);
* mutating a recorded response field produces a *failing* field-level
  JSON-pointer diff that names the interaction;
* a new optional field in the live response passes as *additive* with a
  logged ``additive`` line;
* a recorded ``schema`` that no longer matches the live contract version
  (``GET /version``) fails with re-record instructions — the v2 bump
  wiring;
* ``POST /policy`` replay loops are true no-ops (satellite: the corpus is
  re-runnable any number of times).
"""

import copy
import dataclasses
from pathlib import Path

import pytest

from repro.contract import Corpus, verify_corpus
from repro.contract.profiles import MLS_POLICY, PROFILES, boot, http_request

PACTS_DIR = Path(__file__).resolve().parent / "contract" / "pacts"


@pytest.fixture(scope="module")
def corpus():
    return Corpus.load(PACTS_DIR)


def _single(corpus, description, **overrides):
    """A one-interaction corpus around a (possibly mutated) recording."""
    interaction = next(
        i for i in corpus if i.description == description
    )
    if overrides:
        interaction = dataclasses.replace(interaction, **overrides)
    return Corpus(interactions=[interaction])


class TestFullReplay:
    def test_corpus_verifies_inline(self, corpus):
        lines = []
        report = verify_corpus(corpus, mode="inline", log=lines.append)
        assert report.ok, "\n".join(r.describe() for r in report.failures)
        assert len(report.results) == len(corpus) >= 40
        # no divergence at all against a truthful recording
        assert report.additive_count == 0
        assert not any(line.startswith("additive") for line in lines)

    def test_corpus_verifies_in_pool_mode(self, corpus):
        report = verify_corpus(corpus, mode="pool")
        assert report.ok, "\n".join(r.describe() for r in report.failures)
        assert len(report.results) == len(corpus)


class TestBreakingDiffs:
    def test_mutated_value_fails_with_pointer_naming_interaction(self, corpus):
        description = "analyze challenge_f"
        target = next(i for i in corpus if i.description == description)
        mutated = copy.deepcopy(target.response)
        mutated["document"]["design"] = "tampered"
        report = verify_corpus(
            _single(corpus, description, response=mutated), mode="inline"
        )
        assert not report.ok
        (result,) = report.failures
        assert result.interaction.id == target.id
        divergence = next(d for d in result.breaking if d.pointer == "/design")
        assert "tampered" in divergence.detail
        message = result.describe()
        assert target.id in message and "/design" in message
        assert "vhdl-ifa/v2" in message  # the bump procedure is named

    def test_removed_field_is_breaking(self, corpus):
        description = "analyze challenge_f"
        target = next(i for i in corpus if i.description == description)
        mutated = copy.deepcopy(target.response)
        mutated["document"]["retired_field"] = True  # recorded but not served
        report = verify_corpus(
            _single(corpus, description, response=mutated), mode="inline"
        )
        assert not report.ok
        (result,) = report.failures
        assert any(
            d.pointer == "/retired_field" and "removed" in d.detail
            for d in result.breaking
        )

    def test_status_change_is_breaking(self, corpus):
        description = "analyze missing source"
        target = next(i for i in corpus if i.description == description)
        mutated = copy.deepcopy(target.response)
        mutated["status"] = 200
        report = verify_corpus(
            _single(corpus, description, response=mutated), mode="inline"
        )
        assert not report.ok
        (result,) = report.failures
        assert any("status changed from 200 to 400" in d.detail for d in result.breaking)


class TestAdditiveChanges:
    def test_new_optional_field_passes_with_additive_log(self, corpus):
        description = "analyze challenge_f"
        target = next(i for i in corpus if i.description == description)
        mutated = copy.deepcopy(target.response)
        # Drop a recorded field: the live response then carries one field the
        # recording does not pin — exactly what a producer adding a new
        # optional field looks like to an old consumer.
        del mutated["document"]["summary"]
        lines = []
        report = verify_corpus(
            _single(corpus, description, response=mutated),
            mode="inline",
            log=lines.append,
        )
        assert report.ok
        assert report.additive_count == 1
        (result,) = report.results
        assert any(d.pointer == "/summary" for d in result.additive)
        assert any(
            line.startswith("additive:") and "/summary" in line for line in lines
        )


class TestVersionWiring:
    def test_schema_skew_fails_demanding_rerecord(self, corpus):
        description = "analyze challenge_f"
        report = verify_corpus(
            _single(corpus, description, schema="vhdl-ifa/v0"), mode="inline"
        )
        assert not report.ok
        (result,) = report.failures
        assert "vhdl-ifa/v0" in result.failure
        assert "re-record" in result.failure

    def test_cli_schema_skew_fails_too(self, corpus):
        report = verify_corpus(
            _single(corpus, "cli analyze challenge-f", schema="vhdl-ifa/v0"),
            mode="inline",
        )
        assert not report.ok
        assert "re-record" in report.failures[0].failure


class TestPolicyReplayIdempotence:
    """Satellite: identical re-registration is a true 200 no-op."""

    def test_policy_replay_loop_is_a_no_op(self):
        with boot(PROFILES["default"], mode="inline") as server:
            documents, registered = [], []
            for _ in range(3):
                status, document, _ = http_request(
                    server.port, "POST", "/policy", MLS_POLICY
                )
                assert status == 200
                documents.append(document)
                registered.append(server.workspace.policies["mls"])
            assert documents[0] == documents[1] == documents[2]
            # the registered object is never re-bound by an identical re-post
            assert registered[0] is registered[1] is registered[2]

    def test_different_definition_still_conflicts(self):
        with boot(PROFILES["default"], mode="inline") as server:
            status, _, _ = http_request(server.port, "POST", "/policy", MLS_POLICY)
            assert status == 200
            different = dict(MLS_POLICY, resources={"plain": "secret"})
            status, document, _ = http_request(
                server.port, "POST", "/policy", different
            )
            assert status == 409
            assert "already registered" in document["error"]

    def test_non_roundtrippable_registered_policy_conflicts_cleanly(self):
        # A programmatic policy whose serialisation raises must yield a 409
        # (can never equal a posted document), not a 500 from the probe.
        from repro.pipeline import AnalysisServer, ServerThread
        from repro.security.policy import Clearance, FlowPolicy
        from repro.workspace import Workspace

        weird = FlowPolicy(
            levels={"a": Clearance(1, "secret"), "b": Clearance(2, "secret")}
        )
        workspace = Workspace(policies={"mls": weird})
        with ServerThread(AnalysisServer(port=0, workspace=workspace)) as server:
            status, document, _ = http_request(
                server.port, "POST", "/policy", MLS_POLICY
            )
            assert status == 409
            assert "already registered" in document["error"]
