"""Tests for labelling, CFG construction and the cross-flow relation."""

import pytest

from repro.cfg.builder import (
    build_cfg,
    build_process_cfg,
    finals_of,
    flow_of,
    init_of,
)
from repro.cfg.labels import BlockKind, LabelAllocator, label_statements
from repro.errors import AnalysisError
from repro.vhdl.elaborate import elaborate_source
from repro.vhdl.parser import parse_statements


def labelled(source):
    statements = parse_statements(source)
    label_statements(statements, "p", LabelAllocator())
    return statements


class TestLabelling:
    def test_labels_are_assigned_in_textual_order(self):
        statements = labelled("x := a; y := b; s <= x;")
        assert [s.label for s in statements] == [1, 2, 3]

    def test_nested_statements_are_labelled(self):
        statements = labelled("if a = '1' then x := b; else y := c; end if;")
        guard = statements[0]
        assert guard.label == 1
        assert guard.then_branch[0].label == 2
        assert guard.else_branch[0].label == 3

    def test_block_kinds(self):
        allocator = LabelAllocator()
        statements = parse_statements(
            "null; x := a; s <= b; wait on s; if a = '1' then null; end if; "
            "while a = '1' loop null; end loop;"
        )
        blocks = label_statements(statements, "p", allocator)
        kinds = [blocks[label].kind for label in sorted(blocks)]
        assert kinds[0] is BlockKind.NULL
        assert kinds[1] is BlockKind.VARIABLE_ASSIGN
        assert kinds[2] is BlockKind.SIGNAL_ASSIGN
        assert kinds[3] is BlockKind.WAIT
        assert BlockKind.IF_GUARD in kinds
        assert BlockKind.WHILE_GUARD in kinds

    def test_allocator_counts(self):
        allocator = LabelAllocator(start=10)
        assert allocator.fresh() == 10
        assert allocator.fresh() == 11
        assert allocator.allocated == 2


class TestFlowFunctions:
    def test_straight_line_flow(self):
        statements = labelled("x := a; y := b; s <= x;")
        assert init_of(statements) == 1
        assert finals_of(statements) == {3}
        assert flow_of(statements) == {(1, 2), (2, 3)}

    def test_if_flow(self):
        statements = labelled("x := a; if a = '1' then y := b; else z := c; end if; w := d;")
        # labels: 1=x, 2=guard, 3=then, 4=else, 5=w
        assert flow_of(statements) == {(1, 2), (2, 3), (2, 4), (3, 5), (4, 5)}
        assert finals_of(statements) == {5}

    def test_while_flow(self):
        statements = labelled("while a = '1' loop x := b; y := c; end loop; z := d;")
        # labels: 1=guard, 2=x, 3=y, 4=z
        assert flow_of(statements) == {(1, 2), (2, 3), (3, 1), (1, 4)}

    def test_if_as_last_statement_finals(self):
        statements = labelled("if a = '1' then x := b; else y := c; end if;")
        assert finals_of(statements) == {2, 3}

    def test_empty_list_rejected(self):
        with pytest.raises(AnalysisError):
            init_of([])
        with pytest.raises(AnalysisError):
            finals_of([])


SOURCE_TWO_PROCESSES = """
entity two is
  port( a : in std_logic; y : out std_logic );
end two;
architecture arch of two is
  signal link : std_logic;
begin
  producer : process
    variable v : std_logic;
  begin
    v := a;
    link <= v;
    wait on a;
  end process producer;

  consumer : process
  begin
    y <= link;
    wait on link;
  end process consumer;
end arch;
"""


class TestProcessCFG:
    def _cfg(self, loop=True):
        design = elaborate_source(SOURCE_TWO_PROCESSES)
        return build_cfg(design, loop_processes=loop)

    def test_labels_unique_across_processes(self):
        program_cfg = self._cfg()
        seen = set()
        for cfg in program_cfg.processes.values():
            assert not (seen & set(cfg.blocks))
            seen |= set(cfg.blocks)

    def test_entry_is_isolated(self):
        program_cfg = self._cfg()
        for cfg in program_cfg.processes.values():
            assert cfg.predecessors(cfg.entry_label) == []

    def test_looping_wrapper_adds_back_edge(self):
        program_cfg = self._cfg(loop=True)
        producer = program_cfg.processes["producer"]
        assert (producer.loop_label, init_of(producer.process.body)) in producer.flow
        body_finals = finals_of(producer.process.body)
        assert all((final, producer.loop_label) in producer.flow for final in body_finals)

    def test_straight_line_mode_has_no_back_edge(self):
        program_cfg = self._cfg(loop=False)
        producer = program_cfg.processes["producer"]
        first = init_of(producer.process.body)
        assert (producer.entry_label, first) in producer.flow
        final = max(finals_of(producer.process.body))
        assert not producer.successors(final)

    def test_wait_labels(self):
        program_cfg = self._cfg()
        producer = program_cfg.processes["producer"]
        assert len(producer.wait_labels) == 1
        assert len(program_cfg.wait_labels) == 2

    def test_assignment_label_lookup(self):
        program_cfg = self._cfg()
        producer = program_cfg.processes["producer"]
        assert len(producer.assignment_labels_of_signal("link")) == 1
        assert len(producer.assignment_labels_of_variable("v")) == 1
        assert producer.assignment_labels_of_signal("ghost") == frozenset()

    def test_label_to_process_lookup(self):
        program_cfg = self._cfg()
        for name, cfg in program_cfg.processes.items():
            for label in cfg.blocks:
                assert program_cfg.process_of_label(label) == name
        with pytest.raises(KeyError):
            program_cfg.process_of_label(9999)

    def test_summary_statistics(self):
        stats = self._cfg().summary()
        assert stats["processes"] == 2
        assert stats["signals"] == 3
        assert stats["variables"] == 1
        assert stats["wait_labels"] == 2


class TestCrossFlow:
    def _cfg(self, source=SOURCE_TWO_PROCESSES):
        return build_cfg(elaborate_source(source))

    def test_cross_flow_is_cartesian_product(self):
        program_cfg = self._cfg()
        tuples = program_cfg.cross_flow()
        assert len(tuples) == 1
        assert len(tuples[0]) == 2

    def test_cross_flow_tuples_containing(self):
        program_cfg = self._cfg()
        wait = next(iter(program_cfg.processes["producer"].wait_labels))
        assert program_cfg.cross_flow_tuples_containing(wait) == program_cfg.cross_flow()
        assert program_cfg.cross_flow_tuples_containing(1) in ([], program_cfg.cross_flow())

    def test_cooccurrence_requires_distinct_processes(self):
        program_cfg = self._cfg()
        producer_wait = next(iter(program_cfg.processes["producer"].wait_labels))
        consumer_wait = next(iter(program_cfg.processes["consumer"].wait_labels))
        assert program_cfg.labels_cooccur_in_cross_flow(producer_wait, consumer_wait)
        assert program_cfg.labels_cooccur_in_cross_flow(producer_wait, producer_wait)
        assert not program_cfg.labels_cooccur_in_cross_flow(producer_wait, 1)

    def test_two_waits_in_same_process_do_not_cooccur(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal link : std_logic;
        begin
          p1 : process begin link <= a; wait on a; link <= a; wait on a; end process p1;
          p2 : process begin y <= link; wait on link; end process p2;
        end arch;
        """
        program_cfg = self._cfg(source)
        w1, w2 = sorted(program_cfg.processes["p1"].wait_labels)
        assert not program_cfg.labels_cooccur_in_cross_flow(w1, w2)
        assert len(program_cfg.cross_flow()) == 2

    def test_process_without_wait_empties_cross_flow(self):
        source = """
        entity e is port( a : in std_logic; y : out std_logic ); end e;
        architecture arch of e is
          signal link : std_logic;
        begin
          p1 : process
            variable v : std_logic;
          begin
            v := a;
            link <= v;
          end process p1;
          p2 : process begin y <= link; wait on link; end process p2;
        end arch;
        """
        program_cfg = self._cfg(source)
        assert program_cfg.cross_flow() == []
        wait = next(iter(program_cfg.processes["p2"].wait_labels))
        assert not program_cfg.label_occurs_in_cross_flow(wait)

    def test_consistency_of_cooccurrence_with_product(self):
        program_cfg = self._cfg()
        tuples = program_cfg.cross_flow()
        for li in program_cfg.wait_labels:
            for lj in program_cfg.wait_labels:
                expected = any(li in t and lj in t for t in tuples)
                assert program_cfg.labels_cooccur_in_cross_flow(li, lj) == expected
