"""Tests for the staged pipeline, its artifact cache and the batch driver."""

import pytest

from repro import workloads
from repro.analysis.api import analyze, analyze_kemmerer
from repro.dataflow.universe import FactUniverse
from repro.errors import AnalysisError
from repro.pipeline import (
    STAGE_NAMES,
    AnalysisOptions,
    ArtifactCache,
    BatchJob,
    Pipeline,
    entities_in,
    expand_jobs,
    render_analysis_text,
    run_batch,
    run_job,
    source_digest,
)
from repro.security.policy import TwoLevelPolicy
from repro.security.report import check_source

ANALYSIS_STAGE_NAMES = [name for name in STAGE_NAMES if name != "report"]


class TestPipelineStages:
    def test_full_run_traverses_every_stage_in_order(self):
        run = Pipeline().run(workloads.challenge_f_program())
        assert [stage.name for stage in run.stages] == ANALYSIS_STAGE_NAMES
        assert all(stage.seconds >= 0.0 for stage in run.stages)
        assert not run.cached_stages
        assert run.result is not None

    def test_matches_the_legacy_api(self):
        source = workloads.producer_consumer_program()
        via_pipeline = Pipeline().run(source).result
        via_api = analyze(source)
        assert via_pipeline.summary() == via_api.summary()
        assert (
            via_pipeline.graph.to_adjacency() == via_api.graph.to_adjacency()
        )

    def test_until_stops_after_the_named_stage(self):
        run = Pipeline().run(workloads.challenge_f_program(), until="cfg")
        assert [stage.name for stage in run.stages] == ["parse", "elaborate", "cfg"]
        assert run.result is None
        assert run.artifacts.program_cfg is not None
        assert run.artifacts.rm_local is None

    def test_unknown_stage_is_an_error(self):
        with pytest.raises(AnalysisError, match="unknown pipeline stage"):
            Pipeline().run(workloads.challenge_f_program(), until="nonsense")

    def test_policy_enables_the_report_stage(self):
        run = Pipeline().run(
            workloads.challenge_f_program(),
            policy=TwoLevelPolicy(secret_resources=["key"]),
            report_options={"outputs": ["leak"]},
        )
        assert [stage.name for stage in run.stages] == list(STAGE_NAMES)
        assert run.report is not None and run.report.is_clean

    def test_kemmerer_run_matches_the_legacy_api(self):
        source = workloads.overwriting_loop_program()
        via_pipeline = Pipeline().run_kemmerer(source).kemmerer
        via_api = analyze_kemmerer(source)
        assert via_pipeline.graph.to_adjacency() == via_api.graph.to_adjacency()

    def test_options_thread_through(self):
        source = workloads.paper_program_a()
        options = AnalysisOptions(improved=False, loop_processes=False)
        run = Pipeline().run(source, options)
        assert run.result.improved is False
        assert run.result.graph.to_adjacency() == analyze(
            source, improved=False, loop_processes=False
        ).graph.to_adjacency()


class TestArtifactCache:
    def test_second_run_hits_every_stage(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        cold = pipeline.run(source)
        warm = pipeline.run(source)
        assert not cold.cached_stages
        assert warm.cached_stages == ANALYSIS_STAGE_NAMES
        assert cache.hits == len(ANALYSIS_STAGE_NAMES)
        assert render_analysis_text(warm.result) == render_analysis_text(cold.result)

    def test_differing_options_miss_only_the_dependent_stages(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        pipeline.run(source)

        basic = pipeline.run(source, AnalysisOptions(improved=False))
        assert basic.cached_stages == [
            "parse", "elaborate", "cfg", "active", "reaching", "local", "specialize",
        ]
        assert basic.computed_stages == ["closure", "flow_graph"]

        straight = pipeline.run(source, AnalysisOptions(loop_processes=False))
        assert straight.cached_stages == ["parse", "elaborate"]

    def test_different_source_misses_everything(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        pipeline.run(workloads.producer_consumer_program())
        other = pipeline.run(workloads.challenge_f_program())
        assert not other.cached_stages

    def test_parse_artifact_shared_across_differing_option_runs(self):
        # The parse stage has no option_fields: its key is option- and
        # entity-independent, so two runs with entirely different options
        # share one cached parse artifact.
        from repro.pipeline.stages import PARSE, stage_key

        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        digest = source_digest(source)

        first = pipeline.run(source, AnalysisOptions(improved=False))
        second = pipeline.run(
            source,
            AnalysisOptions(
                improved=True,
                loop_processes=False,
                use_under_approximation=False,
            ),
        )
        assert "parse" not in first.cached_stages
        assert "parse" in second.cached_stages

        # Both option contexts address the very same cache entry ...
        key_first = stage_key(PARSE, digest, AnalysisOptions(improved=False))
        key_second = stage_key(
            PARSE, digest, AnalysisOptions(loop_processes=False)
        )
        assert key_first == key_second == f"parse:{digest}"
        assert key_first in cache
        # ... and only one parse artifact was ever stored for the source.
        assert (
            stage_key(PARSE, digest, AnalysisOptions(entity="other")) in cache
        )

    def test_cached_and_cold_runs_agree(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.two_phase_program()
        cold = pipeline.run(source)
        warm = pipeline.run(source)
        fresh = Pipeline().run(source)
        for run in (warm, fresh):
            assert run.result.graph.to_adjacency() == cold.result.graph.to_adjacency()
            assert run.result.summary() == cold.result.summary()

    def test_pinned_universe_bypasses_universe_bound_stages(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        pipeline.run(source)

        universe = FactUniverse()
        pinned = pipeline.run(source, universe=universe)
        assert pinned.cached_stages == ["parse", "elaborate", "cfg", "active", "reaching"]
        assert pinned.result.universe is universe
        assert pinned.result.rm_local.universe is universe

    def test_adopting_the_cached_universe_keeps_artifacts_consistent(self):
        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        cold = pipeline.run(source)
        warm = pipeline.run(source)
        assert warm.result.universe is cold.result.universe
        assert warm.result.rm_local.universe is warm.result.universe

    def test_design_entry_runs_do_not_touch_the_cache(self):
        from repro.vhdl.elaborate import elaborate_source

        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        design = elaborate_source(workloads.challenge_f_program())
        pipeline.run_design(design)
        pipeline.run_design(design)
        assert len(cache) == 0 and cache.hits == 0

    def test_partial_eviction_never_mixes_universes(self):
        # Evict one universe-bound entry ("local") while later ones
        # ("specialize", "closure", "flow_graph") survive: the re-run must
        # recompute the survivors rather than adopt their (now foreign)
        # universe, so every artifact of one run shares one universe.
        from repro.pipeline.stages import LOCAL

        cache = ArtifactCache()
        pipeline = Pipeline(cache)
        source = workloads.producer_consumer_program()
        pipeline.run(source)
        from repro.pipeline.stages import stage_key

        del cache._entries[stage_key(LOCAL, source_digest(source), AnalysisOptions())]
        rerun = pipeline.run(source)
        assert "local" in rerun.computed_stages
        assert {"specialize", "closure", "flow_graph"} <= set(rerun.computed_stages)
        assert rerun.result.rm_local.universe is rerun.result.universe
        assert rerun.result.rm_global.universe is rerun.result.universe

    def test_eviction_keeps_the_cache_bounded(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest entry evicted
        assert cache.get("c") == 3

    def test_source_digest_is_content_addressed(self):
        assert source_digest("abc") == source_digest("abc")
        assert source_digest("abc") != source_digest("abd")


class TestApiWrapperIsolation:
    def test_independent_analyze_calls_get_independent_universes(self):
        source = workloads.producer_consumer_program()
        first = analyze(source)
        second = analyze(source)
        assert first.universe is not second.universe
        assert first.graph.to_adjacency() == second.graph.to_adjacency()


class TestCheckSource:
    def test_reports_through_the_pipeline(self):
        report = check_source(
            workloads.challenge_f_program(),
            TwoLevelPolicy(secret_resources=["key"]),
            outputs=["leak"],
        )
        assert report.is_clean
        document = report.to_json_dict()
        assert document["clean"] is True
        assert document["output_dependencies"]["leak"] == ["plain"]

    def test_shares_a_cache_across_checks(self):
        cache = ArtifactCache()
        source = workloads.challenge_f_program()
        policy = TwoLevelPolicy(secret_resources=["key"])
        check_source(source, policy, outputs=["leak"], cache=cache)
        misses_after_first = cache.misses
        check_source(source, policy, outputs=["leak"], cache=cache)
        assert cache.hits == len(ANALYSIS_STAGE_NAMES)
        assert cache.misses == misses_after_first


@pytest.fixture
def workload_files(tmp_path):
    paths = []
    for name, source in workloads.batch_workload_sources():
        path = tmp_path / f"{name}.vhd"
        path.write_text(source, encoding="utf-8")
        paths.append(str(path))
    return paths


class TestBatchDriver:
    def test_sequential_and_parallel_agree(self, workload_files):
        assert len(workload_files) >= 8
        jobs = expand_jobs(workload_files)
        sequential = run_batch(jobs, parallel=False)
        parallel = run_batch(jobs, parallel=True, max_workers=2)
        assert sequential.ok and parallel.ok
        assert [item.job for item in parallel.items] == jobs
        assert [item.text for item in parallel.items] == [
            item.text for item in sequential.items
        ]

    def test_batch_output_matches_single_runs(self, workload_files):
        jobs = expand_jobs(workload_files)
        batch = run_batch(jobs, parallel=False)
        for item in batch.items:
            source = open(item.job.path, encoding="utf-8").read()
            single = Pipeline().run(source).result
            assert item.text == render_analysis_text(single)

    def test_errors_become_item_outcomes(self, workload_files, tmp_path):
        broken = tmp_path / "broken.vhd"
        broken.write_text("entity broken is", encoding="utf-8")
        missing = str(tmp_path / "missing.vhd")
        jobs = expand_jobs([workload_files[0], str(broken), missing])
        report = run_batch(jobs, parallel=False)
        assert [item.ok for item in report.items] == [True, False, False]
        assert not report.ok and len(report.failures) == 2
        assert all(item.error for item in report.failures)

    def test_all_entities_expansion(self, tmp_path):
        path = tmp_path / "multi.vhd"
        path.write_text(
            workloads.multi_entity_program(3, 2, 4), encoding="utf-8"
        )
        jobs = expand_jobs([str(path)], all_entities=True)
        assert [job.entity for job in jobs] == ["chain_0", "chain_1", "chain_2"]
        report = run_batch(jobs, parallel=False)
        assert report.ok
        source = path.read_text(encoding="utf-8")
        for job, item in zip(jobs, report.items):
            single = Pipeline().run(
                source, AnalysisOptions(entity=job.entity)
            ).result
            assert item.text == render_analysis_text(single)
            assert item.data["design"] == job.entity

    def test_cold_sequential_batch_shares_one_parse(self, tmp_path):
        # Even without a caller-supplied cache the sequential driver opens
        # an in-run one, so the per-entity jobs of a file reuse its parse
        # artifact instead of re-tokenising the same source per entity.
        path = tmp_path / "multi.vhd"
        path.write_text(
            workloads.multi_entity_program(3, 2, 4), encoding="utf-8"
        )
        jobs = expand_jobs([str(path)], all_entities=True)
        report = run_batch(jobs, parallel=False)
        assert report.ok
        first, *rest = report.items
        assert "parse" not in first.data["cached_stages"]
        for item in rest:
            assert "parse" in item.data["cached_stages"]

    def test_no_cache_sequential_batch_stays_cold(self, tmp_path):
        path = tmp_path / "multi.vhd"
        path.write_text(
            workloads.multi_entity_program(2, 2, 4), encoding="utf-8"
        )
        jobs = expand_jobs([str(path)], all_entities=True)
        report = run_batch(jobs, parallel=False, no_cache=True)
        assert report.ok
        for item in report.items:
            assert item.data["cached_stages"] == []

    def test_entities_in_lists_architecture_order(self):
        assert entities_in(workloads.multi_entity_program(2, 2, 2)) == [
            "chain_0",
            "chain_1",
        ]

    def test_warm_cache_rerun_skips_expensive_stages(self, workload_files):
        cache = ArtifactCache()
        jobs = expand_jobs(workload_files)
        cold = run_batch(jobs, parallel=False, cache=cache)
        warm = run_batch(jobs, parallel=False, cache=cache)
        assert warm.ok
        assert [item.text for item in warm.items] == [
            item.text for item in cold.items
        ]
        for item in warm.items:
            assert {"parse", "elaborate", "closure"} <= set(
                item.data["cached_stages"]
            )
        assert cache.hits >= len(jobs) * len(ANALYSIS_STAGE_NAMES)
        cold_stage_seconds = sum(
            sum(item.data["timings"].values()) for item in cold.items
        )
        warm_stage_seconds = sum(
            sum(item.data["timings"].values()) for item in warm.items
        )
        assert warm_stage_seconds < cold_stage_seconds

    def test_run_job_reports_missing_files(self, tmp_path):
        item = run_job(BatchJob(path=str(tmp_path / "gone.vhd")), AnalysisOptions())
        assert not item.ok and "gone.vhd" in item.error

    def test_non_utf8_files_become_item_outcomes(self, tmp_path):
        binary = tmp_path / "binary.vhd"
        binary.write_bytes(b"\xff\xfe not text")
        item = run_job(BatchJob(path=str(binary)), AnalysisOptions())
        assert not item.ok and item.error
        # ... in --all-entities expansion too, instead of crashing it
        jobs = expand_jobs([str(binary)], all_entities=True)
        assert jobs == [BatchJob(path=str(binary))]

    def test_expansion_seeds_the_parse_cache(self, tmp_path):
        path = tmp_path / "multi.vhd"
        path.write_text(workloads.multi_entity_program(3, 2, 4), encoding="utf-8")
        cache = ArtifactCache()
        jobs = expand_jobs([str(path)], all_entities=True, cache=cache)
        report = run_batch(jobs, parallel=False, cache=cache)
        assert report.ok
        # every job reuses the parse from expansion: the file is parsed once
        assert all("parse" in item.data["cached_stages"] for item in report.items)

    def test_json_document_shape(self, workload_files):
        report = run_batch(expand_jobs(workload_files[:2]), parallel=False)
        document = report.to_json_dict()
        assert document["command"] == "batch"
        assert document["failed"] == 0
        assert [job["file"] for job in document["jobs"]] == workload_files[:2]
        assert all("timings" in job and "summary" in job for job in document["jobs"])
