"""Property tests for the contract matcher normaliser.

The two properties the corpus depends on (see
``src/repro/contract/matchers.py``):

* **idempotence** — normalising an already-normalised document changes
  nothing, so committed recordings (stored normalised) can be re-masked
  freely during verification;
* **order-stability** — the rule *mapping's* iteration order is
  irrelevant: any permutation of the same rules produces the same
  document.

Both are exercised over generated JSON documents with generated matcher
tables (including wildcards and pointers that resolve nowhere), and over
every committed recording.
"""

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contract.matchers import (
    JSON_TYPES,
    is_mask,
    join_pointer,
    json_type,
    mask,
    normalize,
    split_pointer,
)

PACTS_DIR = Path(__file__).resolve().parent / "contract" / "pacts"

# ---------------------------------------------------------------- strategies

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

json_documents = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


def _pointers_of(document, prefix=()):
    """Every concrete pointer into ``document``, as token tuples."""
    pointers = []
    if isinstance(document, dict):
        for key, value in document.items():
            pointers.append(prefix + (key,))
            pointers.extend(_pointers_of(value, prefix + (key,)))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            pointers.append(prefix + (str(index),))
            pointers.extend(_pointers_of(value, prefix + (str(index),)))
    return pointers


@st.composite
def documents_with_matchers(draw):
    """A document plus a matcher table over (mostly) real paths in it."""
    document = draw(json_documents)
    real = _pointers_of(document)
    rules = {}
    if real:
        chosen = draw(
            st.lists(st.sampled_from(real), max_size=4, unique=True)
        )
        for tokens in chosen:
            # Sometimes generalise a segment to a wildcard.
            tokens = tuple(
                "*" if draw(st.booleans()) and token.isdigit() else token
                for token in tokens
            )
            rules[join_pointer(list(tokens))] = draw(st.sampled_from(JSON_TYPES))
    if draw(st.booleans()):  # a rule that resolves nowhere must be harmless
        rules["/no/such/path"] = draw(st.sampled_from(JSON_TYPES))
    return document, rules


# ----------------------------------------------------------------- properties


@settings(max_examples=200, deadline=None)
@given(documents_with_matchers())
def test_normalize_is_idempotent(case):
    document, rules = case
    once = normalize(document, rules)
    assert normalize(once, rules) == once


@settings(max_examples=200, deadline=None)
@given(documents_with_matchers(), st.randoms())
def test_normalize_is_order_stable(case, rng):
    document, rules = case
    items = list(rules.items())
    rng.shuffle(items)
    assert normalize(document, dict(items)) == normalize(document, rules)


@settings(max_examples=200, deadline=None)
@given(documents_with_matchers())
def test_normalize_never_mutates_its_input(case):
    document, rules = case
    snapshot = json.loads(json.dumps(document))
    normalize(document, rules)
    assert document == snapshot


@settings(max_examples=200, deadline=None)
@given(documents_with_matchers())
def test_masked_sites_carry_declared_type_or_original_value(case):
    document, rules = case
    result = normalize(document, rules)
    # Every mask in the output is a well-formed placeholder.
    stack = [result]
    while stack:
        value = stack.pop()
        if is_mask(value):
            assert value["$volatile"] in JSON_TYPES
        elif isinstance(value, dict):
            stack.extend(value.values())
        elif isinstance(value, list):
            stack.extend(value)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.text(st.characters(blacklist_categories=("Cs",)), max_size=8),
        max_size=5,
    )
)
def test_pointer_escaping_round_trips(tokens):
    assert split_pointer(join_pointer(tokens)) == tokens


def test_tilde_and_slash_escaping():
    assert join_pointer(["a/b", "c~d"]) == "/a~1b/c~0d"
    assert split_pointer("/a~1b/c~0d") == ["a/b", "c~d"]


def test_wildcard_masks_every_element():
    document = {"jobs": [{"seconds": 0.1}, {"seconds": 0.2}, {"seconds": "x"}]}
    result = normalize(document, {"/jobs/*/seconds": "number"})
    assert result["jobs"][0]["seconds"] == mask("number")
    assert result["jobs"][1]["seconds"] == mask("number")
    # wrong JSON type is left unmasked for the differ to flag
    assert result["jobs"][2]["seconds"] == "x"


def test_json_type_vocabulary():
    assert json_type(None) == "null"
    assert json_type(True) == "boolean"
    assert json_type(1) == json_type(1.5) == "number"
    assert json_type("s") == "string"
    assert json_type([]) == "array"
    assert json_type({}) == "object"


# ------------------------------------------------- the committed recordings


def test_every_committed_recording_is_a_fixed_point():
    """Round-trip each recorded document through its own matcher table."""
    paths = sorted(PACTS_DIR.glob("*.json"))
    assert len(paths) >= 40
    for path in paths:
        payload = json.loads(path.read_text(encoding="utf-8"))
        document = payload["response"]["document"]
        rules = payload["matchers"]
        assert normalize(document, rules) == document, path.name
        # and order-stability holds on the real tables too
        reversed_rules = dict(reversed(list(rules.items())))
        assert normalize(document, reversed_rules) == document, path.name
