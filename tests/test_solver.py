"""Tests for the Datalog-style constraint solver (Succinct Solver substitute)."""

import pytest

from repro.errors import SolverError
from repro.solver.clauses import Fact, Rule
from repro.solver.engine import Database, SolverEngine
from repro.solver.terms import Atom, Constant, Variable, term


class TestTerms:
    def test_term_coercion_convention(self):
        assert isinstance(term("X"), Variable)
        assert isinstance(term("_anything"), Variable)
        assert isinstance(term("lowercase"), Constant)
        assert isinstance(term(42), Constant)
        assert term(Constant("X")) == Constant("X")

    def test_atom_of_builds_mixed_atoms(self):
        atom = Atom.of("edge", "X", "b")
        assert isinstance(atom.terms[0], Variable)
        assert isinstance(atom.terms[1], Constant)
        assert atom.arity == 2
        assert not atom.is_ground()

    def test_ground_tuple(self):
        atom = Atom.of("edge", "a", 2)
        assert atom.is_ground()
        assert atom.ground_tuple() == ("a", 2)
        with pytest.raises(ValueError):
            Atom.of("edge", "X", 2).ground_tuple()

    def test_match_binds_variables_consistently(self):
        atom = Atom.of("edge", "X", "X")
        assert atom.match(("a", "a"), {}) == {Variable("X"): "a"}
        assert atom.match(("a", "b"), {}) is None
        assert atom.match(("a",), {}) is None

    def test_match_respects_existing_bindings(self):
        atom = Atom.of("edge", "X", "Y")
        bindings = {Variable("X"): "a"}
        assert atom.match(("a", "b"), bindings) == {
            Variable("X"): "a",
            Variable("Y"): "b",
        }
        assert atom.match(("c", "b"), bindings) is None

    def test_substitute(self):
        atom = Atom.of("edge", "X", "Y").substitute({Variable("X"): "a"})
        assert atom.terms[0] == Constant("a")
        assert isinstance(atom.terms[1], Variable)


class TestClauses:
    def test_facts_must_be_ground(self):
        with pytest.raises(SolverError):
            Fact(Atom.of("p", "X"))

    def test_rules_need_a_body(self):
        with pytest.raises(SolverError):
            Rule(head=Atom.of("p", "X"), body=())

    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(SolverError):
            Rule(head=Atom.of("p", "X", "Y"), body=(Atom.of("q", "X"),))

    def test_repr_mentions_rule_name(self):
        rule = Rule(
            name="closure", head=Atom.of("p", "X"), body=(Atom.of("q", "X"),)
        )
        assert "closure" in repr(rule)


class TestDatabase:
    def test_add_reports_novelty(self):
        database = Database()
        assert database.add("p", ("a",))
        assert not database.add("p", ("a",))
        assert database.size() == 1
        assert ("p", ("a",)) in database
        assert database.predicates() == ["p"]


class TestEvaluation:
    def _transitive_closure_engine(self, edges):
        engine = SolverEngine()
        for src, dst in edges:
            engine.add_fact("edge", src, dst)
        engine.add_rule(
            Rule(head=Atom.of("path", "X", "Y"), body=(Atom.of("edge", "X", "Y"),))
        )
        engine.add_rule(
            Rule(
                head=Atom.of("path", "X", "Z"),
                body=(Atom.of("path", "X", "Y"), Atom.of("edge", "Y", "Z")),
            )
        )
        return engine

    def test_transitive_closure_of_a_chain(self):
        engine = self._transitive_closure_engine([("a", "b"), ("b", "c"), ("c", "d")])
        database = engine.solve()
        paths = database.relation("path")
        assert ("a", "d") in paths
        assert ("b", "d") in paths
        assert len(paths) == 6

    def test_transitive_closure_of_a_cycle_terminates(self):
        engine = self._transitive_closure_engine([("a", "b"), ("b", "a")])
        database = engine.solve()
        assert database.relation("path") == {
            ("a", "b"),
            ("b", "a"),
            ("a", "a"),
            ("b", "b"),
        }

    def test_guard_filters_derivations(self):
        engine = SolverEngine()
        for value in range(5):
            engine.add_fact("num", value)
        engine.add_rule(
            Rule(
                head=Atom.of("even", "X"),
                body=(Atom.of("num", "X"),),
                guard=lambda bindings: bindings[Variable("X")] % 2 == 0,
            )
        )
        database = engine.solve()
        assert database.relation("even") == {(0,), (2,), (4,)}

    def test_join_across_relations(self):
        engine = SolverEngine()
        engine.add_fact("parent", "ann", "bob")
        engine.add_fact("parent", "bob", "cid")
        engine.add_fact("parent", "bob", "dee")
        engine.add_rule(
            Rule(
                head=Atom.of("grandparent", "X", "Z"),
                body=(Atom.of("parent", "X", "Y"), Atom.of("parent", "Y", "Z")),
            )
        )
        database = engine.solve()
        assert database.relation("grandparent") == {("ann", "cid"), ("ann", "dee")}

    def test_constants_in_rule_bodies_select_tuples(self):
        engine = SolverEngine()
        engine.add_fact("access", "x", 1, "R0")
        engine.add_fact("access", "y", 1, "M0")
        engine.add_rule(
            Rule(
                head=Atom.of("read", "N"),
                body=(Atom.of("access", "N", "L", Constant("R0")),),
            )
        )
        database = engine.solve()
        assert database.relation("read") == {("x",)}

    def test_max_rounds_guard(self):
        engine = self._transitive_closure_engine([("a", "b"), ("b", "c")])
        with pytest.raises(SolverError):
            engine.solve(max_rounds=1)

    def test_empty_program_yields_empty_database(self):
        assert SolverEngine().solve().size() == 0
