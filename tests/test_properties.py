"""Property-based tests tying the analysis to the executable semantics.

The central property is *soundness as noninterference*: whenever the improved
Information Flow analysis reports **no** edge from an input port (or its
incoming node) into an output port's outgoing node, then changing only that
input must not change the observed output value in the delta-cycle simulator.
The programs are generated randomly: straight-line and branching assignments
over a fixed set of ports and variables, which is exactly the shape of the
paper's pre-processed AES code (unrolled loops, substituted constants).
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings, strategies as st

from repro.analysis.api import analyze, analyze_kemmerer
from repro.analysis.resource_matrix import incoming_node, outgoing_node
from repro.semantics.simulator import simulate
from repro.vhdl.elaborate import elaborate_source

INPUTS = ("in0", "in1", "in2")
VARIABLES = ("v0", "v1", "v2", "v3")
WIDTH = 4

# ---------------------------------------------------------------------------
# Random program generation
# ---------------------------------------------------------------------------

operand = st.sampled_from(INPUTS + VARIABLES + ('"0011"', '"1010"'))
operator = st.sampled_from(("xor", "and", "or"))


@st.composite
def expressions(draw) -> str:
    left = draw(operand)
    if draw(st.booleans()):
        return left
    right = draw(operand)
    return f"({left} {draw(operator)} {right})"


@st.composite
def simple_assignments(draw) -> str:
    target = draw(st.sampled_from(VARIABLES))
    return f"{target} := {draw(expressions())};"


@st.composite
def conditional_assignments(draw) -> str:
    selector = draw(st.sampled_from(INPUTS + VARIABLES))
    bit = draw(st.integers(0, WIDTH - 1))
    then_stmt = draw(simple_assignments())
    else_stmt = draw(simple_assignments())
    return (
        f"if {selector}({bit}) = '1' then {then_stmt} else {else_stmt} end if;"
    )


@st.composite
def statement_lists(draw) -> List[str]:
    count = draw(st.integers(2, 7))
    statements = []
    for _ in range(count):
        if draw(st.integers(0, 3)) == 0:
            statements.append(draw(conditional_assignments()))
        else:
            statements.append(draw(simple_assignments()))
    return statements


@st.composite
def random_programs(draw) -> Tuple[str, str]:
    """A random VHDL1 design plus the expression driving its output."""
    statements = draw(statement_lists())
    result_source = draw(st.sampled_from(VARIABLES + INPUTS))
    ports = ";\n        ".join(
        f"{name} : in std_logic_vector({WIDTH - 1} downto 0)" for name in INPUTS
    )
    variables = "\n    ".join(
        f"variable {name} : std_logic_vector({WIDTH - 1} downto 0);"
        for name in VARIABLES
    )
    body = "\n    ".join(statements)
    source = f"""
entity random_design is
  port( {ports};
        outp : out std_logic_vector({WIDTH - 1} downto 0) );
end random_design;

architecture generated of random_design is
begin
  p : process
    {variables}
  begin
    {body}
    outp <= {result_source};
    wait on in0, in1, in2;
  end process p;
end generated;
"""
    return source, result_source


input_vectors = st.tuples(
    st.integers(0, 2**WIDTH - 1),
    st.integers(0, 2**WIDTH - 1),
    st.integers(0, 2**WIDTH - 1),
)


def _simulate(source: str, values: dict) -> str:
    design = elaborate_source(source)
    outputs = simulate(
        design, {name: format(value, f"0{WIDTH}b") for name, value in values.items()}
    )
    return outputs["outp"].to_string()


class TestNoninterferenceSoundness:
    @settings(max_examples=30, deadline=None)
    @given(random_programs(), input_vectors, st.integers(0, 2**WIDTH - 1))
    def test_unreported_inputs_cannot_influence_the_output(
        self, program, base_values, alternative
    ):
        source, _ = program
        result = analyze(source, improved=True)
        graph = result.graph
        sink = outgoing_node("outp")

        independent = [
            port
            for port in INPUTS
            if not graph.has_edge(port, sink)
            and not graph.has_edge(incoming_node(port), sink)
        ]
        if not independent:
            return

        values = dict(zip(INPUTS, base_values))
        baseline = _simulate(source, values)
        for port in independent:
            changed = dict(values)
            changed[port] = alternative
            assert _simulate(source, changed) == baseline, (
                f"analysis reported no flow {port} -> outp but simulation "
                f"observed one"
            )

    @settings(max_examples=30, deadline=None)
    @given(random_programs())
    def test_analysis_is_at_most_as_coarse_as_kemmerer(self, program):
        source, _ = program
        ours = analyze(source, improved=False).graph_without_self_loops()
        kemmerer = analyze_kemmerer(source).graph.without_self_loops()
        assert ours.is_subgraph_of(kemmerer)

    @settings(max_examples=30, deadline=None)
    @given(random_programs())
    def test_under_approximation_below_over_approximation(self, program):
        source, _ = program
        result = analyze(source)
        for process_result in result.active.values():
            for label in process_result.over_entry:
                assert (
                    process_result.under_entry_of(label)
                    <= process_result.over_entry_of(label)
                )

    @settings(max_examples=20, deadline=None)
    @given(random_programs())
    def test_improved_closure_contains_basic_closure(self, program):
        source, _ = program
        basic = analyze(source, improved=False)
        improved = analyze(source, improved=True)
        assert basic.rm_global.entries() <= improved.rm_global.entries()


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_programs())
    def test_pretty_print_parse_roundtrip(self, program):
        from repro.vhdl.parser import parse_program
        from repro.vhdl.pretty import format_program

        source, _ = program
        printed = format_program(parse_program(source))
        assert format_program(parse_program(printed)) == printed

    @settings(max_examples=15, deadline=None)
    @given(random_programs())
    def test_solver_encoding_agrees_with_direct_closure(self, program):
        from repro.analysis import alfp

        source, _ = program
        result = analyze(source, improved=True)
        via_solver = alfp.closure_via_solver(
            result.program_cfg,
            result.rm_local,
            result.active,
            result.reaching,
            result.design,
            improved=True,
        )
        assert via_solver == result.rm_global


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(random_programs())
    def test_analysis_is_deterministic(self, program):
        source, _ = program
        first = analyze(source)
        second = analyze(source)
        assert first.graph.edges == second.graph.edges
        assert first.rm_global == second.rm_global
