"""Equivalence of the two hierarchy routes (``repro.hier.link`` vs flatten).

The headline contract of the subsystem: for every hierarchical workload and
every analysis option combination, the ``vhdl-ifa/v1`` document produced by
summary linking is byte-identical to the one produced by flattening first —
through the library, the CLI (``--flatten``) and the serve surface alike.
"""

import itertools
import json

import pytest

from repro import Workspace, workloads
from repro.cli import main
from repro.errors import ElaborationError, HierarchyError
from repro.hier import flatten_source, link_hierarchy
from repro.pipeline import Pipeline, analyze_document, json_text
from repro.pipeline.artifacts import AnalysisOptions
from repro.vhdl.parser import parse_program

VOLATILE = ("timings", "cached_stages")

OPTION_COMBOS = list(itertools.product([True, False], repeat=3))


def _doc(run, **render):
    document = analyze_document(run, **render)
    for field in VOLATILE:
        document.pop(field, None)
    return json_text(document)


@pytest.mark.parametrize(
    "name,source", workloads.hierarchy_workload_sources(), ids=lambda v: v[:20]
)
@pytest.mark.parametrize(
    "improved,loop_processes,under", OPTION_COMBOS, ids=lambda v: str(v)[:5]
)
def test_linked_documents_equal_flattened(name, source, improved, loop_processes, under):
    options = AnalysisOptions(
        improved=improved,
        loop_processes=loop_processes,
        use_under_approximation=under,
    )
    program = parse_program(source)
    linked = link_hierarchy(program, options)
    flattened = Pipeline().run(flatten_source(program), options)
    assert _doc(linked) == _doc(flattened)


def test_rendering_variants_agree():
    program = parse_program(workloads.hierarchical_mux_program())
    options = AnalysisOptions()
    linked = link_hierarchy(program, options)
    flattened = Pipeline().run(flatten_source(program), options)
    for collapse, self_loops in itertools.product([True, False], repeat=2):
        render = {"collapse": collapse, "self_loops": self_loops}
        assert _doc(linked, **render) == _doc(flattened, **render)


class TestWorkspaceRouting:
    def test_analyze_run_auto_links(self):
        ws = Workspace()
        run = ws.analyze_run(workloads.hierarchical_mux_program())
        assert [stage.name for stage in run.stages] == ["summary", "link"]

    def test_flatten_route_is_byte_identical(self):
        ws = Workspace()
        source = workloads.hierarchical_register_file(cells=3, depth=4)
        linked = ws.analyze_run(source)
        flattened = ws.analyze_run(source, hierarchy="flatten")
        assert _doc(linked) == _doc(flattened)

    def test_reject_restores_the_flat_refusal(self):
        ws = Workspace()
        with pytest.raises(ElaborationError):
            ws.analyze_run(
                workloads.hierarchical_mux_program(), hierarchy="reject"
            )

    def test_invalid_hierarchy_mode(self):
        ws = Workspace()
        with pytest.raises(ValueError, match="hierarchy"):
            ws.analyze_run(workloads.hierarchical_mux_program(), hierarchy="no")

    def test_flat_sources_are_untouched(self):
        # a flat source takes the ordinary staged pipeline, stage for stage
        ws = Workspace()
        run = ws.analyze_run(workloads.paper_program_a())
        assert [stage.name for stage in run.stages][:2] == ["parse", "elaborate"]

    def test_analyze_hierarchy_run_does_not_autodetect(self):
        # a flat program is a zero-instance hierarchy on this surface
        ws = Workspace()
        run = ws.analyze_hierarchy_run(workloads.paper_program_a())
        assert [stage.name for stage in run.stages] == ["summary", "link"]
        flat = ws.analyze_run(workloads.paper_program_a())
        assert _doc(run) == _doc(flat)

    def test_check_flattens_transparently(self):
        ws = Workspace()
        source = workloads.hierarchical_mux_program()
        checked = ws.check(
            source, {"levels": {"sel": 1, "o": 0}, "mode": "transitive"}
        )
        assert checked.clean is not None

    def test_lint_flattens_transparently(self):
        ws = Workspace()
        lint = ws.lint(workloads.hierarchical_mux_program())
        assert lint.exit_code == 0

    def test_entity_selects_the_root(self):
        ws = Workspace()
        source = workloads.hierarchical_mux_program()
        sub = ws.analyze_run(source, entity="stage")
        assert sub.result.design.name == "stage"


class TestCLI:
    def test_flatten_flag_matches_default_route(self, tmp_path, capsys):
        path = tmp_path / "mux.vhdl"
        path.write_text(workloads.hierarchical_mux_program(), encoding="utf-8")
        assert main(["analyze", str(path), "--json"]) == 0
        linked = json.loads(capsys.readouterr().out)
        assert main(["analyze", str(path), "--json", "--flatten"]) == 0
        flattened = json.loads(capsys.readouterr().out)
        for document in (linked, flattened):
            for field in VOLATILE:
                document.pop(field, None)
        assert linked == flattened

    def test_structural_fault_exits_like_an_analysis_error(self, tmp_path, capsys):
        path = tmp_path / "bad.vhdl"
        source = workloads.hierarchical_mux_program().replace(
            "port map (lo, sel, n2)", "port map (lo, sel)"
        )
        path.write_text(source, encoding="utf-8")
        assert main(["analyze", str(path)]) == 1
        assert "unbound formal port" in capsys.readouterr().err

    def test_batch_over_hierarchical_files(self, tmp_path, capsys):
        hier = tmp_path / "mux.vhdl"
        hier.write_text(workloads.hierarchical_mux_program(), encoding="utf-8")
        flat = tmp_path / "flat.vhdl"
        flat.write_text(workloads.paper_program_a(), encoding="utf-8")
        assert (
            main(["batch", str(hier), str(flat), "--jobs", "1", "--json"]) == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert [job["ok"] for job in document["jobs"]] == [True, True]
        # the hierarchical job's document equals the single-file analyze one
        assert main(["analyze", str(hier), "--json"]) == 0
        single = json.loads(capsys.readouterr().out)
        batch_job = document["jobs"][0]
        assert batch_job["design"] == single["design"]
        assert batch_job["graph"] == single["graph"]


class TestServe:
    def test_serve_analyzes_hierarchical_sources(self):
        from repro.pipeline.serve import execute_request

        ws = Workspace()
        status, document = execute_request(
            ws, "analyze", {"source": workloads.hierarchical_mux_program()}, None
        )
        assert status == 200
        assert document["design"] == "mux_top"
        flat_doc = json.loads(
            _doc(ws.analyze_run(workloads.hierarchical_mux_program()))
        )
        for field in VOLATILE:
            document.pop(field, None)
        assert document["graph"] == flat_doc["graph"]


class TestLinkErrorParity:
    def test_flat_signal_collision(self):
        # an internal signal of the root spelled like a renamed child signal
        source = workloads.hierarchical_mux_program().replace(
            "signal n1 : std_logic;",
            "signal n1 : std_logic;\n  signal u1__t : std_logic;",
        )
        program = parse_program(source)
        with pytest.raises(HierarchyError, match="duplicate signal 'u1__t'"):
            link_hierarchy(program)

    def test_zero_process_design(self):
        source = """
entity empty is
  port( x : in std_logic;
        y : out std_logic );
end empty;

architecture rtl of empty is
begin
end rtl;

entity shell is
  port( p : in std_logic;
        q : out std_logic );
end shell;

architecture rtl of shell is
  component empty is
    port( x : in std_logic;
          y : out std_logic );
  end component empty;
begin
  u1 : empty port map (p, q);
end rtl;
"""
        with pytest.raises(HierarchyError, match="contains no processes"):
            link_hierarchy(parse_program(source))
