"""Tests for the canonical workload programs."""

import pytest

from repro import workloads
from repro.analysis.api import analyze
from repro.vhdl.elaborate import elaborate_source

ALL_FIXED_WORKLOADS = [
    workloads.paper_program_a,
    workloads.paper_program_b,
    workloads.challenge_f_program,
    workloads.producer_consumer_program,
    workloads.conditional_program,
    workloads.overwriting_loop_program,
    workloads.two_phase_program,
]


class TestFixedWorkloads:
    @pytest.mark.parametrize("factory", ALL_FIXED_WORKLOADS)
    def test_workloads_elaborate(self, factory):
        design = elaborate_source(factory())
        assert design.processes

    @pytest.mark.parametrize("factory", ALL_FIXED_WORKLOADS)
    def test_workloads_analyse(self, factory):
        result = analyze(factory())
        assert len(result.rm_global) >= len(result.rm_local)

    def test_paper_programs_use_three_variables(self):
        for factory in (workloads.paper_program_a, workloads.paper_program_b):
            design = elaborate_source(factory())
            assert set(design.processes[0].variables) == {"a", "b", "c"}


class TestSyntheticChain:
    def test_size_scales_with_parameters(self):
        small = elaborate_source(workloads.synthetic_chain_program(2, 4))
        large = elaborate_source(workloads.synthetic_chain_program(4, 8))
        assert len(large.processes) > len(small.processes)
        assert len(large.variable_names()) > len(small.variable_names())

    def test_chain_connects_input_to_output(self):
        from repro.analysis.resource_matrix import outgoing_node

        result = analyze(workloads.synthetic_chain_program(3, 3))
        assert result.graph.has_edge("chain_in", "v_0_0")
        assert result.graph.has_edge(
            f"v_2_2", outgoing_node("chain_out")
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            workloads.synthetic_chain_program(0, 4)
        with pytest.raises(ValueError):
            workloads.synthetic_chain_program(2, 0)

    def test_chain_simulates(self):
        from repro.semantics.simulator import simulate

        design = elaborate_source(workloads.synthetic_chain_program(2, 2))
        outputs = simulate(design, {"chain_in": "10101010"})
        # each stage xors with 00000001 once per temporary beyond the first
        assert outputs["chain_out"].is_fully_defined()
