#!/usr/bin/env python
"""Repo invariant gate: AST lint over ``src/repro`` (stdlib only).

Four invariants, each of which has silently rotted in similar codebases and
none of which the type checker can express:

1. **Every serve/CLI JSON document is stamped.**  Arguments to
   ``json_text(...)`` and ``_print_json(...)`` must be built by
   ``stamped(...)``, a ``*_document(...)`` helper, a ``.document(...)`` /
   ``.to_json_dict(...)`` method, or a local name assigned from one of those
   in the same function.  (The ``_print_json`` wrapper itself is the one
   blessed pass-through.)  This keeps ``schema``/``generator``/``version``
   on every machine-readable payload.

2. **No module-global interner state.**  ``FactUniverse()`` must never be
   instantiated at module scope or as a function-parameter default — a
   shared interner makes bit positions leak between unrelated analyses and
   breaks worker-pool isolation.

3. **Every cacheable pipeline stage declares its cache-key options.**
   Each ``Stage(...)`` construction must pass ``option_fields`` (third
   positional argument onwards or by keyword) unless the stage is named
   ``"parse"`` (keyed by source digest alone) or is ``cacheable=False``.
   A stage that forgets this is cached under too-weak a key and serves
   stale artifacts when options change.

4. **Diagnostic codes are registered exactly once.**  Every string literal
   matching ``IFA<3 digits>`` that is *assigned to a name* must be unique
   across the tree — two rules (or a rule and the flow checker) sharing a
   code would corrupt the lint catalog and docs gate.

Usage: ``python scripts/check_invariants.py [PATH ...]`` — paths default to
``src/repro``; passing explicit paths lets the tests seed violations in a
scratch tree.  Exits 1 listing every violation, 0 when clean.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_PATHS = (REPO_ROOT / "src" / "repro",)

#: JSON sinks whose argument must be a stamped document (invariant 1).
JSON_SINKS = ("json_text", "_print_json")
#: Call shapes that produce stamped documents.
DOCUMENT_FUNCTIONS = ("stamped",)
DOCUMENT_SUFFIXES = ("_document",)
DOCUMENT_METHODS = ("document", "to_json_dict", "stamped")
#: The one blessed pass-through wrapper for invariant 1.
SINK_WRAPPERS = ("_print_json",)

#: Diagnostic code shape (invariant 4).
CODE_PATTERN = re.compile(r"^IFA[0-9]{3}\Z")


def python_files(paths: Tuple[Path, ...]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _call_name(node: ast.AST) -> str:
    """The bare function name of a call target (``''`` when not a call)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_document_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in DOCUMENT_FUNCTIONS or func.id.endswith(
            DOCUMENT_SUFFIXES
        )
    if isinstance(func, ast.Attribute):
        return func.attr in DOCUMENT_METHODS or func.attr.endswith(
            DOCUMENT_SUFFIXES
        )
    return False


def _document_names(function: ast.AST) -> set:
    """Local names bound (anywhere in ``function``) to a document call."""
    names = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and _is_document_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if _is_document_call(node.value) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
    return names


def check_stamped_json(tree: ast.Module, relpath: str) -> List[str]:
    """Invariant 1: JSON sink arguments must be stamped documents."""
    failures = []
    functions = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # Function scopes first: ast.walk(tree) descends into function bodies,
    # so the module scope must only pick up calls no function claimed.
    scopes = [(fn, fn.name, _document_names(fn)) for fn in functions] + [
        (tree, "<module>", set())
    ]
    seen = set()
    for scope, scope_name, documents in scopes:
        for node in ast.walk(scope):
            if scope is tree and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # handled by the per-function scopes
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) not in JSON_SINKS:
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            if scope_name in SINK_WRAPPERS:
                continue  # the wrapper forwards its parameter by design
            if not node.args:
                continue
            argument = node.args[0]
            if _is_document_call(argument):
                continue
            if isinstance(argument, ast.Name) and argument.id in documents:
                continue
            failures.append(
                f"{relpath}:{node.lineno}: argument of "
                f"{_call_name(node.func)}() is not a stamped document "
                "(build it with stamped(), a *_document() helper, "
                ".document() or .to_json_dict())"
            )
    return failures


def check_no_global_universe(tree: ast.Module, relpath: str) -> List[str]:
    """Invariant 2: no module-scope or default-argument ``FactUniverse()``."""
    failures = []

    def is_universe_call(node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and _call_name(node.func) == (
            "FactUniverse"
        )

    for node in tree.body:  # module scope only — locals are fine
        values = []
        if isinstance(node, ast.Assign):
            values.append(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            values.append(node.value)
        for value in values:
            for sub in ast.walk(value):
                if is_universe_call(sub):
                    failures.append(
                        f"{relpath}:{sub.lineno}: FactUniverse() instantiated "
                        "at module scope — interner state must never be "
                        "global"
                    )
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            for sub in ast.walk(default):
                if is_universe_call(sub):
                    failures.append(
                        f"{relpath}:{sub.lineno}: FactUniverse() as a "
                        f"default argument of {node.name}() — the instance "
                        "would be shared across calls"
                    )
    return failures


def check_stage_option_fields(tree: ast.Module, relpath: str) -> List[str]:
    """Invariant 3: cacheable ``Stage(...)`` calls declare option_fields."""
    failures = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or _call_name(node.func) != "Stage":
            continue
        name = ""
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                name = node.args[0].value
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        cacheable = keywords.get("cacheable")
        if isinstance(cacheable, ast.Constant) and cacheable.value is False:
            continue
        if name == "parse":
            continue  # keyed by the source digest alone, by design
        if len(node.args) >= 4 or "option_fields" in keywords:
            continue
        failures.append(
            f"{relpath}:{node.lineno}: Stage({name!r}, ...) is cacheable but "
            "declares no option_fields — its cache key would ignore the "
            "analysis options"
        )
    return failures


def collect_diagnostic_codes(
    tree: ast.Module, relpath: str
) -> List[Tuple[str, str]]:
    """All ``NAME = "IFAnnn"`` assignments as ``(code, location)`` pairs."""
    codes = []
    for node in ast.walk(tree):
        targets: List[ast.AST] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not isinstance(value, ast.Constant):
            continue
        if not isinstance(value.value, str):
            continue
        if not CODE_PATTERN.match(value.value):
            continue
        if any(isinstance(target, ast.Name) for target in targets):
            codes.append((value.value, f"{relpath}:{node.lineno}"))
    return codes


def check_tree(paths: Tuple[Path, ...]) -> List[str]:
    failures = []
    codes: dict = {}
    for path in python_files(paths):
        try:
            relpath = str(path.relative_to(REPO_ROOT))
        except ValueError:
            relpath = str(path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as error:
            failures.append(f"{relpath}: syntax error: {error}")
            continue
        failures.extend(check_stamped_json(tree, relpath))
        failures.extend(check_no_global_universe(tree, relpath))
        failures.extend(check_stage_option_fields(tree, relpath))
        for code, location in collect_diagnostic_codes(tree, relpath):
            codes.setdefault(code, []).append(location)
    for code in sorted(codes):
        locations = codes[code]
        if len(locations) > 1:
            failures.append(
                f"diagnostic code {code!r} assigned {len(locations)} times "
                f"({', '.join(locations)}) — codes must be registered "
                "exactly once"
            )
    return failures


def main(argv: List[str]) -> int:
    paths = (
        tuple(Path(arg).resolve() for arg in argv[1:])
        if len(argv) > 1
        else DEFAULT_PATHS
    )
    failures = check_tree(paths)
    for failure in failures:
        print(f"invariant check: {failure}", file=sys.stderr)
    if failures:
        print(
            f"invariant check: {len(failures)} violation(s)", file=sys.stderr
        )
        return 1
    count = sum(1 for _ in python_files(paths))
    print(
        f"invariant check: {count} files OK (stamped JSON sinks, no global "
        "interner state, stage cache keys declared, diagnostic codes unique)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
