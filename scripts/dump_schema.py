#!/usr/bin/env python
"""Dump or gate the ``vhdl-ifa/v1`` JSON document schema.

The authoritative schema is :func:`repro.pipeline.render.schema_v1`; the
committed copy is ``docs/schema_v1.json``.  ``--check`` fails (exit 1) when
the two drift, which makes every contract change an explicit, reviewed diff,
and exits 2 when the committed file cannot be read at all (missing or
unreadable is an environment problem, not a drift); ``--write`` refreshes
the committed copy after an intentional change.

Run via ``make schema`` (check) or
``PYTHONPATH=src python scripts/dump_schema.py --write docs/schema_v1.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.pipeline.render import schema_v1  # noqa: E402


def schema_text() -> str:
    return json.dumps(schema_v1(), indent=2, sort_keys=True) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--check", metavar="FILE", help="fail when FILE drifts from the live schema"
    )
    group.add_argument(
        "--write", metavar="FILE", help="(re)write FILE with the live schema"
    )
    args = parser.parse_args()

    text = schema_text()
    if args.write:
        Path(args.write).write_text(text, encoding="utf-8")
        print(f"schema: wrote {args.write}")
        return 0

    path = Path(args.check)
    try:
        committed = path.read_text(encoding="utf-8")
    except OSError as error:
        # distinct from drift (1): the committed file is absent or unreadable
        print(f"schema check: cannot read {path}: {error}", file=sys.stderr)
        return 2
    if committed != text:
        print(
            f"schema check: {path} drifted from repro.pipeline.render.schema_v1();\n"
            f"  regenerate with: PYTHONPATH=src python scripts/dump_schema.py "
            f"--write {path}",
            file=sys.stderr,
        )
        return 1
    print(f"schema check: {path} matches the live v1 schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
