#!/usr/bin/env python
"""A short end-to-end load smoke of the pooled serve mode (CI-sized).

Starts a worker-pool :class:`AnalysisServer` on an ephemeral port over a
temporary shared cache directory, then drives it the way a small multi-
tenant burst would:

1. concurrent clients analysing distinct entities (pool parallelism);
2. a wave of *identical* concurrent requests (single-flight dedup);
3. a request for a missing file (structured 400, no worker casualties);
4. a ``/healthz`` + ``/metrics`` scrape, asserting the counters reflect
   what just happened (dedup hits recorded, nothing shed, no restarts,
   every response stamped ``vhdl-ifa/v1``).

Exits non-zero with a diagnostic on any violated expectation.  Runtime is
a few seconds — cheap enough for the CI ``check`` job.  Run directly::

    PYTHONPATH=src python scripts/load_smoke.py
"""

from __future__ import annotations

import json
import http.client
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.pipeline.serve import AnalysisServer, ServerThread  # noqa: E402
from repro.workloads import multi_entity_program  # noqa: E402
from repro.workspace import Workspace  # noqa: E402

CLIENTS = 4
WORKERS = 2
ENTITY_SHAPE = (4, 16)


def _request(port, method, path, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    body = None if payload is None else json.dumps(payload)
    connection.request(method, path, body=body)
    response = connection.getresponse()
    return response.status, json.loads(response.read().decode("utf-8"))


def main() -> int:
    failures: list[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            failures.append(message)

    with tempfile.TemporaryDirectory() as scratch:
        design = Path(scratch) / "designs.vhd"
        design.write_text(
            multi_entity_program(CLIENTS, *ENTITY_SHAPE), encoding="utf-8"
        )
        workspace = Workspace(cache_dir=str(Path(scratch) / "cache"))
        with ServerThread(
            AnalysisServer(
                port=0, workspace=workspace, workers=WORKERS, timeout=120.0
            )
        ) as server:
            # Phase 1: concurrent distinct-entity clients.
            outcomes: list[tuple[int, dict]] = [None] * CLIENTS  # type: ignore

            def client(slot: int) -> None:
                outcomes[slot] = _request(
                    server.port,
                    "POST",
                    "/analyze",
                    {"file": str(design), "entity": f"chain_{slot}"},
                )

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for slot, (status, document) in enumerate(outcomes):
                expect(status == 200, f"client {slot}: status {status}")
                expect(
                    document.get("schema") == "vhdl-ifa/v1",
                    f"client {slot}: missing schema stamp",
                )

            # Phase 2: identical concurrent requests single-flight.
            dedup_payload = {"file": str(design), "entity": "chain_0"}
            waves: list[int] = []

            def identical() -> None:
                status, _ = _request(server.port, "POST", "/analyze", dedup_payload)
                waves.append(status)

            threads = [threading.Thread(target=identical) for _ in range(CLIENTS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            expect(
                waves == [200] * CLIENTS,
                f"identical wave statuses {waves}",
            )

            # Phase 3: a bad request is a structured 400, not a casualty.
            status, document = _request(
                server.port, "POST", "/analyze", {"file": "/nonexistent.vhd"}
            )
            expect(status == 400, f"missing file: status {status}")
            expect("error" in document, "missing file: no error field")

            # Phase 4: health and metrics reflect the run.
            status, health = _request(server.port, "GET", "/healthz")
            expect(status == 200, f"healthz status {status}")
            expect(health.get("status") == "ok", f"healthz body {health}")
            expect(
                health.get("workers", {}).get("alive") == WORKERS,
                f"healthz workers {health.get('workers')}",
            )
            status, metrics = _request(server.port, "GET", "/metrics")
            expect(status == 200, f"metrics status {status}")
            expect(metrics.get("mode") == "pool", f"metrics mode {metrics.get('mode')}")
            expect(metrics.get("in_flight") == 0, f"in_flight {metrics.get('in_flight')}")
            expect(metrics.get("shed") == 0, f"shed {metrics.get('shed')}")
            expect(
                metrics.get("worker_restarts") == 0,
                f"worker_restarts {metrics.get('worker_restarts')}",
            )
            expect(
                metrics.get("latency", {}).get("request", {}).get("count", 0) > 0,
                "no request latencies recorded",
            )

    for failure in failures:
        print(f"load smoke: {failure}", file=sys.stderr)
    if failures:
        print(f"load smoke: {len(failures)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"load smoke: OK — {CLIENTS} concurrent clients + dedup wave over "
        f"{WORKERS} workers, clean metrics"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
