#!/usr/bin/env python
"""Gate: the committed contract corpus verifies green against live servers.

Loads every recorded interaction from ``tests/contract/pacts`` and replays
it through the real serve stack — once against an in-process (inline)
server and once against a worker-pool server — plus the four JSON CLI
subcommands.  Additive field drift is logged and tolerated; any breaking
divergence (removed field, type or value change, status/exit-code change)
fails the gate with a field-level JSON-pointer diff and the v2 bump
procedure.

Run via ``make contracts``; equivalent to
``PYTHONPATH=src python -m repro.cli contract verify --mode both``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.contract import Corpus, verify_corpus  # noqa: E402

PACTS_DIR = REPO_ROOT / "tests" / "contract" / "pacts"


def main() -> int:
    try:
        corpus = Corpus.load(PACTS_DIR)
    except (FileNotFoundError, ValueError) as error:
        print(f"contracts: cannot load corpus: {error}", file=sys.stderr)
        return 1
    print(f"contracts: loaded {len(corpus)} interaction(s) from {PACTS_DIR}")

    failed = False
    for mode in ("inline", "pool"):
        # the verifier logs its own summary line plus any additive drift
        report = verify_corpus(corpus, mode=mode, log=print)
        for result in report.failures:
            print(result.describe(), file=sys.stderr)
        failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
