#!/usr/bin/env python
"""Docs consistency gate (no dependencies beyond the stdlib).

Checks eight things, and exits non-zero listing every failure:

1. Internal markdown links in ``README.md`` and ``docs/*.md`` resolve —
   every relative link target (minus any ``#anchor``) names an existing
   file or directory, relative to the linking document.
2. ``docs/cli.md`` and ``src/repro/cli.py`` agree on the subcommand set:
   every ``## `name ...``` heading in the CLI reference names a real
   ``vhdl-ifa`` subcommand, and every subcommand registered in ``cli.py``
   has a heading in the reference.
3. ``docs/api.md`` and ``src/repro/security/policy_file.py`` agree on the
   policy-file key set: the table between the ``policy-file-keys`` markers
   in the docs must list exactly the ``POLICY_KEYS`` of the loader.
4. ``docs/serve.md`` documents every flag the ``serve`` subparser
   registers in ``cli.py`` (the ops guide must not fall behind the CLI).
5. ``docs/lint.md`` catalogues every lint rule code registered in
   ``src/repro/analysis/lint/rules.py`` — a rule without a catalog entry
   (or a catalog entry for a removed rule) fails the gate.
6. ``docs/performance.md`` mentions every benchmark phase defined in
   ``benchmarks/bench_scaling.py`` — a phase the performance guide does
   not place in its methodology fails the gate, as does a documented
   phase the benchmark module no longer defines.
7. The contract guide ``docs/contracts.md`` exists, and every route the
   server dispatches (the ``"/path"`` literals in ``pipeline/serve.py``)
   is exercised by at least one recorded interaction in
   ``tests/contract/pacts`` — a new endpoint without a recorded contract
   fails the gate.
8. The hierarchy guide ``docs/hierarchy.md`` exists and mentions every
   public name exported from ``src/repro/hier/__init__.py`` (its
   ``__all__``) — a new hierarchy API without documentation fails the
   gate.

Run it directly (``python scripts/check_docs.py``) or via ``make docs``;
CI runs it as the ``docs`` job.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — target captured; images (![...]) match too, harmlessly.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: ## `analyze FILE` — the subcommand is the first word inside the backticks.
_CLI_HEADING = re.compile(r"^#{2,3}\s+`([a-z][a-z-]*)", re.MULTILINE)
#: sub.add_parser("analyze", ...) — only the top-level subparser object.
_ADD_PARSER = re.compile(r"\bsub\.add_parser\(\s*[\"']([a-z-]+)[\"']")
#: POLICY_KEYS = ("name", ...) — the policy-file loader's key tuple.
_POLICY_KEYS = re.compile(r"^POLICY_KEYS\s*=\s*\(([^)]*)\)", re.MULTILINE)
#: | `key` | ... — the first backticked cell of a table row.
_KEY_ROW = re.compile(r"^\|\s*`([a-z_]+)`", re.MULTILINE)
#: The fenced region of docs/api.md holding the policy-key table.
_KEY_MARKERS = ("<!-- policy-file-keys:start -->", "<!-- policy-file-keys:end -->")


def _is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:"))


def check_links(documents: list[Path]) -> list[str]:
    failures = []
    for document in documents:
        text = document.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _is_external(target):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure #anchor link within the same file
                continue
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(
                    f"{document.relative_to(REPO_ROOT)}: broken link "
                    f"{target!r} (no such file {path_part!r})"
                )
    return failures


def check_cli_reference() -> list[str]:
    reference = (REPO_ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
    cli_source = (REPO_ROOT / "src" / "repro" / "cli.py").read_text(
        encoding="utf-8"
    )
    documented = set(_CLI_HEADING.findall(reference))
    registered = set(_ADD_PARSER.findall(cli_source))
    failures = []
    for name in sorted(documented - registered):
        failures.append(
            f"docs/cli.md documents subcommand {name!r} but cli.py does not "
            "register it"
        )
    for name in sorted(registered - documented):
        failures.append(
            f"cli.py registers subcommand {name!r} but docs/cli.md has no "
            f"heading for it"
        )
    if not documented:
        failures.append("docs/cli.md: found no `## `subcommand`` headings")
    return failures


def check_policy_keys() -> list[str]:
    """``docs/api.md`` must document exactly the loader's ``POLICY_KEYS``."""
    api_doc = REPO_ROOT / "docs" / "api.md"
    loader = REPO_ROOT / "src" / "repro" / "security" / "policy_file.py"
    failures = []
    match = _POLICY_KEYS.search(loader.read_text(encoding="utf-8"))
    if match is None:
        return [f"{loader.relative_to(REPO_ROOT)}: found no POLICY_KEYS tuple"]
    declared = set(re.findall(r"[\"']([a-z_]+)[\"']", match.group(1)))
    text = api_doc.read_text(encoding="utf-8")
    start, end = _KEY_MARKERS
    if start not in text or end not in text:
        return [
            f"docs/api.md: missing the {start} / {end} markers around the "
            "policy-file key table"
        ]
    table = text.split(start, 1)[1].split(end, 1)[0]
    documented = set(_KEY_ROW.findall(table))
    for key in sorted(documented - declared):
        failures.append(
            f"docs/api.md documents policy-file key {key!r} but "
            "security/policy_file.py POLICY_KEYS does not declare it"
        )
    for key in sorted(declared - documented):
        failures.append(
            f"security/policy_file.py declares policy-file key {key!r} but "
            "the docs/api.md key table does not document it"
        )
    return failures


#: serve_p.add_argument("--workers", ...) — flags registered on the serve
#: subparser (the block between its add_parser and set_defaults calls).
_SERVE_FLAG = re.compile(r"add_argument\(\s*[\"'](--[a-z-]+)[\"']")


def check_serve_flags() -> list[str]:
    """``docs/serve.md`` must document every ``serve`` subparser flag."""
    cli_source = (REPO_ROOT / "src" / "repro" / "cli.py").read_text(
        encoding="utf-8"
    )
    match = re.search(
        r"serve_p = sub\.add_parser(.*?)serve_p\.set_defaults", cli_source, re.DOTALL
    )
    if match is None:
        return ["cli.py: found no serve subparser block"]
    registered = set(_SERVE_FLAG.findall(match.group(1)))
    guide = (REPO_ROOT / "docs" / "serve.md").read_text(encoding="utf-8")
    failures = []
    for flag in sorted(registered):
        if f"`{flag}" not in guide:
            failures.append(
                f"cli.py registers serve flag {flag!r} but docs/serve.md "
                "does not document it"
            )
    if not registered:
        failures.append("cli.py: the serve subparser registers no flags")
    return failures


#: code = "IFA101" — a lint rule's stable diagnostic code.
_LINT_CODE = re.compile(r"^\s*code\s*=\s*[\"'](IFA[0-9]{3})[\"']", re.MULTILINE)


def check_lint_catalog() -> list[str]:
    """``docs/lint.md`` must catalogue every registered lint rule code."""
    rules_source = (
        REPO_ROOT / "src" / "repro" / "analysis" / "lint" / "rules.py"
    )
    catalog = REPO_ROOT / "docs" / "lint.md"
    if not catalog.exists():
        return ["docs/lint.md: the lint rule catalog is missing"]
    registered = set(_LINT_CODE.findall(rules_source.read_text(encoding="utf-8")))
    if not registered:
        return [
            f"{rules_source.relative_to(REPO_ROOT)}: found no "
            "code = \"IFAnnn\" rule registrations"
        ]
    text = catalog.read_text(encoding="utf-8")
    documented = set(re.findall(r"`(IFA[0-9]{3})`", text))
    # Only table rows count as catalog *entries* — prose may legitimately
    # mention the flow checker's IFA001/IFA002.
    entries = set(re.findall(r"^\|\s*`(IFA[0-9]{3})`", text, re.MULTILINE))
    failures = []
    for code in sorted(registered - documented):
        failures.append(
            f"lint rule {code!r} is registered in rules.py but docs/lint.md "
            "does not catalogue it"
        )
    for code in sorted(entries - registered):
        failures.append(
            f"docs/lint.md catalogues {code!r} but rules.py registers no "
            "such rule"
        )
    return failures


#: def test_cold_parse(...) — a benchmark phase in bench_scaling.py.
_BENCH_PHASE = re.compile(r"^def (test_[a-z0-9_]+)", re.MULTILINE)


def check_performance_doc() -> list[str]:
    """``docs/performance.md`` must place every benchmark phase."""
    guide = REPO_ROOT / "docs" / "performance.md"
    bench = REPO_ROOT / "benchmarks" / "bench_scaling.py"
    if not guide.exists():
        return ["docs/performance.md: the performance guide is missing"]
    defined = set(_BENCH_PHASE.findall(bench.read_text(encoding="utf-8")))
    if not defined:
        return [
            f"{bench.relative_to(REPO_ROOT)}: found no test_* benchmark "
            "phase definitions"
        ]
    text = guide.read_text(encoding="utf-8")
    mentioned = set(re.findall(r"`(test_[a-z0-9_]+)`", text))
    failures = []
    for phase in sorted(defined - mentioned):
        failures.append(
            f"benchmark phase {phase!r} is defined in bench_scaling.py but "
            "docs/performance.md does not mention it"
        )
    for phase in sorted(mentioned - defined):
        failures.append(
            f"docs/performance.md mentions benchmark phase {phase!r} but "
            "bench_scaling.py does not define it"
        )
    return failures


#: "/analyze" — a route literal in pipeline/serve.py's dispatch tables.
_SERVE_ROUTE = re.compile(r"[\"'](/[a-z]+)[\"']")


def check_contract_corpus() -> list[str]:
    """Every serve route has a recorded contract; the guide exists."""
    import json

    failures = []
    if not (REPO_ROOT / "docs" / "contracts.md").exists():
        failures.append("docs/contracts.md: the contract guide is missing")
    serve_source = (
        REPO_ROOT / "src" / "repro" / "pipeline" / "serve.py"
    ).read_text(encoding="utf-8")
    routes = set(_SERVE_ROUTE.findall(serve_source))
    if not routes:
        return failures + ["pipeline/serve.py: found no route literals"]
    pacts = sorted((REPO_ROOT / "tests" / "contract" / "pacts").glob("*.json"))
    if not pacts:
        return failures + [
            "tests/contract/pacts: no recorded interactions; record the "
            "corpus with: PYTHONPATH=src python -m repro.cli contract record"
        ]
    recorded = set()
    for path in pacts:
        request = json.loads(path.read_text(encoding="utf-8"))["request"]
        if request.get("kind") == "http":
            recorded.add(request["path"])
    for route in sorted(routes - recorded):
        failures.append(
            f"serve route {route!r} has no recorded interaction in "
            "tests/contract/pacts — record one (vhdl-ifa contract record) "
            "so the contract gate covers it"
        )
    return failures


#: __all__ = [...] — the hierarchy package's public surface.
_HIER_ALL = re.compile(r"^__all__\s*=\s*[\[(]([^\])]*)[\])]", re.MULTILINE)


def check_hierarchy_doc() -> list[str]:
    """``docs/hierarchy.md`` must mention every ``repro.hier`` export."""
    guide = REPO_ROOT / "docs" / "hierarchy.md"
    package = REPO_ROOT / "src" / "repro" / "hier" / "__init__.py"
    if not guide.exists():
        return ["docs/hierarchy.md: the hierarchy guide is missing"]
    match = _HIER_ALL.search(package.read_text(encoding="utf-8"))
    if match is None:
        return [f"{package.relative_to(REPO_ROOT)}: found no __all__ list"]
    exported = set(re.findall(r"[\"']([A-Za-z_]+)[\"']", match.group(1)))
    if not exported:
        return [f"{package.relative_to(REPO_ROOT)}: __all__ is empty"]
    text = guide.read_text(encoding="utf-8")
    failures = []
    for name in sorted(exported):
        if f"`{name}`" not in text:
            failures.append(
                f"repro/hier exports {name!r} but docs/hierarchy.md does "
                "not document it"
            )
    return failures


def main() -> int:
    documents = [REPO_ROOT / "README.md"]
    docs_dir = REPO_ROOT / "docs"
    documents.extend(sorted(docs_dir.glob("*.md")))
    failures = check_links(documents)
    failures.extend(check_cli_reference())
    failures.extend(check_policy_keys())
    failures.extend(check_serve_flags())
    failures.extend(check_lint_catalog())
    failures.extend(check_performance_doc())
    failures.extend(check_contract_corpus())
    failures.extend(check_hierarchy_doc())
    for failure in failures:
        print(f"docs check: {failure}", file=sys.stderr)
    if failures:
        print(f"docs check: {len(failures)} problem(s)", file=sys.stderr)
        return 1
    print(
        f"docs check: {len(documents)} documents OK "
        "(links resolve, CLI reference matches cli.py, policy keys match "
        "policy_file.py, serve flags documented in serve.md, lint catalog "
        "matches rules.py, performance guide covers bench_scaling.py, "
        "contract corpus covers every serve route, hierarchy guide covers "
        "the repro.hier exports)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
