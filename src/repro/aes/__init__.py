"""AES-128 workload for the evaluation (Section 6).

The paper analyses the NSA AES test implementation [17]; that VHDL code is not
publicly available, so this package generates an equivalent VHDL1 workload:

* :mod:`repro.aes.reference` — a pure-Python AES-128 implementation (S-box,
  ShiftRows, MixColumns, AddRoundKey, key schedule, full encryption) used as
  ground truth when simulating the generated hardware descriptions;
* :mod:`repro.aes.generator` — VHDL1 source generators for the individual
  round transformations, written the way the paper describes the analysed
  programs: loops unrolled, constants substituted and temporary variables
  reused across rows (the reuse is what defeats Kemmerer's flow-insensitive
  method and showcases the paper's analysis in Figure 5).
"""

from repro.aes.reference import (
    SBOX,
    INV_SBOX,
    add_round_key,
    encrypt_block,
    expand_key,
    mix_columns,
    shift_rows,
    sub_bytes,
    xtime,
)
from repro.aes.generator import (
    add_round_key_bytewise_source,
    add_round_key_source,
    key_schedule_step_source,
    mix_column_source,
    shift_rows_entity_source,
    shift_rows_paper_source,
    sub_bytes_source,
    aes_round_source,
)

__all__ = [
    "SBOX",
    "INV_SBOX",
    "add_round_key",
    "encrypt_block",
    "expand_key",
    "mix_columns",
    "shift_rows",
    "sub_bytes",
    "xtime",
    "add_round_key_bytewise_source",
    "add_round_key_source",
    "key_schedule_step_source",
    "mix_column_source",
    "shift_rows_entity_source",
    "shift_rows_paper_source",
    "sub_bytes_source",
    "aes_round_source",
]
