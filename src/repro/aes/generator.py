"""Generators producing VHDL1 source text for the AES evaluation workload.

The paper's Section 6 analyses the NSA AES-128 test implementation after
pre-processing: "the function is preprocessed by unrolling the loops and
replacing constants with their values", and "the analysed programs use several
temporary variables … overwritten and reused for each input state".  The
generators below produce code in exactly that style so the evaluation can be
regenerated:

* :func:`shift_rows_paper_source` — the ShiftRows workload of Figure 5: twelve
  byte variables ``a_1_0 … a_3_3`` (the three shifted rows), rotated in place
  through a *shared* temporary variable;
* :func:`shift_rows_entity_source` — ShiftRows over a 128-bit state port, used
  for simulating the transformation against the Python reference;
* :func:`add_round_key_source` — byte-wise XOR with the round key through a
  reused temporary;
* :func:`sub_bytes_source` — an S-box lookup written as an unrolled
  ``if``/``elsif`` chain (width parameterisable; the default 4-bit box keeps
  the generated chain small while exercising the same code path as the 8-bit
  table);
* :func:`mix_column_source` — MixColumns on one column, with ``xtime``
  expressed through slices, concatenation and conditional reduction;
* :func:`key_schedule_step_source` — one (simplified) key-schedule step;
* :func:`aes_round_source` — a three-process pipeline (AddRoundKey →
  ShiftRows → output stage) communicating through internal signals, used to
  exercise the cross-process parts of the analysis.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Reduced 4-bit substitution box used by the generated SubBytes workload (the
#: S-box of the "mini-AES" teaching cipher).  The full 8-bit box is available
#: through ``sbox_bits=8``.
REDUCED_SBOX: List[int] = [
    0xE, 0x4, 0xD, 0x1, 0x2, 0xF, 0xB, 0x8,
    0x3, 0xA, 0x6, 0xC, 0x5, 0x9, 0x0, 0x7,
]


def _byte_slice(byte_index: int, width: int = 128) -> str:
    """The ``downto`` slice of byte ``byte_index`` in a ``width``-bit port."""
    high = width - 1 - 8 * byte_index
    low = width - 8 - 8 * byte_index
    return f"({high} downto {low})"


def _bits(value: int, width: int) -> str:
    """A double-quoted VHDL bit-string literal for ``value``."""
    return '"' + format(value, f"0{width}b") + '"'


# ---------------------------------------------------------------------------
# ShiftRows — the Figure 5 workload
# ---------------------------------------------------------------------------


def shift_rows_paper_source() -> str:
    """ShiftRows exactly as the paper's evaluation analyses it.

    Twelve byte variables ``a_r_c`` (rows 1–3, the rows that are shifted) are
    rotated in place; a single temporary ``tmp`` is reused for all three rows.
    The loops are already unrolled and all constants substituted.  Analysing
    this program with Kemmerer's method merges the three rows (every element
    appears to flow to every other element); the paper's analysis keeps each
    row's permutation separate.
    """
    variables = [
        f"    variable a_{row}_{column} : std_logic_vector(7 downto 0);"
        for row in range(1, 4)
        for column in range(4)
    ]
    body = [
        "    -- row 1: rotate left by one position",
        "    tmp := a_1_0;",
        "    a_1_0 := a_1_1;",
        "    a_1_1 := a_1_2;",
        "    a_1_2 := a_1_3;",
        "    a_1_3 := tmp;",
        "    -- row 2: rotate left by two positions",
        "    tmp := a_2_0;",
        "    a_2_0 := a_2_2;",
        "    a_2_2 := tmp;",
        "    tmp := a_2_1;",
        "    a_2_1 := a_2_3;",
        "    a_2_3 := tmp;",
        "    -- row 3: rotate left by three positions",
        "    tmp := a_3_3;",
        "    a_3_3 := a_3_2;",
        "    a_3_2 := a_3_1;",
        "    a_3_1 := a_3_0;",
        "    a_3_0 := tmp;",
    ]
    lines = [
        "entity shift_rows_rows is",
        "end shift_rows_rows;",
        "",
        "architecture unrolled of shift_rows_rows is",
        "begin",
        "  shift : process",
        *variables,
        "    variable tmp : std_logic_vector(7 downto 0);",
        "  begin",
        *body,
        "  end process shift;",
        "end unrolled;",
    ]
    return "\n".join(lines) + "\n"


def shift_rows_row_nodes() -> Dict[int, List[str]]:
    """The twelve row-element node names of :func:`shift_rows_paper_source`."""
    return {
        row: [f"a_{row}_{column}" for column in range(4)] for row in range(1, 4)
    }


def shift_rows_expected_sources() -> Dict[str, str]:
    """Ground truth for ShiftRows: which element each element receives.

    ``expected[target] == source`` states that after the transformation the
    value of ``target`` is the pre-transformation value of ``source`` — the
    single true information flow into ``target``.
    """
    expected: Dict[str, str] = {}
    for row in range(1, 4):
        for column in range(4):
            source_column = (column + row) % 4
            expected[f"a_{row}_{column}"] = f"a_{row}_{source_column}"
    return expected


def shift_rows_entity_source() -> str:
    """ShiftRows over a 128-bit state port (used for simulation tests).

    The byte in row ``r``, column ``c`` sits at byte index ``4c + r`` of the
    state (column-major order, as in :mod:`repro.aes.reference`).
    """
    assignments: List[str] = []
    for row in range(4):
        for column in range(4):
            source_column = (column + row) % 4
            destination = 4 * column + row
            source = 4 * source_column + row
            assignments.append(
                f"    state_o{_byte_slice(destination)} <= state_i{_byte_slice(source)};"
            )
    lines = [
        "entity shift_rows is",
        "  port( state_i : in std_logic_vector(127 downto 0);",
        "        state_o : out std_logic_vector(127 downto 0) );",
        "end shift_rows;",
        "",
        "architecture unrolled of shift_rows is",
        "begin",
        "  shift : process",
        "  begin",
        *assignments,
        "    wait on state_i;",
        "  end process shift;",
        "end unrolled;",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# AddRoundKey
# ---------------------------------------------------------------------------


def add_round_key_source(num_bytes: int = 16) -> str:
    """Byte-wise AddRoundKey with a single reused temporary variable."""
    body: List[str] = []
    for index in range(num_bytes):
        byte = _byte_slice(index, 8 * num_bytes)
        body.append(f"    t := state_i{byte} xor key_i{byte};")
        body.append(f"    state_o{byte} <= t;")
    width = 8 * num_bytes - 1
    lines = [
        "entity add_round_key is",
        f"  port( state_i : in std_logic_vector({width} downto 0);",
        f"        key_i   : in std_logic_vector({width} downto 0);",
        f"        state_o : out std_logic_vector({width} downto 0) );",
        "end add_round_key;",
        "",
        "architecture unrolled of add_round_key is",
        "begin",
        "  xor_state : process",
        "    variable t : std_logic_vector(7 downto 0);",
        "  begin",
        *body,
        "    wait on state_i, key_i;",
        "  end process xor_state;",
        "end add_round_key;",
    ]
    return "\n".join(lines) + "\n"


def add_round_key_bytewise_source(num_bytes: int = 16) -> str:
    """AddRoundKey over *individual byte ports*, with one shared temporary.

    This is the granularity at which the paper's evaluation observes the
    precision gap: each output byte truly depends only on its own state and
    key bytes, but because every byte is computed through the same temporary
    variable ``t``, Kemmerer's flow-insensitive closure connects every input
    byte to every output byte.  The paper's analysis keeps the bytes separate.
    """
    ports: List[str] = []
    for index in range(num_bytes):
        ports.append(f"        state_{index} : in std_logic_vector(7 downto 0);")
    for index in range(num_bytes):
        ports.append(f"        key_{index} : in std_logic_vector(7 downto 0);")
    for index in range(num_bytes):
        terminator = ";" if index < num_bytes - 1 else " );"
        ports.append(
            f"        out_{index} : out std_logic_vector(7 downto 0){terminator}"
        )
    ports[0] = ports[0].replace("        ", "  port( ", 1)

    body: List[str] = []
    for index in range(num_bytes):
        body.append(f"    t := state_{index} xor key_{index};")
        body.append(f"    out_{index} <= t;")
    sensitivity = ", ".join(
        [f"state_{index}" for index in range(num_bytes)]
        + [f"key_{index}" for index in range(num_bytes)]
    )
    lines = [
        "entity add_round_key_bytes is",
        *ports,
        "end add_round_key_bytes;",
        "",
        "architecture unrolled of add_round_key_bytes is",
        "begin",
        "  xor_bytes : process",
        "    variable t : std_logic_vector(7 downto 0);",
        "  begin",
        *body,
        f"    wait on {sensitivity};",
        "  end process xor_bytes;",
        "end add_round_key_bytes;",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# SubBytes
# ---------------------------------------------------------------------------


def sub_bytes_source(sbox_bits: int = 4, sbox: Sequence[int] = None) -> str:
    """An S-box lookup as an unrolled ``if``/``elsif`` chain.

    ``sbox_bits`` selects the lookup width (4 by default, 8 for the real AES
    box); ``sbox`` overrides the table (defaults to :data:`REDUCED_SBOX` for 4
    bits and the FIPS-197 box for 8 bits).
    """
    if sbox is None:
        if sbox_bits == 4:
            sbox = REDUCED_SBOX
        else:
            from repro.aes.reference import SBOX

            sbox = SBOX
    size = 1 << sbox_bits
    if len(sbox) != size:
        raise ValueError(f"S-box must have {size} entries for {sbox_bits}-bit lookups")

    branches: List[str] = []
    for value in range(size):
        keyword = "if" if value == 0 else "elsif"
        branches.append(
            f"    {keyword} nibble_i = {_bits(value, sbox_bits)} then"
        )
        branches.append(f"      t := {_bits(sbox[value], sbox_bits)};")
    branches.append("    else")
    branches.append(f"      t := {_bits(0, sbox_bits)};")
    branches.append("    end if;")

    high = sbox_bits - 1
    lines = [
        "entity sub_bytes is",
        f"  port( nibble_i : in std_logic_vector({high} downto 0);",
        f"        nibble_o : out std_logic_vector({high} downto 0) );",
        "end sub_bytes;",
        "",
        "architecture unrolled of sub_bytes is",
        "begin",
        "  lookup : process",
        f"    variable t : std_logic_vector({high} downto 0);",
        "  begin",
        *branches,
        "    nibble_o <= t;",
        "    wait on nibble_i;",
        "  end process lookup;",
        "end sub_bytes;",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# MixColumns (single column)
# ---------------------------------------------------------------------------


def _xtime_lines(result: str, operand: str) -> List[str]:
    """Emit ``result := xtime(operand)`` using shifts and the AES polynomial."""
    return [
        f"    {result} := {operand}(6 downto 0) & '0';",
        f"    if {operand}(7) = '1' then",
        f"      {result} := {result} xor \"00011011\";",
        "    else",
        "      null;",
        "    end if;",
    ]


def mix_column_source() -> str:
    """MixColumns applied to a single column of four byte ports.

    Each output byte is ``02·c_r ⊕ 03·c_{r+1} ⊕ c_{r+2} ⊕ c_{r+3}``; the
    ``xtime`` helper is unrolled with shared temporaries ``d0 … d3`` holding
    the doubled bytes.
    """
    body: List[str] = []
    for index in range(4):
        body.extend(_xtime_lines(f"d{index}", f"c{index}_i"))
    outputs = [
        "    c0_o <= d0 xor (d1 xor c1_i) xor c2_i xor c3_i;",
        "    c1_o <= c0_i xor d1 xor (d2 xor c2_i) xor c3_i;",
        "    c2_o <= c0_i xor c1_i xor d2 xor (d3 xor c3_i);",
        "    c3_o <= (d0 xor c0_i) xor c1_i xor c2_i xor d3;",
    ]
    ports = []
    for index in range(4):
        ports.append(f"        c{index}_i : in std_logic_vector(7 downto 0);")
    for index in range(4):
        terminator = ";" if index < 3 else " );"
        ports.append(
            f"        c{index}_o : out std_logic_vector(7 downto 0){terminator}"
        )
    ports[0] = ports[0].replace("        ", "  port( ", 1)
    lines = [
        "entity mix_column is",
        *ports,
        "end mix_column;",
        "",
        "architecture unrolled of mix_column is",
        "begin",
        "  mix : process",
        "    variable d0 : std_logic_vector(7 downto 0);",
        "    variable d1 : std_logic_vector(7 downto 0);",
        "    variable d2 : std_logic_vector(7 downto 0);",
        "    variable d3 : std_logic_vector(7 downto 0);",
        "  begin",
        *body,
        *outputs,
        "    wait on c0_i, c1_i, c2_i, c3_i;",
        "  end process mix;",
        "end mix_column;",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Key schedule step (simplified: RotWord + Rcon, no SubWord)
# ---------------------------------------------------------------------------


def key_schedule_step_source(rcon: int = 0x01) -> str:
    """One AES-128 key-schedule step over four 32-bit word ports.

    The step computes ``w4 = w0 ⊕ rot(w3) ⊕ rcon``, ``w5 = w1 ⊕ w4``,
    ``w6 = w2 ⊕ w5`` and ``w7 = w3 ⊕ w6``.  The byte substitution (SubWord) is
    omitted so the generated code stays within VHDL1's operators; the
    information-flow structure (each output word depends on all previous
    words) is unchanged by that simplification.
    """
    rcon_word = _bits(rcon << 24, 32)
    lines = [
        "entity key_schedule_step is",
        "  port( w0_i : in std_logic_vector(31 downto 0);",
        "        w1_i : in std_logic_vector(31 downto 0);",
        "        w2_i : in std_logic_vector(31 downto 0);",
        "        w3_i : in std_logic_vector(31 downto 0);",
        "        w4_o : out std_logic_vector(31 downto 0);",
        "        w5_o : out std_logic_vector(31 downto 0);",
        "        w6_o : out std_logic_vector(31 downto 0);",
        "        w7_o : out std_logic_vector(31 downto 0) );",
        "end key_schedule_step;",
        "",
        "architecture unrolled of key_schedule_step is",
        "begin",
        "  expand : process",
        "    variable rotated : std_logic_vector(31 downto 0);",
        "    variable t4 : std_logic_vector(31 downto 0);",
        "    variable t5 : std_logic_vector(31 downto 0);",
        "    variable t6 : std_logic_vector(31 downto 0);",
        "    variable t7 : std_logic_vector(31 downto 0);",
        "  begin",
        "    rotated := w3_i(23 downto 0) & w3_i(31 downto 24);",
        f"    t4 := w0_i xor rotated xor {rcon_word};",
        "    t5 := w1_i xor t4;",
        "    t6 := w2_i xor t5;",
        "    t7 := w3_i xor t6;",
        "    w4_o <= t4;",
        "    w5_o <= t5;",
        "    w6_o <= t6;",
        "    w7_o <= t7;",
        "    wait on w0_i, w1_i, w2_i, w3_i;",
        "  end process expand;",
        "end key_schedule_step;",
    ]
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Three-stage round pipeline (multi-process workload)
# ---------------------------------------------------------------------------


def aes_round_source() -> str:
    """A three-process pipeline communicating through internal signals.

    Stage 1 adds the round key, stage 2 performs ShiftRows, stage 3 drives the
    output port.  The stages synchronise through the internal signals
    ``after_ark`` and ``after_sr`` — a workload for the cross-process parts of
    the analysis (Table 5's cross-flow relation and Table 8's synchronised
    values rule).
    """
    shift_assignments: List[str] = []
    for row in range(4):
        for column in range(4):
            source_column = (column + row) % 4
            destination = 4 * column + row
            source = 4 * source_column + row
            shift_assignments.append(
                f"    after_sr{_byte_slice(destination)} <= after_ark{_byte_slice(source)};"
            )
    lines = [
        "entity aes_round is",
        "  port( state_i : in std_logic_vector(127 downto 0);",
        "        key_i   : in std_logic_vector(127 downto 0);",
        "        state_o : out std_logic_vector(127 downto 0) );",
        "end aes_round;",
        "",
        "architecture pipelined of aes_round is",
        "  signal after_ark : std_logic_vector(127 downto 0);",
        "  signal after_sr  : std_logic_vector(127 downto 0);",
        "begin",
        "  ark : process",
        "  begin",
        "    after_ark <= state_i xor key_i;",
        "    wait on state_i, key_i;",
        "  end process ark;",
        "",
        "  sr : process",
        "  begin",
        *shift_assignments,
        "    wait on after_ark;",
        "  end process sr;",
        "",
        "  drive : process",
        "  begin",
        "    state_o <= after_sr;",
        "    wait on after_sr;",
        "  end process drive;",
        "end pipelined;",
    ]
    return "\n".join(lines) + "\n"
