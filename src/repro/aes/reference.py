"""Pure-Python reference implementation of AES-128 (FIPS-197).

The state is represented as a list of 16 integers in column-major order, i.e.
``state[4 * c + r]`` is the byte in row ``r`` and column ``c`` — the order in
which the 128-bit input block is consumed.  The implementation favours clarity
over speed; it is the ground truth against which the generated VHDL1
components are simulated, and it backs the FIPS-197 known-answer tests.
"""

from __future__ import annotations

from typing import List, Sequence

State = List[int]
"""Sixteen bytes in column-major order."""


def _build_sbox() -> List[int]:
    """Construct the AES S-box from the finite-field definition."""

    def gf_mul(a: int, b: int) -> int:
        product = 0
        for _ in range(8):
            if b & 1:
                product ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return product

    # multiplicative inverses in GF(2^8)
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break

    sbox = [0] * 256
    for x in range(256):
        b = inverse[x]
        result = 0
        for i in range(8):
            bit = (
                (b >> i)
                ^ (b >> ((i + 4) % 8))
                ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8))
                ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            result |= bit << i
        sbox[x] = result
    return sbox


SBOX: List[int] = _build_sbox()
"""The AES substitution box."""

INV_SBOX: List[int] = [0] * 256
for _index, _value in enumerate(SBOX):
    INV_SBOX[_value] = _index
"""The inverse substitution box."""

RCON: List[int] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]
"""Round constants for the AES-128 key schedule."""


def xtime(byte: int) -> int:
    """Multiplication by ``x`` (i.e. 2) in GF(2^8) with the AES polynomial."""
    byte <<= 1
    if byte & 0x100:
        byte ^= 0x11B
    return byte & 0xFF


def gf_multiply(a: int, b: int) -> int:
    """General multiplication in GF(2^8) (used by MixColumns and tests)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


# ---------------------------------------------------------------------------
# Round transformations
# ---------------------------------------------------------------------------


def sub_bytes(state: Sequence[int]) -> State:
    """Apply the S-box to every byte of the state."""
    return [SBOX[byte] for byte in state]


def shift_rows(state: Sequence[int]) -> State:
    """Cyclically shift row ``r`` left by ``r`` positions.

    Row 0 is unchanged; rows 1, 2 and 3 are rotated by 1, 2 and 3 positions —
    the transformation analysed in the paper's Figure 5.
    """
    result = list(state)
    for row in range(1, 4):
        values = [state[4 * column + row] for column in range(4)]
        rotated = values[row:] + values[:row]
        for column in range(4):
            result[4 * column + row] = rotated[column]
    return result


def mix_single_column(column: Sequence[int]) -> List[int]:
    """MixColumns applied to one 4-byte column."""
    c0, c1, c2, c3 = column
    return [
        xtime(c0) ^ (xtime(c1) ^ c1) ^ c2 ^ c3,
        c0 ^ xtime(c1) ^ (xtime(c2) ^ c2) ^ c3,
        c0 ^ c1 ^ xtime(c2) ^ (xtime(c3) ^ c3),
        (xtime(c0) ^ c0) ^ c1 ^ c2 ^ xtime(c3),
    ]


def mix_columns(state: Sequence[int]) -> State:
    """Apply MixColumns to every column of the state."""
    result = [0] * 16
    for column in range(4):
        mixed = mix_single_column(state[4 * column : 4 * column + 4])
        result[4 * column : 4 * column + 4] = mixed
    return result


def add_round_key(state: Sequence[int], round_key: Sequence[int]) -> State:
    """XOR the state with the round key."""
    return [s ^ k for s, k in zip(state, round_key)]


# ---------------------------------------------------------------------------
# Key schedule and block encryption
# ---------------------------------------------------------------------------


def expand_key(key: Sequence[int]) -> List[List[int]]:
    """Expand a 16-byte key into the 11 round keys of AES-128."""
    if len(key) != 16:
        raise ValueError("AES-128 requires a 16-byte key")
    words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        previous = list(words[i - 1])
        if i % 4 == 0:
            previous = previous[1:] + previous[:1]          # RotWord
            previous = [SBOX[b] for b in previous]           # SubWord
            previous[0] ^= RCON[i // 4 - 1]                  # Rcon
        words.append([a ^ b for a, b in zip(words[i - 4], previous)])
    round_keys = []
    for round_index in range(11):
        round_key: List[int] = []
        for word in words[4 * round_index : 4 * round_index + 4]:
            round_key.extend(word)
        round_keys.append(round_key)
    return round_keys


def encrypt_block(plaintext: Sequence[int], key: Sequence[int]) -> State:
    """Encrypt one 16-byte block with AES-128."""
    if len(plaintext) != 16:
        raise ValueError("AES-128 encrypts 16-byte blocks")
    round_keys = expand_key(key)
    state = add_round_key(plaintext, round_keys[0])
    for round_index in range(1, 10):
        state = sub_bytes(state)
        state = shift_rows(state)
        state = mix_columns(state)
        state = add_round_key(state, round_keys[round_index])
    state = sub_bytes(state)
    state = shift_rows(state)
    state = add_round_key(state, round_keys[10])
    return state


def bytes_to_state(block: bytes) -> State:
    """Convert a 16-byte ``bytes`` object into the state representation."""
    if len(block) != 16:
        raise ValueError("expected exactly 16 bytes")
    return list(block)


def state_to_bytes(state: Sequence[int]) -> bytes:
    """Convert a state back into ``bytes``."""
    return bytes(state)


def state_to_bitstring(state: Sequence[int]) -> str:
    """Render a state as the 128-character bit string used by the VHDL ports.

    Byte 0 occupies the most significant bits, matching how the generated
    entities slice their 128-bit ports.
    """
    return "".join(format(byte, "08b") for byte in state)


def bitstring_to_state(bits: str) -> State:
    """Parse a 128-character bit string back into a state."""
    if len(bits) != 128:
        raise ValueError("expected a 128-bit string")
    return [int(bits[8 * i : 8 * i + 8], 2) for i in range(16)]
