"""Command-line interface: ``vhdl-ifa``.

Every analysis subcommand is a thin shell over one
:class:`repro.workspace.Workspace` — the v1 session facade that owns the
artifact cache, the resource-name universe and the named-policy registry —
so the CLI, the batch driver and the serve mode produce byte-identical
documents by construction.

Subcommands
-----------
``analyze FILE``
    Run the (improved) Information Flow analysis and print the flow graph as
    an adjacency list or DOT; ``--json`` emits a machine-readable summary
    with per-stage timings instead.  A file with component instantiations is
    analysed hierarchically (per-entity summaries linked over the
    instantiation tree; ``--flatten`` forces the equivalent flattening
    route — see ``docs/hierarchy.md``).
``kemmerer FILE``
    Run Kemmerer's baseline for comparison.  Takes the same ``--collapse`` /
    ``--self-loops`` graph-shaping flags as ``analyze``.
``check FILE --secret S [--output O]`` / ``check FILE --policy FILE``
    Run the analysis and check a policy: either the two-level policy built
    from ``--secret``/``--output``, or a declarative TOML/JSON policy file
    (clearance levels, resource patterns, permitted flows, checking mode).
    Exits with status 3 when a violation is found (``--fail-on never``
    reports without failing).
``lint FILE``
    Run the static-analysis rule catalog (``docs/lint.md``) over the cached
    pipeline artifacts; ``--policy`` supplies a ``[lint]`` table (rule
    selection, severity overrides), ``--fail-on`` picks the severity that
    trips exit code 3 (default: ``error``), ``--json`` emits the ``lint``
    document.
``batch FILE [FILE ...]``
    Analyse many files (or every entity of each file with ``--all-entities``)
    through the staged pipeline, in parallel by default; per-file output is
    byte-identical to running ``analyze`` on each file.  With ``--policy``
    every job becomes a policy check; ``--lint`` adds the per-file lint
    section.
``simulate FILE --set PORT=VALUE``
    Execute the design with the delta-cycle simulator and print the final
    signal values.  All ``--set`` stimuli are validated before the first
    simulation step, so a malformed setting fails fast.
``cache stats|clear --cache-dir DIR``
    Inspect or empty the persistent artifact store.
``serve``
    Long-lived HTTP service: ``POST /analyze``, ``POST /check``,
    ``POST /lint``, ``POST /policy``, ``GET /version`` and ``GET /stats``
    over one warm two-tier cache; responses are byte-identical to
    ``analyze --json`` / ``check --json`` / ``lint --json``.

Exit codes (uniform across subcommands, see ``docs/cli.md``):
``0`` success (and a clean ``check``/``lint``); ``1`` analysis or policy
error (any :class:`~repro.errors.ReproError`: parse, elaboration, analysis,
policy-file validation, bad ``--set``/``--output``); ``2`` unreadable or
undecodable input and usage errors; ``3`` policy violation found (``check``,
``batch --policy``) or lint finding at/above ``--fail-on`` (``lint``,
``batch --lint``); ``141`` broken pipe.

All analysis subcommands accept ``--cache-dir DIR`` (persist artifacts
across invocations in a :class:`repro.pipeline.cache.DiskArtifactCache`) and
``--no-cache`` (bypass every cache tier).  See ``docs/cli.md`` for the full
reference, ``docs/api.md`` for the Workspace API and the policy file format,
and ``docs/cache.md`` for the cache design.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError
from repro.pipeline.cache import DiskArtifactCache
from repro.pipeline.render import (
    analyze_document,
    json_text,
    render_adjacency,
    render_analysis_text,
    stamped,
)
from repro.pipeline.batch import default_workers
from repro.pipeline.serve import serve
from repro.security.policy import TwoLevelPolicy
from repro.semantics.simulator import Simulator
from repro.version import version
from repro.vhdl.elaborate import elaborate
from repro.vhdl.parser import parse_program
from repro.vhdl.stdlogic import value_to_string
from repro.workspace import Workspace

#: The uniform exit-code contract (asserted by the test suite).
EXIT_OK = 0
EXIT_ERROR = 1  # any ReproError: parse/elaboration/analysis/policy errors
EXIT_INPUT = 2  # unreadable or undecodable input, usage errors
EXIT_VIOLATION = 3  # `check` (or `batch --policy`) found a policy violation
EXIT_PIPE = 141  # downstream closed our stdout (conventional SIGPIPE status)


def _read_source(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _print_json(document: dict) -> None:
    print(json_text(document))


def _workspace(args: argparse.Namespace, memory_default: bool = False) -> Workspace:
    """The session facade an invocation runs on, from the cache flags.

    ``memory_default`` controls what a plain invocation gets: single-shot
    commands default to no cache at all (one run cannot hit it), while the
    sequential batch driver defaults to an in-memory cache shared across its
    jobs.
    """
    if getattr(args, "no_cache", False):
        return Workspace(cache=None)
    return Workspace(
        cache_dir=getattr(args, "cache_dir", None), memory_cache=memory_default
    )


def _analysis_opts(args: argparse.Namespace) -> dict:
    return {
        "entity": args.entity,
        "improved": not args.basic,
        "loop_processes": not args.straight_line,
    }


def _policy_for(args: argparse.Namespace, workspace: Workspace):
    """The policy a ``check``/``batch`` invocation enforces."""
    if getattr(args, "policy", None):
        return workspace.load_policy(args.policy)
    return TwoLevelPolicy(secret_resources=args.secret)


def _profile_document(args: argparse.Namespace, run) -> dict:
    """The ``--profile-json`` sidecar: per-stage timings and hot spots."""
    return stamped(
        {
            "kind": "profile",
            "file": args.file,
            "timings": {
                name: round(seconds, 6) for name, seconds in run.timings.items()
            },
            "cached_stages": run.cached_stages,
            "stages": {
                name: list(entries)
                for name, entries in run.stage_profiles.items()
            },
        }
    )


def _emit_profile(args: argparse.Namespace, run) -> None:
    """Print per-stage cProfile hot spots to stderr / the JSON sidecar."""
    if args.profile:
        for name, entries in run.stage_profiles.items():
            print(f"[profile] stage {name}", file=sys.stderr)
            for entry in entries:
                print(
                    f"[profile]   {entry['tottime']:9.6f}s "
                    f"{entry['calls']:>8} calls  {entry['function']}",
                    file=sys.stderr,
                )
    if args.profile_json:
        Path(args.profile_json).write_text(
            json_text(_profile_document(args, run)) + "\n", encoding="utf-8"
        )


def _cmd_analyze(args: argparse.Namespace) -> int:
    profiling = bool(args.profile or args.profile_json)
    # Sources with component instantiations route through repro.hier: the
    # summary linker by default, the flattening oracle with --flatten (the
    # two produce byte-identical documents; see docs/hierarchy.md).
    run = _workspace(args).analyze_run(
        _read_source(args.file),
        profile=profiling,
        hierarchy="flatten" if args.flatten else "link",
        **_analysis_opts(args),
    )
    if profiling:
        _emit_profile(args, run)
    if args.json:
        _print_json(
            analyze_document(
                run, collapse=args.collapse, self_loops=args.self_loops,
                file=args.file,
            )
        )
        return EXIT_OK
    print(
        render_analysis_text(
            run.result,
            collapse=args.collapse,
            self_loops=args.self_loops,
            dot=args.dot,
        )
    )
    return EXIT_OK


def _cmd_kemmerer(args: argparse.Namespace) -> int:
    result = (
        _workspace(args)
        .kemmerer_run(
            _read_source(args.file),
            entity=args.entity,
            loop_processes=not args.straight_line,
        )
        .kemmerer
    )
    graph = result.graph if args.self_loops else result.graph.without_self_loops()
    if args.collapse:
        graph = graph.collapse_environment_nodes()
    print(f"Kemmerer's method: {graph.summary()}")
    if args.dot:
        print(graph.to_dot("kemmerer"))
    else:
        for line in render_adjacency(graph):
            print(line)
    return EXIT_OK


def _cmd_check(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    if args.transitive:
        transitive = True
    elif args.direct:
        transitive = False
    else:
        transitive = None  # defer to the policy's own mode
    checked = workspace.check(
        _read_source(args.file),
        _policy_for(args, workspace),
        outputs=args.output or None,
        transitive=transitive,
        restrict_to_ports=args.ports_only,
        **_analysis_opts(args),
    )
    if args.json:
        _print_json(checked.document(file=args.file))
    else:
        print(checked.to_text())
    # Policy violations are all severity "error", so --fail-on warning and
    # the default behave identically here; "never" turns them informational.
    return EXIT_OK if args.fail_on == "never" else checked.exit_code


def _cmd_lint(args: argparse.Namespace) -> int:
    workspace = _workspace(args)
    linted = workspace.lint(
        _read_source(args.file),
        policy=args.policy or None,
        fail_on=args.fail_on,
        **_analysis_opts(args),
    )
    if args.json:
        _print_json(linted.document(file=args.file))
    else:
        print(linted.to_text())
    return linted.exit_code


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.policy and (args.dot or args.collapse or args.self_loops):
        # Policy jobs render covert-channel reports, not graphs: rejecting
        # the combination beats silently ignoring the flags.
        print(
            "error: --dot/--collapse/--self-loops shape the analyze-style "
            "graph output and do not apply with --policy",
            file=sys.stderr,
        )
        return EXIT_INPUT
    workspace = _workspace(args, memory_default=args.sequential)
    report = workspace.batch(
        args.files,
        all_entities=args.all_entities,
        parallel=not args.sequential,
        max_workers=args.jobs,
        policy=_policy_for(args, workspace) if args.policy else None,
        collapse=args.collapse,
        self_loops=args.self_loops,
        dot=args.dot,
        improved=not args.basic,
        loop_processes=not args.straight_line,
        lint=True if args.lint else None,
        fail_on=args.fail_on,
    )
    if args.json:
        _print_json(report.to_json_dict())
        return report.exit_code
    for item in report.items:
        print(f"== {item.job.label} ==")
        if item.ok:
            print(item.text)
        else:
            print(f"error: {item.error}", file=sys.stderr)
    mode = "parallel" if report.parallel else "sequential"
    print(
        f"batch: {len(report.items)} job(s), {len(report.failures)} failed, "
        f"{report.elapsed:.3f}s ({mode}, {report.workers} worker(s))",
        file=sys.stderr,
    )
    return report.exit_code


def _cmd_simulate(args: argparse.Namespace) -> int:
    design = elaborate(parse_program(_read_source(args.file)), args.entity)
    simulator = Simulator(design)
    # Validate the complete stimulus set before the first simulation step: a
    # malformed or unknown --set must fail fast, not after a full run.
    settings = []
    for setting in args.set or []:
        if "=" not in setting:
            raise ReproError(f"--set expects PORT=VALUE, got {setting!r}")
        name, value = setting.split("=", 1)
        name, value = name.strip(), value.strip()
        simulator.validate_drive(name, value)
        settings.append((name, value))
    simulator.run(args.max_deltas)
    for name, value in settings:
        simulator.drive(name, value)
    simulator.run(args.max_deltas)
    print(f"delta cycles: {simulator.delta_cycles}")
    for name, value in sorted(simulator.signal_snapshot().items()):
        print(f"  {name} = {value_to_string(value)}")
    return EXIT_OK


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = DiskArtifactCache(args.cache_dir)
    if args.cache_command == "clear":
        before = cache.stats()
        cache.clear()
        print(
            f"cleared {before['entries']} entries "
            f"({before['bytes']} bytes) from {args.cache_dir}"
        )
        return EXIT_OK
    stats = cache.stats()
    if args.json:
        _print_json(stamped({"command": "cache-stats", **stats}))
        return EXIT_OK
    print(f"cache dir: {stats['path']} (format v{stats['version']})")
    print(
        f"entries: {stats['entries']} ({stats['bytes']} bytes of "
        f"{stats['max_bytes']} budget), universes: {stats['universes']}"
    )
    for stage, count in stats["stages"].items():
        print(f"  {stage}: {count}")
    return EXIT_OK


def _cmd_serve(args: argparse.Namespace) -> int:
    # The server always keeps the in-memory tier (that is the point of a
    # long-lived process) unless --no-cache asks for cold runs throughout.
    workspace = _workspace(args, memory_default=True)
    for policy_file in args.policy or []:
        workspace.load_policy(policy_file)
    # --workers 0 selects the inline (single-process) mode; the default is
    # a pool sized like the batch driver's.
    workers = default_workers() if args.workers is None else args.workers
    try:
        serve(
            host=args.host,
            port=args.port,
            workspace=workspace,
            workers=workers if workers > 0 else None,
            timeout=args.timeout if args.timeout > 0 else None,
            queue_depth=args.queue_depth,
            announce=lambda url: print(
                f"vhdl-ifa serve: listening on {url}", file=sys.stderr
            ),
        )
    except KeyboardInterrupt:
        pass
    return EXIT_OK


def _cmd_contract(args: argparse.Namespace) -> int:
    # Imported here: the contract suite pulls in the serve/pool stack, which
    # plain analysis invocations should not pay for.
    from repro.contract import Corpus, record_corpus, verify_corpus

    pacts = Path(args.pacts)
    if args.contract_command == "record":
        corpus = record_corpus(log=lambda line: print(line, file=sys.stderr))
        written = corpus.save(pacts)
        print(f"recorded {len(written)} interaction(s) into {pacts}")
        return EXIT_OK
    try:
        corpus = Corpus.load(pacts)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT
    modes = ("inline", "pool") if args.mode == "both" else (args.mode,)
    failed = False
    for mode in modes:
        report = verify_corpus(
            corpus, mode=mode, log=lambda line: print(line, file=sys.stderr)
        )
        print(report.summary())
        if not report.ok:
            failed = True
            for result in report.failures:
                print(result.describe())
    return EXIT_ERROR if failed else EXIT_OK


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The artifact-cache flags shared by every analysis subcommand."""
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist stage artifacts under DIR and reuse them across runs",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the artifact cache entirely (both tiers)",
    )


def _add_fail_on_flag(parser: argparse.ArgumentParser) -> None:
    """The shared severity → exit-code threshold (``check``/``lint``/``batch``)."""
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help=(
            "lowest finding severity that trips exit code 3 (default: "
            "error; 'never' reports findings without failing)"
        ),
    )


def _add_graph_flags(parser: argparse.ArgumentParser) -> None:
    """The graph-shaping flags shared by ``analyze``, ``kemmerer``, ``batch``."""
    parser.add_argument(
        "--dot", action="store_true", help="emit Graphviz DOT instead of an adjacency list"
    )
    parser.add_argument(
        "--collapse",
        action="store_true",
        help="merge incoming/outgoing nodes into their resources",
    )
    parser.add_argument(
        "--self-loops", action="store_true", help="keep trivial self loops"
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="vhdl-ifa",
        description="Information Flow analysis for VHDL1 (Tolstrup/Nielson/Nielson, PaCT 2005)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {version()}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_p = sub.add_parser("analyze", help="run the information-flow analysis")
    analyze_p.add_argument("file", help="VHDL1 source file")
    analyze_p.add_argument("--entity", help="entity to elaborate", default=None)
    analyze_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    analyze_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    analyze_p.add_argument(
        "--flatten",
        action="store_true",
        help=(
            "analyse a hierarchical design by flattening it instead of "
            "linking per-entity summaries (byte-identical output; no "
            "effect on flat designs)"
        ),
    )
    _add_graph_flags(analyze_p)
    analyze_p.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable summary (adjacency, stage timings)",
    )
    analyze_p.add_argument(
        "--profile",
        action="store_true",
        help="run stages under cProfile and print per-stage hot spots to stderr",
    )
    analyze_p.add_argument(
        "--profile-json",
        metavar="PATH",
        default=None,
        help="write the per-stage profile as a JSON sidecar document to PATH",
    )
    _add_cache_flags(analyze_p)
    analyze_p.set_defaults(handler=_cmd_analyze)

    kem_p = sub.add_parser("kemmerer", help="run Kemmerer's baseline method")
    kem_p.add_argument("file", help="VHDL1 source file")
    kem_p.add_argument("--entity", default=None)
    kem_p.add_argument("--straight-line", action="store_true")
    _add_graph_flags(kem_p)
    _add_cache_flags(kem_p)
    kem_p.set_defaults(handler=_cmd_kemmerer)

    check_p = sub.add_parser("check", help="check a confidentiality policy")
    check_p.add_argument("file", help="VHDL1 source file")
    check_p.add_argument("--entity", default=None)
    policy_group = check_p.add_mutually_exclusive_group()
    policy_group.add_argument(
        "--secret",
        action="append",
        default=[],
        help="resource holding secret data (repeatable; two-level policy)",
    )
    policy_group.add_argument(
        "--policy",
        default=None,
        metavar="FILE",
        help="declarative TOML/JSON policy file (levels, resources, allowed flows)",
    )
    check_p.add_argument(
        "--output",
        action="append",
        default=[],
        help="restrict reported sinks to this resource (repeatable)",
    )
    check_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    check_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    mode_group = check_p.add_mutually_exclusive_group()
    mode_group.add_argument(
        "--transitive",
        action="store_true",
        help="check paths instead of direct edges (Kemmerer-style, conservative)",
    )
    mode_group.add_argument(
        "--direct",
        action="store_true",
        help="check direct edges only, overriding a policy file's mode = \"transitive\"",
    )
    check_p.add_argument(
        "--ports-only",
        action="store_true",
        help="only report flows whose endpoints are entity ports",
    )
    check_p.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable verdict (violations, stage timings)",
    )
    _add_fail_on_flag(check_p)
    _add_cache_flags(check_p)
    check_p.set_defaults(handler=_cmd_check)

    lint_p = sub.add_parser(
        "lint", help="run the static-analysis rule catalog (docs/lint.md)"
    )
    lint_p.add_argument("file", help="VHDL1 source file")
    lint_p.add_argument("--entity", default=None, help="entity to elaborate")
    lint_p.add_argument(
        "--policy",
        default=None,
        metavar="FILE",
        help=(
            "TOML/JSON policy file whose [lint] table selects rules and "
            "overrides severities"
        ),
    )
    lint_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    lint_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    lint_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable lint document (findings, timings)",
    )
    _add_fail_on_flag(lint_p)
    _add_cache_flags(lint_p)
    lint_p.set_defaults(handler=_cmd_lint)

    batch_p = sub.add_parser(
        "batch", help="analyse many files through the staged pipeline"
    )
    batch_p.add_argument("files", nargs="+", help="VHDL1 source files")
    batch_p.add_argument(
        "--all-entities",
        action="store_true",
        help="analyse every entity of each file, not just the default one",
    )
    batch_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=f"worker processes (default: CPU count, here {default_workers()})",
    )
    batch_p.add_argument(
        "--sequential",
        action="store_true",
        help="run in-process instead of over a worker pool",
    )
    batch_p.add_argument(
        "--policy",
        default=None,
        metavar="FILE",
        help="check every job against this TOML/JSON policy file",
    )
    batch_p.add_argument(
        "--lint",
        action="store_true",
        help=(
            "add a per-file lint section (the --policy file's [lint] table "
            "configures it)"
        ),
    )
    batch_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    batch_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    _add_graph_flags(batch_p)
    batch_p.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable document for the whole batch",
    )
    _add_fail_on_flag(batch_p)
    _add_cache_flags(batch_p)
    batch_p.set_defaults(handler=_cmd_batch)

    sim_p = sub.add_parser("simulate", help="run the delta-cycle simulator")
    sim_p.add_argument("file", help="VHDL1 source file")
    sim_p.add_argument("--entity", default=None)
    sim_p.add_argument("--set", action="append", help="drive an input port, e.g. --set a=1010")
    sim_p.add_argument("--max-deltas", type=int, default=1000)
    sim_p.set_defaults(handler=_cmd_simulate)

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk artifact cache"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    cache_stats_p = cache_sub.add_parser("stats", help="entry counts and sizes")
    cache_stats_p.add_argument(
        "--cache-dir", required=True, metavar="DIR", help="the cache directory"
    )
    cache_stats_p.add_argument(
        "--json", action="store_true", help="emit machine-readable statistics"
    )
    cache_stats_p.set_defaults(handler=_cmd_cache)
    cache_clear_p = cache_sub.add_parser("clear", help="remove every entry")
    cache_clear_p.add_argument(
        "--cache-dir", required=True, metavar="DIR", help="the cache directory"
    )
    cache_clear_p.set_defaults(handler=_cmd_cache)

    contract_p = sub.add_parser(
        "contract", help="record or verify the consumer-contract corpus"
    )
    contract_sub = contract_p.add_subparsers(dest="contract_command", required=True)
    contract_record_p = contract_sub.add_parser(
        "record", help="capture the interaction corpus from live surfaces"
    )
    contract_record_p.add_argument(
        "--pacts",
        default="tests/contract/pacts",
        metavar="DIR",
        help="directory the interaction files are (re)written to",
    )
    contract_record_p.set_defaults(handler=_cmd_contract)
    contract_verify_p = contract_sub.add_parser(
        "verify", help="replay the corpus and fail on breaking divergences"
    )
    contract_verify_p.add_argument(
        "--pacts",
        default="tests/contract/pacts",
        metavar="DIR",
        help="directory holding the recorded interaction files",
    )
    contract_verify_p.add_argument(
        "--mode",
        choices=("inline", "pool", "both"),
        default="both",
        help="server execution mode(s) to replay under (default: both)",
    )
    contract_verify_p.set_defaults(handler=_cmd_contract)

    serve_p = sub.add_parser(
        "serve", help="run the long-lived HTTP analysis service"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8765, help="TCP port (0 binds an ephemeral one)"
    )
    serve_p.add_argument(
        "--policy",
        action="append",
        metavar="FILE",
        help="pre-register a named TOML/JSON policy for POST /check (repeatable)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "size of the analysis worker-process pool (default: the CPU "
            "count the batch driver uses; 0 runs analyses inline on the "
            "event loop)"
        ),
    )
    serve_p.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help=(
            "per-request wall-clock budget; a request over budget answers "
            "504 and its worker is recycled (default: 60)"
        ),
    )
    serve_p.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help=(
            "max admitted (queued + running) requests before load-shedding "
            "with 429 + Retry-After (default: 64)"
        ),
    )
    _add_cache_flags(serve_p)
    serve_p.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        # Everything the toolchain itself diagnoses — parse, elaboration,
        # analysis, policy-file validation, bad --set/--output — is an
        # analysis error: exit 1.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR
    except BrokenPipeError:
        # Downstream closed our stdout (e.g. `vhdl-ifa ... | head`); exit
        # quietly with the conventional SIGPIPE status.
        return EXIT_PIPE
    except (OSError, UnicodeDecodeError) as error:
        # A missing, unreadable or non-UTF-8 input file is an input error,
        # reported as one line, not a traceback: exit 2, like argparse usage
        # errors.  (UnicodeDecodeError is a ValueError, so the OSError net
        # alone would not catch it.)
        print(f"error: {error}", file=sys.stderr)
        return EXIT_INPUT


if __name__ == "__main__":
    sys.exit(main())
