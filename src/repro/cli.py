"""Command-line interface: ``vhdl-ifa``.

Subcommands
-----------
``analyze FILE``
    Run the (improved) Information Flow analysis and print the flow graph as
    an adjacency list or DOT.
``kemmerer FILE``
    Run Kemmerer's baseline for comparison.
``check FILE --secret S [--output O]``
    Run the analysis and check a two-level policy (the listed secrets must not
    flow anywhere public — with ``--output`` restricted to flows into the
    listed sinks); exits with status 1 when a violation is found.  Takes the
    same ``--basic`` / ``--straight-line`` analysis flags as ``analyze``.
``simulate FILE --set PORT=VALUE``
    Execute the design with the delta-cycle simulator and print the final
    signal values.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.api import analyze, analyze_kemmerer
from repro.errors import ReproError
from repro.security.policy import TwoLevelPolicy
from repro.security.report import build_report
from repro.semantics.simulator import Simulator
from repro.vhdl.elaborate import elaborate
from repro.vhdl.parser import parse_program
from repro.vhdl.stdlogic import value_to_string


def _read_source(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = analyze(
        _read_source(args.file),
        entity_name=args.entity,
        improved=not args.basic,
        loop_processes=not args.straight_line,
    )
    graph = result.graph if args.self_loops else result.graph_without_self_loops()
    if args.collapse:
        graph = graph.collapse_environment_nodes()
    print(result.summary())
    if args.dot:
        print(graph.to_dot())
    else:
        for node, successors in graph.to_adjacency().items():
            print(f"  {node} -> {', '.join(successors) if successors else '(none)'}")
    return 0


def _cmd_kemmerer(args: argparse.Namespace) -> int:
    result = analyze_kemmerer(
        _read_source(args.file),
        entity_name=args.entity,
        loop_processes=not args.straight_line,
    )
    graph = result.graph.without_self_loops()
    print(f"Kemmerer's method: {graph.summary()}")
    if args.dot:
        print(graph.to_dot("kemmerer"))
    else:
        for node, successors in graph.to_adjacency().items():
            print(f"  {node} -> {', '.join(successors) if successors else '(none)'}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    result = analyze(
        _read_source(args.file),
        entity_name=args.entity,
        improved=not args.basic,
        loop_processes=not args.straight_line,
    )
    policy = TwoLevelPolicy(secret_resources=args.secret)
    report = build_report(
        result,
        policy,
        transitive=args.transitive,
        restrict_to_ports=args.ports_only,
        outputs=args.output or None,
    )
    print(report.to_text())
    return 0 if report.is_clean else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    design = elaborate(parse_program(_read_source(args.file)), args.entity)
    simulator = Simulator(design)
    simulator.run(args.max_deltas)
    for setting in args.set or []:
        if "=" not in setting:
            raise ReproError(f"--set expects PORT=VALUE, got {setting!r}")
        name, value = setting.split("=", 1)
        simulator.drive(name.strip(), value.strip())
    simulator.run(args.max_deltas)
    print(f"delta cycles: {simulator.delta_cycles}")
    for name, value in sorted(simulator.signal_snapshot().items()):
        print(f"  {name} = {value_to_string(value)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the test suite)."""
    parser = argparse.ArgumentParser(
        prog="vhdl-ifa",
        description="Information Flow analysis for VHDL1 (Tolstrup/Nielson/Nielson, PaCT 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze_p = sub.add_parser("analyze", help="run the information-flow analysis")
    analyze_p.add_argument("file", help="VHDL1 source file")
    analyze_p.add_argument("--entity", help="entity to elaborate", default=None)
    analyze_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    analyze_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    analyze_p.add_argument("--dot", action="store_true", help="emit Graphviz DOT instead of an adjacency list")
    analyze_p.add_argument("--collapse", action="store_true", help="merge incoming/outgoing nodes into their resources")
    analyze_p.add_argument("--self-loops", action="store_true", help="keep trivial self loops")
    analyze_p.set_defaults(handler=_cmd_analyze)

    kem_p = sub.add_parser("kemmerer", help="run Kemmerer's baseline method")
    kem_p.add_argument("file", help="VHDL1 source file")
    kem_p.add_argument("--entity", default=None)
    kem_p.add_argument("--straight-line", action="store_true")
    kem_p.add_argument("--dot", action="store_true")
    kem_p.set_defaults(handler=_cmd_kemmerer)

    check_p = sub.add_parser("check", help="check a two-level confidentiality policy")
    check_p.add_argument("file", help="VHDL1 source file")
    check_p.add_argument("--entity", default=None)
    check_p.add_argument("--secret", action="append", default=[], help="resource holding secret data (repeatable)")
    check_p.add_argument(
        "--output",
        action="append",
        default=[],
        help="restrict reported sinks to this resource (repeatable)",
    )
    check_p.add_argument("--basic", action="store_true", help="disable the improved (Table 9) analysis")
    check_p.add_argument("--straight-line", action="store_true", help="analyse process bodies without repetition")
    check_p.add_argument(
        "--transitive",
        action="store_true",
        help="check paths instead of direct edges (Kemmerer-style, conservative)",
    )
    check_p.add_argument(
        "--ports-only",
        action="store_true",
        help="only report flows whose endpoints are entity ports",
    )
    check_p.set_defaults(handler=_cmd_check)

    sim_p = sub.add_parser("simulate", help="run the delta-cycle simulator")
    sim_p.add_argument("file", help="VHDL1 source file")
    sim_p.add_argument("--entity", default=None)
    sim_p.add_argument("--set", action="append", help="drive an input port, e.g. --set a=1010")
    sim_p.add_argument("--max-deltas", type=int, default=1000)
    sim_p.set_defaults(handler=_cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed our stdout (e.g. `vhdl-ifa ... | head`); exit
        # quietly with the conventional SIGPIPE status — 1 and 2 are taken
        # by "violation found" and "user error".
        return 141
    except OSError as error:
        # A missing or unreadable input file is a user error, not a crash:
        # report it the same way as a ReproError instead of a raw traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
