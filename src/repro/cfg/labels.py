"""Labelling scheme for VHDL1 processes.

Each *elementary block* — an assignment, ``null``, ``wait`` statement or the
guard expression of an ``if``/``while`` — receives a label that is unique
across the whole program (the paper: "each block has a label which is
initially unique for the program … the same label is not found in two
different processes", so a label determines its process).

Labels are stamped onto the AST nodes in place (``Statement.label``) and also
collected into :class:`Block` records that the analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.vhdl import ast


class BlockKind(Enum):
    """The kind of an elementary block."""

    NULL = "null"
    VARIABLE_ASSIGN = "variable-assign"
    SIGNAL_ASSIGN = "signal-assign"
    WAIT = "wait"
    IF_GUARD = "if-guard"
    WHILE_GUARD = "while-guard"


@dataclass(frozen=True)
class Block:
    """An elementary block ``[B]^l`` belonging to process ``process_name``."""

    label: int
    kind: BlockKind
    statement: ast.Statement
    process_name: str

    def __repr__(self) -> str:
        return f"Block(l={self.label}, {self.kind.value}, process={self.process_name})"

    @property
    def is_wait(self) -> bool:
        """True for ``wait`` blocks (synchronisation points)."""
        return self.kind is BlockKind.WAIT

    @property
    def is_guard(self) -> bool:
        """True for ``if``/``while`` guard blocks."""
        return self.kind in (BlockKind.IF_GUARD, BlockKind.WHILE_GUARD)


class LabelAllocator:
    """Hands out program-unique labels, starting from 1."""

    def __init__(self, start: int = 1):
        self._next = start
        self._count = 0

    def fresh(self) -> int:
        """Return the next unused label."""
        label = self._next
        self._next += 1
        self._count += 1
        return label

    @property
    def allocated(self) -> int:
        """Number of labels handed out so far."""
        return self._count


_STATEMENT_KINDS = {
    ast.Null: BlockKind.NULL,
    ast.VariableAssign: BlockKind.VARIABLE_ASSIGN,
    ast.SignalAssign: BlockKind.SIGNAL_ASSIGN,
    ast.Wait: BlockKind.WAIT,
    ast.If: BlockKind.IF_GUARD,
    ast.While: BlockKind.WHILE_GUARD,
}


def label_statements(
    statements: List[ast.Statement],
    process_name: str,
    allocator: LabelAllocator,
    blocks: Optional[Dict[int, Block]] = None,
) -> Dict[int, Block]:
    """Stamp labels onto every elementary block of ``statements``.

    Labels are assigned in textual (pre-order) order.  Returns the mapping
    from labels to :class:`Block` records (extending ``blocks`` if given).
    """
    if blocks is None:
        blocks = {}
    for stmt in statements:
        kind = _STATEMENT_KINDS.get(type(stmt))
        if kind is None:
            raise TypeError(f"cannot label statement of type {type(stmt).__name__}")
        stmt.label = allocator.fresh()
        blocks[stmt.label] = Block(
            label=stmt.label,
            kind=kind,
            statement=stmt,
            process_name=process_name,
        )
        if isinstance(stmt, ast.If):
            label_statements(stmt.then_branch, process_name, allocator, blocks)
            label_statements(stmt.else_branch, process_name, allocator, blocks)
        elif isinstance(stmt, ast.While):
            label_statements(stmt.body, process_name, allocator, blocks)
    return blocks
