"""Control-flow representation shared by all analyses (Section 4, "common
analysis domains").

The paper adopts the labelling scheme, the ``blocks``/``flow``/``init``
functions and the isolated-entries convention of *Principles of Program
Analysis* [9], extended with labelled ``wait`` statements and a *cross-flow*
relation ``cf`` (the Cartesian product of the ``wait`` labels of the different
processes) that models which synchronisation points may synchronise with which.
"""

from repro.cfg.labels import Block, BlockKind, LabelAllocator
from repro.cfg.builder import ProcessCFG, ProgramCFG, build_cfg, build_process_cfg

__all__ = [
    "Block",
    "BlockKind",
    "LabelAllocator",
    "ProcessCFG",
    "ProgramCFG",
    "build_cfg",
    "build_process_cfg",
]
