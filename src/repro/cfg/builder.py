"""Construction of per-process and whole-program control-flow graphs.

Following the paper, each process body ``ss_i`` is analysed as if it were::

    null ; while '1' do ss_i

so that the entry node is *isolated* (it cannot be re-entered once left) while
the body still loops indefinitely.  The synthetic ``null`` and ``while``-guard
blocks receive labels of their own; the blocks of the user-written body keep
labels in textual order.

``flow``, ``init`` and ``finals`` follow *Principles of Program Analysis*:

* ``init`` of a sequence is the ``init`` of its first statement;
* the guard of an ``if`` flows to the ``init`` of both branches and the block's
  ``finals`` are the union of the branches' finals;
* the guard of a ``while`` flows to the ``init`` of the body, the body's finals
  flow back to the guard, and the guard is the statement's only final.

The whole-program :class:`ProgramCFG` adds the *cross-flow* relation ``cf``:
the Cartesian product of the sets of ``wait`` labels of the individual
processes, i.e. every tuple of synchronisation points that could possibly
synchronise together.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, Process
from repro.cfg.labels import Block, BlockKind, LabelAllocator, label_statements

Edge = Tuple[int, int]


# ---------------------------------------------------------------------------
# init / finals / flow on labelled statement lists
# ---------------------------------------------------------------------------


def init_of(statements: Sequence[ast.Statement]) -> int:
    """``init``: the label of the first elementary block of the list."""
    if not statements:
        raise AnalysisError("init of an empty statement list")
    first = statements[0]
    if first.label is None:
        raise AnalysisError("statements must be labelled before building the CFG")
    return first.label


def finals_of(statements: Sequence[ast.Statement]) -> FrozenSet[int]:
    """``final``: the labels at which execution of the list may end."""
    if not statements:
        raise AnalysisError("finals of an empty statement list")
    last = statements[-1]
    if isinstance(last, ast.If):
        return finals_of(last.then_branch) | finals_of(last.else_branch)
    if isinstance(last, ast.While):
        return frozenset({last.label})
    return frozenset({last.label})


def flow_of(statements: Sequence[ast.Statement]) -> Set[Edge]:
    """``flow``: the intra-process control-flow edges of the list."""
    edges: Set[Edge] = set()
    for stmt in statements:
        edges |= _flow_of_statement(stmt)
    for previous, following in zip(statements, statements[1:]):
        for final in finals_of([previous]):
            edges.add((final, init_of([following])))
    return edges


def _flow_of_statement(stmt: ast.Statement) -> Set[Edge]:
    if isinstance(stmt, ast.If):
        edges = flow_of(stmt.then_branch) | flow_of(stmt.else_branch)
        edges.add((stmt.label, init_of(stmt.then_branch)))
        edges.add((stmt.label, init_of(stmt.else_branch)))
        return edges
    if isinstance(stmt, ast.While):
        edges = flow_of(stmt.body)
        edges.add((stmt.label, init_of(stmt.body)))
        for final in finals_of(stmt.body):
            edges.add((final, stmt.label))
        return edges
    return set()


# ---------------------------------------------------------------------------
# Per-process CFG
# ---------------------------------------------------------------------------


@dataclass
class ProcessCFG:
    """The control-flow graph of a single process, with isolated entry.

    ``entry_label`` is the synthetic ``null`` block, ``loop_label`` the
    synthetic ``while '1'`` guard; ``body_labels`` are the labels of the
    user-written body only.
    """

    process: Process
    entry_label: int
    loop_label: int
    blocks: Dict[int, Block] = field(default_factory=dict)
    flow: Set[Edge] = field(default_factory=set)
    wait_labels: FrozenSet[int] = frozenset()
    body_labels: FrozenSet[int] = frozenset()

    @property
    def name(self) -> str:
        """The process identifier."""
        return self.process.name

    @property
    def labels(self) -> FrozenSet[int]:
        """All labels of the process, including the synthetic entry and guard."""
        return frozenset(self.blocks)

    def predecessors(self, label: int) -> List[int]:
        """Labels with a flow edge into ``label``."""
        return [src for (src, dst) in self.flow if dst == label]

    def successors(self, label: int) -> List[int]:
        """Labels reached by a flow edge from ``label``."""
        return [dst for (src, dst) in self.flow if src == label]

    def _assignment_index(self, kind: BlockKind) -> Dict[str, FrozenSet[int]]:
        """Target name → assignment labels for one block kind, built once."""
        attr = "_assign_index_" + kind.name
        cached = getattr(self, attr, None)
        if cached is None:
            collected: Dict[str, Set[int]] = {}
            for label, block in self.blocks.items():
                if block.kind is kind:
                    collected.setdefault(block.statement.target, set()).add(label)
            cached = {target: frozenset(labels) for target, labels in collected.items()}
            object.__setattr__(self, attr, cached)
        return cached

    def assignment_labels_of_signal(self, signal: str) -> FrozenSet[int]:
        """Labels of blocks in this process that assign to ``signal``."""
        return self._assignment_index(BlockKind.SIGNAL_ASSIGN).get(signal, frozenset())

    def assignment_labels_of_variable(self, variable: str) -> FrozenSet[int]:
        """Labels of blocks in this process that assign to ``variable``."""
        return self._assignment_index(BlockKind.VARIABLE_ASSIGN).get(variable, frozenset())


def build_process_cfg(
    process: Process, allocator: LabelAllocator, loop: bool = True
) -> ProcessCFG:
    """Label ``process`` and build its CFG with the isolated-entry wrapping.

    With ``loop=True`` (the default, and the VHDL semantics) the body is
    wrapped as ``null ; while '1' do ss``; with ``loop=False`` the body is
    analysed as a straight-line program (``null ; ss``), which is how the
    paper presents its illustrative example programs (a) and (b) of
    Section 5.
    """
    if not process.body:
        process.body.append(ast.Null())

    blocks = label_statements(process.body, process.name, allocator)
    body_labels = frozenset(blocks)

    # Synthetic wrapper: null ; while '1' do body   (or just null ; body)
    entry_null = ast.Null()
    entry_null.label = allocator.fresh()
    loop_guard = ast.While(condition=ast.LogicLiteral(value="1"), body=process.body)
    loop_guard.label = allocator.fresh()

    blocks[entry_null.label] = Block(
        label=entry_null.label,
        kind=BlockKind.NULL,
        statement=entry_null,
        process_name=process.name,
    )

    flow = flow_of(process.body)
    if loop:
        blocks[loop_guard.label] = Block(
            label=loop_guard.label,
            kind=BlockKind.WHILE_GUARD,
            statement=loop_guard,
            process_name=process.name,
        )
        flow.add((entry_null.label, loop_guard.label))
        flow.add((loop_guard.label, init_of(process.body)))
        for final in finals_of(process.body):
            flow.add((final, loop_guard.label))
    else:
        flow.add((entry_null.label, init_of(process.body)))

    wait_labels = frozenset(
        label for label, block in blocks.items() if block.kind is BlockKind.WAIT
    )

    return ProcessCFG(
        process=process,
        entry_label=entry_null.label,
        loop_label=loop_guard.label if loop else entry_null.label,
        blocks=blocks,
        flow=flow,
        wait_labels=wait_labels,
        body_labels=body_labels,
    )


# ---------------------------------------------------------------------------
# Whole-program CFG
# ---------------------------------------------------------------------------


@dataclass
class ProgramCFG:
    """CFGs of all processes of a design plus the cross-flow relation."""

    design: Design
    processes: Dict[str, ProcessCFG] = field(default_factory=dict)

    # -- lookups ------------------------------------------------------------

    @property
    def process_order(self) -> List[str]:
        """Process names in design order (the order used for ``cf`` tuples)."""
        return [proc.name for proc in self.design.processes]

    @property
    def blocks(self) -> Dict[int, Block]:
        """All blocks of the program indexed by label."""
        result: Dict[int, Block] = {}
        for cfg in self.processes.values():
            result.update(cfg.blocks)
        return result

    @property
    def labels(self) -> FrozenSet[int]:
        """All labels of the program."""
        return frozenset(self.blocks)

    def block(self, label: int) -> Block:
        """The block carrying ``label``."""
        for cfg in self.processes.values():
            if label in cfg.blocks:
                return cfg.blocks[label]
        raise KeyError(label)

    def process_of_label(self, label: int) -> str:
        """The (unique) process in which ``label`` occurs."""
        for name, cfg in self.processes.items():
            if label in cfg.blocks:
                return name
        raise KeyError(label)

    def cfg_of_label(self, label: int) -> ProcessCFG:
        """The :class:`ProcessCFG` owning ``label``."""
        return self.processes[self.process_of_label(label)]

    # -- wait statements and cross flow ------------------------------------------

    @property
    def wait_labels(self) -> FrozenSet[int]:
        """``WS``: all wait-statement labels of the program."""
        result: Set[int] = set()
        for cfg in self.processes.values():
            result |= cfg.wait_labels
        return frozenset(result)

    def wait_labels_of(self, process_name: str) -> FrozenSet[int]:
        """``WS(ss_i)``: wait labels of one process."""
        return self.processes[process_name].wait_labels

    def cross_flow(self) -> List[Tuple[int, ...]]:
        """The cross-flow relation ``cf``.

        The Cartesian product of the per-process wait-label sets, ordered by
        the design's process order.  If some process contains no ``wait``
        statement the product is empty (that process never synchronises, so no
        global synchronisation can complete).
        """
        factor_sets = [
            sorted(self.processes[name].wait_labels) for name in self.process_order
        ]
        if any(not factors for factors in factor_sets):
            return []
        return [tuple(combo) for combo in itertools.product(*factor_sets)]

    def cross_flow_tuples_containing(self, label: int) -> List[Tuple[int, ...]]:
        """The ``cf`` tuples in which ``label`` occurs."""
        if label not in self.wait_labels:
            return []
        return [combo for combo in self.cross_flow() if label in combo]

    def label_occurs_in_cross_flow(self, label: int) -> bool:
        """``∃ l⃗ ∈ cf`` such that ``label`` occurs in ``l⃗``.

        Evaluated without materialising the product: the label must be a wait
        label and every *other* process must have at least one wait label.
        """
        if label not in self.wait_labels:
            return False
        owner = self.process_of_label(label)
        return all(
            self.processes[name].wait_labels
            for name in self.process_order
            if name != owner
        )

    def labels_cooccur_in_cross_flow(self, label_a: int, label_b: int) -> bool:
        """``∃ l⃗ ∈ cf`` in which both labels occur.

        Two wait labels co-occur exactly when they are wait statements of
        *different* processes (or the same label) and every remaining process
        also has at least one wait label.
        """
        if label_a not in self.wait_labels or label_b not in self.wait_labels:
            return False
        owner_a = self.process_of_label(label_a)
        owner_b = self.process_of_label(label_b)
        if owner_a == owner_b and label_a != label_b:
            return False
        return all(
            self.processes[name].wait_labels
            for name in self.process_order
            if name not in (owner_a, owner_b)
        )

    # -- statistics ------------------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """Size statistics used by reports and the scaling benchmark."""
        return {
            "processes": len(self.processes),
            "labels": len(self.blocks),
            "flow_edges": sum(len(cfg.flow) for cfg in self.processes.values()),
            "wait_labels": len(self.wait_labels),
            "signals": len(self.design.signals),
            "variables": len(self.design.variable_names()),
        }


def build_cfg(design: Design, loop_processes: bool = True) -> ProgramCFG:
    """Label every process of ``design`` and build the whole-program CFG.

    ``loop_processes=False`` analyses each process body as straight-line code
    (no repetition), matching the presentation of the paper's sequential
    example programs; the default follows the VHDL semantics where a process
    body repeats indefinitely.
    """
    allocator = LabelAllocator()
    program_cfg = ProgramCFG(design=design)
    for process in design.processes:
        program_cfg.processes[process.name] = build_process_cfg(
            process, allocator, loop=loop_processes
        )
    return program_cfg
