"""Exception hierarchy for the VHDL information-flow toolchain.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single exception type at the API boundary.  Frontend errors carry
source positions where available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the library."""


@dataclass(frozen=True)
class SourcePosition:
    """A position in VHDL source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class LexerError(ReproError):
    """Raised when the lexer encounters an unrecognised character sequence."""

    def __init__(self, message: str, position: Optional[SourcePosition] = None):
        self.position = position
        if position is not None:
            message = f"{message} at {position}"
        super().__init__(message)


class ParseError(ReproError):
    """Raised when the parser cannot derive a VHDL1 construct."""

    def __init__(self, message: str, position: Optional[SourcePosition] = None):
        self.position = position
        if position is not None:
            message = f"{message} at {position}"
        super().__init__(message)


class ElaborationError(ReproError):
    """Raised when a parsed program cannot be elaborated into a design.

    Examples: an architecture referring to a missing entity, duplicate process
    identifiers, ports used inconsistently with their declared mode.
    """


class HierarchyError(ElaborationError):
    """Raised for structural faults in a hierarchical design.

    Examples: an instantiation naming an unknown component, a port map whose
    arity or formal names do not match the component interface, an
    instantiation cycle, or port aliasing the compositional linker cannot
    reproduce exactly.
    """


class TypeCheckError(ReproError):
    """Raised for static type violations in VHDL1 (vector widths, modes)."""


class SimulationError(ReproError):
    """Raised when the delta-cycle simulator encounters a runtime error."""


class AnalysisError(ReproError):
    """Raised when one of the static analyses is mis-configured."""


class SolverError(ReproError):
    """Raised by the Datalog-style constraint solver (malformed clauses)."""


class PolicyError(ReproError):
    """Raised by the security-policy layer for ill-formed policies."""
