"""Pretty printer producing parseable VHDL1 source text from an AST.

``parse_program(pretty(program))`` round-trips for every program the parser
accepts; the property-based tests rely on this.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.vhdl import ast

_INDENT = "  "


def _format_slice(target_slice) -> str:
    left, right, direction = target_slice
    if direction is ast.RangeDirection.DOWNTO and left == right:
        return f"({left})"
    return f"({left} {direction.value} {right})"


def format_expression(expr: ast.Expression) -> str:
    """Render an expression as VHDL1 concrete syntax."""
    if isinstance(expr, ast.LogicLiteral):
        return f"'{expr.value}'"
    if isinstance(expr, ast.VectorLiteral):
        return f'"{expr.value}"'
    if isinstance(expr, ast.IntegerLiteral):
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.SliceName):
        return f"{expr.ident}{_format_slice((expr.left, expr.right, expr.direction))}"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.operator} {format_expression(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        left = format_expression(expr.left)
        right = format_expression(expr.right)
        return f"({left} {expr.operator} {right})"
    raise TypeError(f"cannot pretty-print expression node {type(expr).__name__}")


def format_type(type_node: ast.TypeNode) -> str:
    """Render a type annotation."""
    if isinstance(type_node, ast.StdLogicType):
        return "std_logic"
    if isinstance(type_node, ast.StdLogicVectorType):
        return (
            f"std_logic_vector({type_node.left} {type_node.direction.value} "
            f"{type_node.right})"
        )
    raise TypeError(f"cannot pretty-print type node {type(type_node).__name__}")


def format_declaration(decl: ast.Declaration, indent: int = 0) -> str:
    """Render a variable or signal declaration."""
    pad = _INDENT * indent
    if isinstance(decl, ast.VariableDeclaration):
        init = (
            f" := {format_expression(decl.initial)}" if decl.initial is not None else ""
        )
        return f"{pad}variable {decl.name} : {format_type(decl.var_type)}{init};"
    if isinstance(decl, ast.SignalDeclaration):
        init = (
            f" := {format_expression(decl.initial)}" if decl.initial is not None else ""
        )
        return f"{pad}signal {decl.name} : {format_type(decl.sig_type)}{init};"
    if isinstance(decl, ast.ComponentDeclaration):
        ports = "; ".join(
            f"{port.name} : {port.mode.value} {format_type(port.port_type)}"
            for port in decl.ports
        )
        clause = f" port({ports});" if decl.ports else ""
        return f"{pad}component {decl.name} is{clause} end component {decl.name};"
    raise TypeError(f"cannot pretty-print declaration {type(decl).__name__}")


def format_statement(stmt: ast.Statement, indent: int = 0) -> List[str]:
    """Render a statement as a list of source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Null):
        return [f"{pad}null;"]
    if isinstance(stmt, ast.VariableAssign):
        target = stmt.target + (
            _format_slice(stmt.target_slice) if stmt.target_slice else ""
        )
        return [f"{pad}{target} := {format_expression(stmt.value)};"]
    if isinstance(stmt, ast.SignalAssign):
        target = stmt.target + (
            _format_slice(stmt.target_slice) if stmt.target_slice else ""
        )
        return [f"{pad}{target} <= {format_expression(stmt.value)};"]
    if isinstance(stmt, ast.Wait):
        parts = ["wait"]
        if stmt.signals:
            parts.append("on " + ", ".join(stmt.signals))
        if stmt.condition is not None:
            parts.append("until " + format_expression(stmt.condition))
        return [f"{pad}{' '.join(parts)};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if {format_expression(stmt.condition)} then"]
        for inner in stmt.then_branch:
            lines.extend(format_statement(inner, indent + 1))
        lines.append(f"{pad}else")
        for inner in stmt.else_branch:
            lines.extend(format_statement(inner, indent + 1))
        lines.append(f"{pad}end if;")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while {format_expression(stmt.condition)} loop"]
        for inner in stmt.body:
            lines.extend(format_statement(inner, indent + 1))
        lines.append(f"{pad}end loop;")
        return lines
    raise TypeError(f"cannot pretty-print statement {type(stmt).__name__}")


def format_statements(statements: Sequence[ast.Statement], indent: int = 0) -> str:
    """Render a statement list as newline-joined source text."""
    lines: List[str] = []
    for stmt in statements:
        lines.extend(format_statement(stmt, indent))
    return "\n".join(lines)


def format_concurrent(stmt: ast.ConcurrentStatement, indent: int = 0) -> List[str]:
    """Render a concurrent statement as a list of source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.ConcurrentAssign):
        return format_statement(stmt.assignment, indent)
    if isinstance(stmt, ast.ProcessStatement):
        header = f"{pad}{stmt.name} : process"
        if stmt.sensitivity:
            header += "(" + ", ".join(stmt.sensitivity) + ")"
        lines = [header]
        for decl in stmt.declarations:
            lines.append(format_declaration(decl, indent + 1))
        lines.append(f"{pad}begin")
        for inner in stmt.body:
            lines.extend(format_statement(inner, indent + 1))
        lines.append(f"{pad}end process {stmt.name};")
        return lines
    if isinstance(stmt, ast.BlockStatement):
        lines = [f"{pad}{stmt.name} : block"]
        for decl in stmt.declarations:
            lines.append(format_declaration(decl, indent + 1))
        lines.append(f"{pad}begin")
        for inner in stmt.body:
            lines.extend(format_concurrent(inner, indent + 1))
        lines.append(f"{pad}end block {stmt.name};")
        return lines
    if isinstance(stmt, ast.ComponentInstantiation):
        associations = ", ".join(str(assoc) for assoc in stmt.associations)
        return [f"{pad}{stmt.label} : {stmt.component} port map ({associations});"]
    raise TypeError(f"cannot pretty-print concurrent statement {type(stmt).__name__}")


def format_entity(entity: ast.Entity) -> str:
    """Render an entity declaration."""
    lines = [f"entity {entity.name} is"]
    if entity.ports:
        lines.append(f"{_INDENT}port(")
        port_lines = []
        for port in entity.ports:
            port_lines.append(
                f"{_INDENT * 2}{port.name} : {port.mode.value} {format_type(port.port_type)}"
            )
        lines.append(";\n".join(port_lines))
        lines.append(f"{_INDENT});")
    lines.append(f"end {entity.name};")
    return "\n".join(lines)


def format_architecture(arch: ast.Architecture) -> str:
    """Render an architecture body."""
    lines = [f"architecture {arch.name} of {arch.entity_name} is"]
    for decl in arch.declarations:
        lines.append(format_declaration(decl, 1))
    lines.append("begin")
    for stmt in arch.body:
        lines.extend(format_concurrent(stmt, 1))
    lines.append(f"end {arch.name};")
    return "\n".join(lines)


def format_program(program: ast.Program) -> str:
    """Render a whole VHDL1 program (entities then architectures)."""
    parts = [format_entity(e) for e in program.entities]
    parts.extend(format_architecture(a) for a in program.architectures)
    return "\n\n".join(parts) + "\n"


#: Alias used throughout the documentation.
pretty = format_program
