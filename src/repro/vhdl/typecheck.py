"""Static well-formedness checks for elaborated designs.

The analyses and the simulator assume a handful of properties that the
elaborator does not enforce (it only resolves names).  This module checks them
up front and reports diagnostics with severities:

* vector widths must agree across assignments and binary operators;
* slice bounds must lie within the declared range of the sliced object;
* conditions of ``if``/``while``/``wait until`` should be scalar
  (``std_logic``) valued;
* reading an ``out`` port or never reading a declared object produces warnings.

Checking is best-effort and purely syntactic: widths of expressions that mix
unknown operands are simply skipped rather than reported, so the checker never
rejects a program the simulator could execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import TypeCheckError
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, Process


class Severity(Enum):
    """Diagnostic severity."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the checker."""

    severity: Severity
    message: str
    process: Optional[str] = None

    def __str__(self) -> str:
        where = f" [process {self.process}]" if self.process else ""
        return f"{self.severity.value}: {self.message}{where}"


class TypeChecker:
    """Collects diagnostics for one design."""

    def __init__(self, design: Design):
        self._design = design
        self.diagnostics: List[Diagnostic] = []

    # -- reporting ------------------------------------------------------------

    def _error(self, message: str, process: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.ERROR, message, process))

    def _warn(self, message: str, process: Optional[str] = None) -> None:
        self.diagnostics.append(Diagnostic(Severity.WARNING, message, process))

    # -- width computation -------------------------------------------------------

    def _declared_width(self, name: str, process: Process) -> Optional[int]:
        """Width of a declared object: ``None`` for scalars, bits for vectors."""
        if name in process.variables:
            return process.variables[name].width
        if name in self._design.signals:
            return self._design.signals[name].width
        return None

    def _expression_width(self, expr: ast.Expression, process: Process) -> Optional[int]:
        """Vector width of an expression, or ``None`` when scalar/unknown."""
        if isinstance(expr, ast.LogicLiteral):
            return None
        if isinstance(expr, ast.VectorLiteral):
            return len(expr.value)
        if isinstance(expr, ast.IntegerLiteral):
            return None
        if isinstance(expr, ast.Name):
            return self._declared_width(expr.ident, process)
        if isinstance(expr, ast.SliceName):
            width = abs(expr.left - expr.right) + 1
            return None if width == 1 else width
        if isinstance(expr, ast.UnaryOp):
            return self._expression_width(expr.operand, process)
        if isinstance(expr, ast.BinaryOp):
            left = self._expression_width(expr.left, process)
            right = self._expression_width(expr.right, process)
            if expr.operator == "&":
                if left is None and right is None:
                    return 2
                return (left or 1) + (right or 1)
            if expr.operator in ("=", "/=", "<", "<=", ">", ">="):
                return None
            if left is not None and right is not None and left != right:
                self._error(
                    f"operator {expr.operator!r} applied to vectors of widths "
                    f"{left} and {right}",
                    process.name,
                )
            return left if left is not None else right
        return None

    # -- checks ------------------------------------------------------------------------

    def _check_slice(self, name: str, left: int, right: int, process: Process) -> None:
        width = self._declared_width(name, process)
        if width is None:
            self._error(f"slice of scalar object {name!r}", process.name)
            return
        if left < right:
            self._error(
                f"slice ({left} downto {right}) of {name!r} has reversed bounds",
                process.name,
            )
            return
        if left >= width or right < 0:
            self._error(
                f"slice ({left} downto {right}) of {name!r} exceeds its width {width}",
                process.name,
            )

    def _check_expression(self, expr: ast.Expression, process: Process) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.SliceName):
                self._check_slice(node.ident, node.left, node.right, process)
            elif isinstance(node, ast.Name):
                info = self._design.signals.get(node.ident)
                if info is not None and info.is_output:
                    self._warn(
                        f"reading output port {node.ident!r}", process.name
                    )
            elif isinstance(node, ast.UnaryOp):
                stack.append(node.operand)
            elif isinstance(node, ast.BinaryOp):
                stack.append(node.left)
                stack.append(node.right)
        self._expression_width(expr, process)

    def _check_condition(self, expr: ast.Expression, process: Process) -> None:
        self._check_expression(expr, process)
        width = self._expression_width(expr, process)
        if width is not None:
            self._warn(
                "condition has a vector value; VHDL1 conditions should be "
                "std_logic valued",
                process.name,
            )

    def _target_width(
        self, stmt, process: Process
    ) -> Optional[int]:
        if stmt.target_slice is not None:
            left, right, _ = stmt.target_slice
            self._check_slice(stmt.target, left, right, process)
            width = abs(left - right) + 1
            return None if width == 1 else width
        return self._declared_width(stmt.target, process)

    def _check_assignment(self, stmt, process: Process) -> None:
        target_width = self._target_width(stmt, process)
        self._check_expression(stmt.value, process)
        value_width = self._expression_width(stmt.value, process)
        if (
            target_width is not None
            and value_width is not None
            and target_width != value_width
        ):
            self._error(
                f"assignment to {stmt.target!r} of width {target_width} from an "
                f"expression of width {value_width}",
                process.name,
            )

    def _check_process(self, process: Process) -> None:
        read_names = set()
        for stmt in ast.iter_statements(process.body):
            if isinstance(stmt, (ast.VariableAssign, ast.SignalAssign)):
                self._check_assignment(stmt, process)
                read_names |= ast.free_names(stmt.value)
            elif isinstance(stmt, ast.Wait):
                if stmt.condition is not None:
                    self._check_condition(stmt.condition, process)
                    read_names |= ast.free_names(stmt.condition)
                read_names |= set(stmt.signals)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._check_condition(stmt.condition, process)
                read_names |= ast.free_names(stmt.condition)
        for name in process.variables:
            if name not in read_names:
                self._warn(f"variable {name!r} is never read", process.name)

    def check(self) -> List[Diagnostic]:
        """Run every check and return the collected diagnostics."""
        for process in self._design.processes:
            self._check_process(process)
        return self.diagnostics


def typecheck(design: Design) -> List[Diagnostic]:
    """Check ``design`` and return its diagnostics (errors and warnings)."""
    return TypeChecker(design).check()


def assert_well_typed(design: Design) -> None:
    """Raise :class:`TypeCheckError` if the design has any error diagnostics."""
    errors = [d for d in typecheck(design) if d.severity is Severity.ERROR]
    if errors:
        summary = "; ".join(str(d) for d in errors)
        raise TypeCheckError(f"design {design.name!r} has type errors: {summary}")
