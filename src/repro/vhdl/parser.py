"""Recursive-descent parser for the VHDL1 concrete syntax.

The accepted concrete syntax is standard VHDL notation for the constructs of
the paper's Figure 1 grammar::

    entity enc is
      port( key : in std_logic_vector(7 downto 0);
            ct  : out std_logic_vector(7 downto 0) );
    end enc;

    architecture behav of enc is
      signal tmp : std_logic_vector(7 downto 0);
    begin
      p0 : process
        variable x : std_logic_vector(7 downto 0);
      begin
        x := key xor "10101010";
        tmp <= x;
        wait on key;
      end process p0;

      b0 : block
        signal internal : std_logic;
      begin
        internal <= '1';
      end block b0;
    end behav;

Compared to the abstract grammar the parser additionally accepts:

* ``if``/``elsif``/``else``/``end if`` chains (desugared to nested :class:`If`);
* ``while e loop ... end loop`` as well as the paper's ``while e do ... end``;
* ``wait;``, ``wait on S;``, ``wait until e;`` with the paper's defaults;
* single-bit indexing ``x(3)``, treated as the slice ``x(3 downto 3)``;
* optional process sensitivity lists (rewritten to a trailing ``wait on``
  statement during elaboration, which is how VHDL defines them).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.vhdl import ast
from repro.vhdl.lexer import tokenize
from repro.vhdl.tokens import Token, TokenKind


class Parser:
    """Parses a token stream into VHDL1 abstract syntax."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._last = len(tokens) - 1
        self._index = 0

    # ------------------------------------------------------------------ utils
    #
    # The lookahead helpers are the parser's hottest code: they index the
    # token list directly (the list always ends with EOF and ``_advance``
    # never moves past it, so ``self._index`` is always in range) and compare
    # keyword texts with ``==`` — the lexer normalises keyword tokens to
    # lower case, so no per-call ``str.lower()`` is needed.

    def _peek(self, offset: int = 0) -> Token:
        index = self._index + offset
        if index > self._last:
            index = self._last
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._tokens[self._index].kind is kind

    def _check_keyword(self, word: str) -> bool:
        token = self._tokens[self._index]
        return token.kind is TokenKind.KEYWORD and token.text == word

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._check(kind):
            return self._advance()
        return None

    def _match_keyword(self, word: str) -> Optional[Token]:
        if self._check_keyword(word):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, description: str) -> Token:
        if self._check(kind):
            return self._advance()
        token = self._peek()
        raise ParseError(
            f"expected {description}, found {token.text!r}", token.position
        )

    def _expect_keyword(self, word: str) -> Token:
        if self._check_keyword(word):
            return self._advance()
        token = self._peek()
        raise ParseError(f"expected '{word}', found {token.text!r}", token.position)

    def _expect_identifier(self, description: str) -> Token:
        if self._check(TokenKind.IDENTIFIER):
            return self._advance()
        token = self._peek()
        raise ParseError(
            f"expected {description}, found {token.text!r}", token.position
        )

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    # -------------------------------------------------------------- programs

    def parse_program(self) -> ast.Program:
        """Parse a whole program: any number of entities and architectures."""
        program = ast.Program()
        while not self._at_end():
            if self._check_keyword("entity"):
                program.entities.append(self._parse_entity())
            elif self._check_keyword("architecture"):
                program.architectures.append(self._parse_architecture())
            else:
                token = self._peek()
                raise ParseError(
                    f"expected 'entity' or 'architecture', found {token.text!r}",
                    token.position,
                )
        return program

    # -------------------------------------------------------------- entities

    def _parse_entity(self) -> ast.Entity:
        start = self._expect_keyword("entity")
        name = self._expect_identifier("entity name").text
        self._expect_keyword("is")
        ports: List[ast.Port] = []
        if self._check_keyword("port"):
            self._advance()
            self._expect(TokenKind.LPAREN, "'('")
            ports = self._parse_port_list()
            self._expect(TokenKind.RPAREN, "')'")
            self._expect(TokenKind.SEMICOLON, "';'")
        self._expect_keyword("end")
        # optional "entity" keyword and repeated name
        self._match_keyword("entity")
        if self._check(TokenKind.IDENTIFIER):
            closing = self._advance().text
            if closing != name:
                raise ParseError(
                    f"entity closing name {closing!r} does not match {name!r}",
                    start.position,
                )
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.Entity(name=name, ports=ports, position=start.position)

    def _parse_port_list(self) -> List[ast.Port]:
        ports: List[ast.Port] = []
        while True:
            ports.extend(self._parse_port_clause())
            if self._match(TokenKind.SEMICOLON):
                if self._check(TokenKind.RPAREN):
                    break
                continue
            break
        return ports

    def _parse_port_clause(self) -> List[ast.Port]:
        # name {, name} : in|out type
        names = [self._expect_identifier("port name")]
        while self._match(TokenKind.COMMA):
            names.append(self._expect_identifier("port name"))
        self._expect(TokenKind.COLON, "':'")
        if self._match_keyword("in"):
            mode = ast.PortMode.IN
        elif self._match_keyword("out"):
            mode = ast.PortMode.OUT
        else:
            token = self._peek()
            raise ParseError(
                f"expected port mode 'in' or 'out', found {token.text!r}",
                token.position,
            )
        port_type = self._parse_type()
        return [
            ast.Port(
                name=tok.text, mode=mode, port_type=port_type, position=tok.position
            )
            for tok in names
        ]

    # ----------------------------------------------------------------- types

    def _parse_type(self) -> ast.TypeNode:
        token = self._peek()
        if self._match_keyword("std_logic"):
            return ast.StdLogicType(position=token.position)
        if self._match_keyword("std_logic_vector"):
            self._expect(TokenKind.LPAREN, "'('")
            left = int(self._expect(TokenKind.INTEGER, "integer bound").text)
            direction = self._parse_direction()
            right = int(self._expect(TokenKind.INTEGER, "integer bound").text)
            self._expect(TokenKind.RPAREN, "')'")
            return ast.StdLogicVectorType(
                position=token.position, left=left, right=right, direction=direction
            )
        raise ParseError(
            f"expected a type, found {token.text!r}", token.position
        )

    def _parse_direction(self) -> ast.RangeDirection:
        if self._match_keyword("downto"):
            return ast.RangeDirection.DOWNTO
        if self._match_keyword("to"):
            return ast.RangeDirection.TO
        token = self._peek()
        raise ParseError(
            f"expected 'downto' or 'to', found {token.text!r}", token.position
        )

    # --------------------------------------------------------- architectures

    def _parse_architecture(self) -> ast.Architecture:
        start = self._expect_keyword("architecture")
        name = self._expect_identifier("architecture name").text
        self._expect_keyword("of")
        entity_name = self._expect_identifier("entity name").text
        self._expect_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        body: List[ast.ConcurrentStatement] = []
        while not self._check_keyword("end"):
            body.append(self._parse_concurrent_statement())
        self._expect_keyword("end")
        self._match_keyword("architecture")
        if self._check(TokenKind.IDENTIFIER):
            self._advance()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.Architecture(
            name=name,
            entity_name=entity_name,
            declarations=declarations,
            body=body,
            position=start.position,
        )

    # -------------------------------------------------------------- declarations

    def _parse_declarations(self) -> List[ast.Declaration]:
        declarations: List[ast.Declaration] = []
        while (
            self._check_keyword("variable")
            or self._check_keyword("signal")
            or self._check_keyword("component")
        ):
            if self._check_keyword("component"):
                declarations.append(self._parse_component_declaration())
            else:
                declarations.append(self._parse_declaration())
        return declarations

    def _parse_component_declaration(self) -> ast.ComponentDeclaration:
        # component NAME [is] port( ... ); end component [NAME];
        start = self._expect_keyword("component")
        name = self._expect_identifier("component name").text
        self._match_keyword("is")
        ports: List[ast.Port] = []
        if self._check_keyword("port"):
            self._advance()
            self._expect(TokenKind.LPAREN, "'('")
            ports = self._parse_port_list()
            self._expect(TokenKind.RPAREN, "')'")
            self._expect(TokenKind.SEMICOLON, "';'")
        self._expect_keyword("end")
        self._expect_keyword("component")
        if self._check(TokenKind.IDENTIFIER):
            closing = self._advance().text
            if closing != name:
                raise ParseError(
                    f"component closing name {closing!r} does not match {name!r}",
                    start.position,
                )
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ComponentDeclaration(
            position=start.position, name=name, ports=ports
        )

    def _parse_declaration(self) -> ast.Declaration:
        token = self._peek()
        if self._match_keyword("variable"):
            name = self._expect_identifier("variable name").text
            self._expect(TokenKind.COLON, "':'")
            var_type = self._parse_type()
            initial = None
            if self._match(TokenKind.ASSIGN_VAR):
                initial = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.VariableDeclaration(
                position=token.position, name=name, var_type=var_type, initial=initial
            )
        if self._match_keyword("signal"):
            name = self._expect_identifier("signal name").text
            self._expect(TokenKind.COLON, "':'")
            sig_type = self._parse_type()
            initial = None
            if self._match(TokenKind.ASSIGN_VAR):
                initial = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.SignalDeclaration(
                position=token.position, name=name, sig_type=sig_type, initial=initial
            )
        raise ParseError(
            f"expected 'variable' or 'signal', found {token.text!r}", token.position
        )

    # -------------------------------------------------- concurrent statements

    def _parse_concurrent_statement(self) -> ast.ConcurrentStatement:
        token = self._peek()
        # labelled process or block:  name : process|block ...
        if (
            self._check(TokenKind.IDENTIFIER)
            and self._peek(1).kind is TokenKind.COLON
            and (self._peek(2).is_keyword("process") or self._peek(2).is_keyword("block"))
        ):
            label = self._advance().text
            self._advance()  # colon
            if self._check_keyword("process"):
                return self._parse_process(label, token)
            return self._parse_block(label, token)
        # labelled component instantiation:  name : component port map (...)
        if (
            self._check(TokenKind.IDENTIFIER)
            and self._peek(1).kind is TokenKind.COLON
            and self._peek(2).kind is TokenKind.IDENTIFIER
        ):
            return self._parse_instantiation()
        if self._check_keyword("process"):
            raise ParseError("process statements must carry a label", token.position)
        if self._check_keyword("block"):
            raise ParseError("block statements must carry a label", token.position)
        # otherwise: a concurrent signal assignment
        assignment = self._parse_signal_assignment_statement()
        return ast.ConcurrentAssign(position=token.position, assignment=assignment)

    def _parse_instantiation(self) -> ast.ComponentInstantiation:
        start = self._advance()  # instance label
        self._advance()  # colon
        component = self._expect_identifier("component name").text
        self._expect_keyword("port")
        self._expect_keyword("map")
        self._expect(TokenKind.LPAREN, "'('")
        associations: List[ast.PortAssociation] = []
        seen_named = False
        while True:
            assoc_token = self._peek()
            formal: Optional[str] = None
            if (
                self._check(TokenKind.IDENTIFIER)
                and self._peek(1).kind is TokenKind.ARROW
            ):
                formal = self._advance().text
                self._advance()  # =>
                seen_named = True
            elif seen_named:
                raise ParseError(
                    "positional association may not follow named association "
                    "in a port map",
                    assoc_token.position,
                )
            if not self._check(TokenKind.IDENTIFIER):
                bad = self._peek()
                raise ParseError(
                    f"expected a signal name as port-map actual, found {bad.text!r}",
                    bad.position,
                )
            actual = self._parse_name_expression()
            if not isinstance(actual, ast.Name):
                raise ParseError(
                    "port-map actuals must be plain signal names (no slices)",
                    actual.position,
                )
            associations.append(
                ast.PortAssociation(
                    actual=actual, formal=formal, position=assoc_token.position
                )
            )
            if self._match(TokenKind.COMMA):
                continue
            break
        self._expect(TokenKind.RPAREN, "')'")
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ComponentInstantiation(
            position=start.position,
            label=start.text,
            component=component,
            associations=associations,
        )

    def _parse_process(self, label: str, start: Token) -> ast.ProcessStatement:
        self._expect_keyword("process")
        sensitivity: Tuple[str, ...] = ()
        if self._match(TokenKind.LPAREN):
            names = [self._expect_identifier("signal name").text]
            while self._match(TokenKind.COMMA):
                names.append(self._expect_identifier("signal name").text)
            self._expect(TokenKind.RPAREN, "')'")
            sensitivity = tuple(names)
        self._match_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        body = self._parse_statement_list(("end",))
        self._expect_keyword("end")
        self._expect_keyword("process")
        if self._check(TokenKind.IDENTIFIER):
            closing = self._advance().text
            if closing != label:
                raise ParseError(
                    f"process closing label {closing!r} does not match {label!r}",
                    start.position,
                )
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.ProcessStatement(
            position=start.position,
            name=label,
            declarations=declarations,
            body=body,
            sensitivity=sensitivity,
        )

    def _parse_block(self, label: str, start: Token) -> ast.BlockStatement:
        self._expect_keyword("block")
        self._match_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        body: List[ast.ConcurrentStatement] = []
        while not self._check_keyword("end"):
            body.append(self._parse_concurrent_statement())
        self._expect_keyword("end")
        self._expect_keyword("block")
        if self._check(TokenKind.IDENTIFIER):
            closing = self._advance().text
            if closing != label:
                raise ParseError(
                    f"block closing label {closing!r} does not match {label!r}",
                    start.position,
                )
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.BlockStatement(
            position=start.position, name=label, declarations=declarations, body=body
        )

    # -------------------------------------------------------------- statements

    def _parse_statement_list(self, terminators: Tuple[str, ...]) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        tokens = self._tokens
        keyword = TokenKind.KEYWORD
        eof = TokenKind.EOF
        while True:
            token = tokens[self._index]
            kind = token.kind
            if kind is eof or (kind is keyword and token.text in terminators):
                break
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if self._check_keyword("null"):
            self._advance()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.Null(position=token.position)
        if self._check_keyword("wait"):
            return self._parse_wait()
        if self._check_keyword("if"):
            return self._parse_if()
        if self._check_keyword("while"):
            return self._parse_while()
        if self._check(TokenKind.IDENTIFIER):
            return self._parse_assignment()
        raise ParseError(
            f"expected a statement, found {token.text!r}", token.position
        )

    def _parse_target(self) -> Tuple[str, Optional[Tuple[int, int, ast.RangeDirection]], Token]:
        name_token = self._expect_identifier("assignment target")
        target_slice: Optional[Tuple[int, int, ast.RangeDirection]] = None
        if self._check(TokenKind.LPAREN):
            self._advance()
            left = int(self._expect(TokenKind.INTEGER, "integer index").text)
            if self._check_keyword("downto") or self._check_keyword("to"):
                direction = self._parse_direction()
                right = int(self._expect(TokenKind.INTEGER, "integer bound").text)
            else:
                direction = ast.RangeDirection.DOWNTO
                right = left
            self._expect(TokenKind.RPAREN, "')'")
            target_slice = (left, right, direction)
        return name_token.text, target_slice, name_token

    def _parse_assignment(self) -> ast.Statement:
        target, target_slice, name_token = self._parse_target()
        if self._match(TokenKind.ASSIGN_VAR):
            value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.VariableAssign(
                position=name_token.position,
                target=target,
                target_slice=target_slice,
                value=value,
            )
        if self._match(TokenKind.ASSIGN_SIG):
            value = self._parse_expression()
            self._expect(TokenKind.SEMICOLON, "';'")
            return ast.SignalAssign(
                position=name_token.position,
                target=target,
                target_slice=target_slice,
                value=value,
            )
        token = self._peek()
        raise ParseError(
            f"expected ':=' or '<=' after assignment target, found {token.text!r}",
            token.position,
        )

    def _parse_signal_assignment_statement(self) -> ast.SignalAssign:
        target, target_slice, name_token = self._parse_target()
        self._expect(TokenKind.ASSIGN_SIG, "'<='")
        value = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "';'")
        return ast.SignalAssign(
            position=name_token.position,
            target=target,
            target_slice=target_slice,
            value=value,
        )

    def _parse_wait(self) -> ast.Wait:
        start = self._expect_keyword("wait")
        signals: Tuple[str, ...] = ()
        condition: Optional[ast.Expression] = None
        if self._match_keyword("on"):
            names = [self._expect_identifier("signal name").text]
            while self._match(TokenKind.COMMA):
                names.append(self._expect_identifier("signal name").text)
            signals = tuple(names)
        if self._match_keyword("until"):
            condition = self._parse_expression()
        self._expect(TokenKind.SEMICOLON, "';'")
        wait = ast.Wait(position=start.position, signals=signals, condition=condition)
        if not wait.signals and wait.condition is not None:
            # paper default: omitted 'on S' means 'on FS(e)'
            wait.signals = tuple(sorted(ast.free_names(wait.condition)))
        return wait

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        condition = self._parse_expression()
        self._expect_keyword("then")
        then_branch = self._parse_statement_list(("else", "elsif", "end"))
        else_branch: List[ast.Statement] = []
        if self._check_keyword("elsif"):
            # desugar: elsif chain becomes a nested if in the else branch
            nested = self._parse_elsif()
            else_branch = [nested]
        elif self._match_keyword("else"):
            else_branch = self._parse_statement_list(("end",))
            self._expect_keyword("end")
            self._expect_keyword("if")
            self._expect(TokenKind.SEMICOLON, "';'")
        else:
            self._expect_keyword("end")
            self._expect_keyword("if")
            self._expect(TokenKind.SEMICOLON, "';'")
        if not else_branch:
            else_branch = [ast.Null(position=start.position)]
        return ast.If(
            position=start.position,
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_elsif(self) -> ast.If:
        start = self._expect_keyword("elsif")
        condition = self._parse_expression()
        self._expect_keyword("then")
        then_branch = self._parse_statement_list(("else", "elsif", "end"))
        else_branch: List[ast.Statement] = []
        if self._check_keyword("elsif"):
            else_branch = [self._parse_elsif()]
        elif self._match_keyword("else"):
            else_branch = self._parse_statement_list(("end",))
            self._expect_keyword("end")
            self._expect_keyword("if")
            self._expect(TokenKind.SEMICOLON, "';'")
        else:
            self._expect_keyword("end")
            self._expect_keyword("if")
            self._expect(TokenKind.SEMICOLON, "';'")
        if not else_branch:
            else_branch = [ast.Null(position=start.position)]
        return ast.If(
            position=start.position,
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_while(self) -> ast.While:
        start = self._expect_keyword("while")
        condition = self._parse_expression()
        if self._match_keyword("loop"):
            body = self._parse_statement_list(("end",))
            self._expect_keyword("end")
            self._expect_keyword("loop")
            self._expect(TokenKind.SEMICOLON, "';'")
        elif self._match_keyword("do"):
            body = self._parse_statement_list(("end",))
            self._expect_keyword("end")
            self._match_keyword("loop")
            self._expect(TokenKind.SEMICOLON, "';'")
        else:
            token = self._peek()
            raise ParseError(
                f"expected 'loop' or 'do' after while condition, found {token.text!r}",
                token.position,
            )
        return ast.While(position=start.position, condition=condition, body=body)

    # -------------------------------------------------------------- expressions
    #
    # Precedence (loosest to tightest), following VHDL:
    #   logical:    and or xor nand nor xnor
    #   relational: = /= < <= > >=
    #   adding:     + - &
    #   multiplying:* /
    #   unary:      not, - (negation is not in VHDL1; kept out)
    #   primary:    literals, names, parenthesised expressions

    def _parse_expression(self) -> ast.Expression:
        return self._parse_logical()

    _LOGICAL_OPS = frozenset({"and", "or", "xor", "nand", "nor", "xnor"})

    def _parse_logical(self) -> ast.Expression:
        left = self._parse_relational()
        tokens = self._tokens
        keyword = TokenKind.KEYWORD
        logical_ops = self._LOGICAL_OPS
        while True:
            token = tokens[self._index]
            if token.kind is not keyword or token.text not in logical_ops:
                break
            op_token = self._advance()
            right = self._parse_relational()
            left = ast.BinaryOp(
                position=op_token.position,
                operator=op_token.text,
                left=left,
                right=right,
            )
        return left

    _RELATIONAL_KINDS = {
        TokenKind.EQ: "=",
        TokenKind.NEQ: "/=",
        TokenKind.LT: "<",
        TokenKind.ASSIGN_SIG: "<=",  # `<=` inside an expression is relational
        TokenKind.GT: ">",
        TokenKind.GE: ">=",
    }

    def _parse_relational(self) -> ast.Expression:
        left = self._parse_adding()
        kind = self._tokens[self._index].kind
        if kind in self._RELATIONAL_KINDS:
            op_token = self._advance()
            right = self._parse_adding()
            return ast.BinaryOp(
                position=op_token.position,
                operator=self._RELATIONAL_KINDS[kind],
                left=left,
                right=right,
            )
        return left

    _ADDING_KINDS = {
        TokenKind.PLUS: "+",
        TokenKind.MINUS: "-",
        TokenKind.AMPERSAND: "&",
    }

    def _parse_adding(self) -> ast.Expression:
        left = self._parse_multiplying()
        while self._tokens[self._index].kind in self._ADDING_KINDS:
            op_token = self._advance()
            right = self._parse_multiplying()
            left = ast.BinaryOp(
                position=op_token.position,
                operator=self._ADDING_KINDS[op_token.kind],
                left=left,
                right=right,
            )
        return left

    _MULTIPLYING_KINDS = {TokenKind.STAR: "*", TokenKind.SLASH: "/"}

    def _parse_multiplying(self) -> ast.Expression:
        left = self._parse_unary()
        while self._tokens[self._index].kind in self._MULTIPLYING_KINDS:
            op_token = self._advance()
            right = self._parse_unary()
            left = ast.BinaryOp(
                position=op_token.position,
                operator=self._MULTIPLYING_KINDS[op_token.kind],
                left=left,
                right=right,
            )
        return left

    def _parse_unary(self) -> ast.Expression:
        if self._check_keyword("not"):
            op_token = self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(
                position=op_token.position, operator="not", operand=operand
            )
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if self._match(TokenKind.CHAR_LITERAL):
            return ast.LogicLiteral(position=token.position, value=token.text)
        if self._match(TokenKind.STRING_LITERAL):
            return ast.VectorLiteral(position=token.position, value=token.text)
        if self._match(TokenKind.INTEGER):
            return ast.IntegerLiteral(position=token.position, value=int(token.text))
        if self._match_keyword("true"):
            return ast.LogicLiteral(position=token.position, value="1")
        if self._match_keyword("false"):
            return ast.LogicLiteral(position=token.position, value="0")
        if self._match(TokenKind.LPAREN):
            inner = self._parse_expression()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        if self._check(TokenKind.IDENTIFIER):
            return self._parse_name_expression()
        raise ParseError(
            f"expected an expression, found {token.text!r}", token.position
        )

    def _parse_name_expression(self) -> ast.Expression:
        name_token = self._advance()
        if self._check(TokenKind.LPAREN):
            self._advance()
            left = int(self._expect(TokenKind.INTEGER, "integer index").text)
            if self._check_keyword("downto") or self._check_keyword("to"):
                direction = self._parse_direction()
                right = int(self._expect(TokenKind.INTEGER, "integer bound").text)
            else:
                direction = ast.RangeDirection.DOWNTO
                right = left
            self._expect(TokenKind.RPAREN, "')'")
            return ast.SliceName(
                position=name_token.position,
                ident=name_token.text,
                left=left,
                right=right,
                direction=direction,
            )
        return ast.Name(position=name_token.position, ident=name_token.text)


# ---------------------------------------------------------------------------
# Public helpers
# ---------------------------------------------------------------------------


def parse_program(source: str) -> ast.Program:
    """Parse a complete VHDL1 program from source text."""
    return Parser(tokenize(source)).parse_program()


def parse_statement(source: str) -> ast.Statement:
    """Parse a single sequential statement (useful for tests and examples)."""
    parser = Parser(tokenize(source))
    statement = parser._parse_statement()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position
        )
    return statement


def parse_statements(source: str) -> List[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    parser = Parser(tokenize(source))
    statements: List[ast.Statement] = []
    while not parser._at_end():
        statements.append(parser._parse_statement())
    return statements


def parse_expression(source: str) -> ast.Expression:
    """Parse a single expression."""
    parser = Parser(tokenize(source))
    expression = parser._parse_expression()
    if not parser._at_end():
        token = parser._peek()
        raise ParseError(
            f"unexpected trailing input {token.text!r}", token.position
        )
    return expression
