"""Token definitions for the VHDL1 lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

from repro.errors import SourcePosition


class TokenKind(Enum):
    """Kinds of lexical tokens for the VHDL1 fragment."""

    IDENTIFIER = auto()
    KEYWORD = auto()
    INTEGER = auto()
    CHAR_LITERAL = auto()      # '1', 'U', ...
    STRING_LITERAL = auto()    # "1010"
    # punctuation
    COLON = auto()             # :
    SEMICOLON = auto()         # ;
    COMMA = auto()             # ,
    LPAREN = auto()            # (
    RPAREN = auto()            # )
    # operators
    ASSIGN_VAR = auto()        # :=
    ASSIGN_SIG = auto()        # <=   (also relational <=, disambiguated by parser)
    ARROW = auto()             # =>
    EQ = auto()                # =
    NEQ = auto()               # /=
    LT = auto()                # <
    GT = auto()                # >
    GE = auto()                # >=
    PLUS = auto()              # +
    MINUS = auto()             # -
    STAR = auto()              # *
    SLASH = auto()             # /
    AMPERSAND = auto()         # &
    EOF = auto()


#: Reserved words of the VHDL1 concrete syntax (lower-cased).
KEYWORDS = frozenset(
    {
        "entity",
        "is",
        "port",
        "end",
        "in",
        "out",
        "std_logic",
        "std_logic_vector",
        "downto",
        "to",
        "architecture",
        "of",
        "component",
        "map",
        "begin",
        "process",
        "block",
        "variable",
        "signal",
        "null",
        "wait",
        "on",
        "until",
        "if",
        "then",
        "else",
        "elsif",
        "while",
        "loop",
        "do",
        "not",
        "and",
        "or",
        "xor",
        "nand",
        "nor",
        "xnor",
        "true",
        "false",
    }
)


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    text: str
    position: Optional[SourcePosition] = None

    def is_keyword(self, word: str) -> bool:
        """True when this token is the keyword ``word`` (case-insensitive)."""
        return self.kind is TokenKind.KEYWORD and self.text.lower() == word.lower()

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
