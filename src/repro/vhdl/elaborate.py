"""Elaboration of parsed VHDL1 programs into analysable designs (Section 3.3).

Elaboration performs the rewrites the paper describes for architectures:

* concurrent signal assignments become processes that are sensitive to the
  free signals of their right-hand side (``s <= e`` becomes
  ``process begin s <= e; wait on FS(e); end``);
* ``block`` statements are flattened — their locally declared signals are
  hoisted into the design's signal scope and their concurrent statements are
  elaborated in that extended scope;
* process sensitivity lists are desugared to a trailing ``wait on`` statement
  (standard VHDL equivalence);
* vector objects declared with the ``to`` specifier are normalised to
  ``downto`` and every slice reference to them is re-indexed accordingly;
* every name occurrence is resolved to *variable* or *signal* (the analyses'
  ``FV``/``FS`` distinction relies on this).

The result is a :class:`Design`: a flat set of signals (ports plus internal
signals) and a list of :class:`Process` objects with resolved bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError
from repro.vhdl import ast
from repro.vhdl.clone import clone_statement, clone_statements


@dataclass
class SignalInfo:
    """A signal visible to the whole design (port or internal signal)."""

    name: str
    sig_type: ast.TypeNode
    initial: Optional[ast.Expression] = None
    is_port: bool = False
    mode: Optional[ast.PortMode] = None

    @property
    def width(self) -> Optional[int]:
        """Vector width, or ``None`` for scalar ``std_logic`` signals."""
        return self.sig_type.width if isinstance(self.sig_type, ast.StdLogicVectorType) else None

    @property
    def is_input(self) -> bool:
        """True for ``in`` ports."""
        return self.is_port and self.mode is ast.PortMode.IN

    @property
    def is_output(self) -> bool:
        """True for ``out`` ports."""
        return self.is_port and self.mode is ast.PortMode.OUT


@dataclass
class VariableInfo:
    """A process-local variable."""

    name: str
    var_type: ast.TypeNode
    initial: Optional[ast.Expression] = None

    @property
    def width(self) -> Optional[int]:
        """Vector width, or ``None`` for scalar variables."""
        return self.var_type.width if isinstance(self.var_type, ast.StdLogicVectorType) else None


@dataclass
class Process:
    """An elaborated process: resolved body plus its local variables."""

    name: str
    variables: Dict[str, VariableInfo] = field(default_factory=dict)
    body: List[ast.Statement] = field(default_factory=list)
    synthesized: bool = False
    """True when the process was produced by elaboration (concurrent assignment)."""

    def free_signals(self) -> set:
        """``FS(ss_i)``: the signals the process reads, writes or waits on."""
        return ast.free_signals_stmt(self.body)

    def free_variables(self) -> set:
        """``FV(ss_i)``: the variables the process reads or writes."""
        return ast.free_variables_stmt(self.body)


@dataclass
class Design:
    """An elaborated VHDL1 design ready for simulation and analysis."""

    name: str
    entity_name: str
    architecture_name: str
    signals: Dict[str, SignalInfo] = field(default_factory=dict)
    processes: List[Process] = field(default_factory=list)

    @property
    def input_ports(self) -> List[str]:
        """Names of ``in`` ports, in declaration order."""
        return [s.name for s in self.signals.values() if s.is_input]

    @property
    def output_ports(self) -> List[str]:
        """Names of ``out`` ports, in declaration order."""
        return [s.name for s in self.signals.values() if s.is_output]

    @property
    def internal_signals(self) -> List[str]:
        """Names of non-port signals, in declaration order."""
        return [s.name for s in self.signals.values() if not s.is_port]

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        for proc in self.processes:
            if proc.name == name:
                return proc
        raise KeyError(name)

    def variable_names(self) -> List[str]:
        """All process-local variable names, across all processes."""
        names: List[str] = []
        for proc in self.processes:
            names.extend(proc.variables)
        return names

    def resource_names(self) -> List[str]:
        """All resources of the design: signals then variables."""
        return list(self.signals) + self.variable_names()


# ---------------------------------------------------------------------------
# Normalisation of `to` ranges
# ---------------------------------------------------------------------------


class _RangeNormalizer:
    """Re-indexes slice references for objects declared with ``to`` ranges.

    For an object declared ``std_logic_vector(l to r)`` we store the offset
    ``l + r``; its normalised declaration is ``(r downto l)`` and a reference
    ``name(z1 to z2)`` becomes ``name(offset - z1 downto offset - z2)``.
    """

    def __init__(self) -> None:
        self._offsets: Dict[str, int] = {}

    def register(self, name: str, type_node: ast.TypeNode) -> ast.TypeNode:
        """Record the object's declared range and return the normalised type."""
        if (
            isinstance(type_node, ast.StdLogicVectorType)
            and type_node.direction is ast.RangeDirection.TO
        ):
            self._offsets[name] = type_node.left + type_node.right
            return type_node.normalized()
        return type_node

    def normalize_slice(
        self, name: str, left: int, right: int, direction: ast.RangeDirection
    ) -> Tuple[int, int]:
        """Map a slice reference to the normalised ``downto`` indices."""
        if name in self._offsets:
            offset = self._offsets[name]
            if direction is ast.RangeDirection.TO or left <= right:
                return offset - left, offset - right
            # a downto-style reference to a `to` object: interpret indices
            # directly in the normalised numbering
            return left, right
        if direction is ast.RangeDirection.TO:
            # object declared downto but referenced with `to`: swap bounds
            return right, left
        return left, right


# ---------------------------------------------------------------------------
# Elaborator
# ---------------------------------------------------------------------------


class Elaborator:
    """Turns one entity/architecture pair into a :class:`Design`."""

    def __init__(self, program: ast.Program, entity_name: Optional[str] = None):
        self._program = program
        self._entity, self._architecture = self._select_units(entity_name)
        self._normalizer = _RangeNormalizer()
        self._signals: Dict[str, SignalInfo] = {}
        self._processes: List[Process] = []
        self._synth_counter = 0

    # -- unit selection ----------------------------------------------------------

    def _select_units(
        self, entity_name: Optional[str]
    ) -> Tuple[ast.Entity, ast.Architecture]:
        program = self._program
        if not program.architectures:
            raise ElaborationError("program contains no architecture")
        if entity_name is None:
            if len(program.architectures) > 1:
                names = ", ".join(a.entity_name for a in program.architectures)
                raise ElaborationError(
                    f"program has several architectures ({names}); "
                    "pass entity_name to select one"
                )
            architecture = program.architectures[0]
            entity_name = architecture.entity_name
        else:
            architecture = program.architecture_of(entity_name)
            if architecture is None:
                raise ElaborationError(
                    f"no architecture found for entity {entity_name!r}"
                )
        entity = program.entity(entity_name)
        if entity is None:
            raise ElaborationError(f"entity {entity_name!r} is not declared")
        return entity, architecture

    # -- main entry point ----------------------------------------------------------

    def elaborate(self) -> Design:
        """Run elaboration and return the resulting design."""
        self._collect_ports()
        self._collect_architecture_signals()
        # blocks may add signals; collect them before resolving process bodies
        flattened = self._flatten_concurrent(self._architecture.body)
        for stmt in flattened:
            self._elaborate_concurrent(stmt)
        design = Design(
            name=self._entity.name,
            entity_name=self._entity.name,
            architecture_name=self._architecture.name,
            signals=self._signals,
            processes=self._processes,
        )
        self._check_design(design)
        return design

    # -- signal scope ---------------------------------------------------------------

    def _collect_ports(self) -> None:
        for port in self._entity.ports:
            if port.name in self._signals:
                raise ElaborationError(f"duplicate port name {port.name!r}")
            normalized = self._normalizer.register(port.name, port.port_type)
            self._signals[port.name] = SignalInfo(
                name=port.name,
                sig_type=normalized,
                is_port=True,
                mode=port.mode,
            )

    def _collect_architecture_signals(self) -> None:
        for decl in self._architecture.declarations:
            self._add_signal_declaration(decl)

    def _add_signal_declaration(self, decl: ast.Declaration) -> None:
        if isinstance(decl, ast.VariableDeclaration):
            raise ElaborationError(
                f"variable {decl.name!r} declared outside a process"
            )
        if isinstance(decl, ast.ComponentDeclaration):
            raise ElaborationError(
                f"component {decl.name!r} cannot be elaborated flat; analyse "
                "the design through the hierarchy layer (repro.hier) or "
                "flatten it first"
            )
        if not isinstance(decl, ast.SignalDeclaration):
            raise ElaborationError(f"unsupported declaration {decl!r}")
        if decl.name in self._signals:
            raise ElaborationError(f"duplicate signal name {decl.name!r}")
        normalized = self._normalizer.register(decl.name, decl.sig_type)
        self._signals[decl.name] = SignalInfo(
            name=decl.name,
            sig_type=normalized,
            initial=decl.initial,
        )

    # -- blocks ------------------------------------------------------------------------

    def _flatten_concurrent(
        self, statements: List[ast.ConcurrentStatement]
    ) -> List[ast.ConcurrentStatement]:
        """Hoist block-local signals and splice block bodies in place."""
        result: List[ast.ConcurrentStatement] = []
        for stmt in statements:
            if isinstance(stmt, ast.BlockStatement):
                for decl in stmt.declarations:
                    self._add_signal_declaration(decl)
                result.extend(self._flatten_concurrent(stmt.body))
            else:
                result.append(stmt)
        return result

    # -- concurrent statements ------------------------------------------------------------

    def _elaborate_concurrent(self, stmt: ast.ConcurrentStatement) -> None:
        if isinstance(stmt, ast.ConcurrentAssign):
            self._processes.append(self._rewrite_concurrent_assign(stmt))
        elif isinstance(stmt, ast.ProcessStatement):
            self._processes.append(self._elaborate_process(stmt))
        elif isinstance(stmt, ast.ComponentInstantiation):
            raise ElaborationError(
                f"component instantiation {stmt.label!r} cannot be elaborated "
                "flat; analyse the design through the hierarchy layer "
                "(repro.hier) or flatten it first"
            )
        else:
            raise ElaborationError(
                f"unsupported concurrent statement {type(stmt).__name__}"
            )

    def _rewrite_concurrent_assign(self, stmt: ast.ConcurrentAssign) -> Process:
        """``s <= e`` becomes a process assigning then waiting on ``FS(e)``."""
        assignment = clone_statement(stmt.assignment)
        self._synth_counter += 1
        name = f"concurrent_{self._synth_counter}"
        sensitivity = sorted(
            ident
            for ident in ast.free_names(assignment.value)
            if ident in self._signals
        )
        body: List[ast.Statement] = [assignment]
        body.append(
            ast.Wait(
                position=stmt.position,
                signals=tuple(sensitivity),
                condition=None,
            )
        )
        process = Process(name=name, body=body, synthesized=True)
        self._resolve_process(process)
        return process

    def _elaborate_process(self, stmt: ast.ProcessStatement) -> Process:
        if any(proc.name == stmt.name for proc in self._processes):
            raise ElaborationError(f"duplicate process name {stmt.name!r}")
        variables: Dict[str, VariableInfo] = {}
        for decl in stmt.declarations:
            if isinstance(decl, ast.SignalDeclaration):
                raise ElaborationError(
                    f"signal {decl.name!r} declared inside process {stmt.name!r}; "
                    "VHDL1 signals must be declared in blocks or architectures"
                )
            if not isinstance(decl, ast.VariableDeclaration):
                raise ElaborationError(f"unsupported declaration {decl!r}")
            if decl.name in variables:
                raise ElaborationError(
                    f"duplicate variable {decl.name!r} in process {stmt.name!r}"
                )
            if decl.name in self._signals:
                raise ElaborationError(
                    f"variable {decl.name!r} in process {stmt.name!r} shadows a signal"
                )
            normalized = self._normalizer.register(decl.name, decl.var_type)
            variables[decl.name] = VariableInfo(
                name=decl.name, var_type=normalized, initial=decl.initial
            )
        body = clone_statements(stmt.body)
        if stmt.sensitivity:
            # standard VHDL equivalence: sensitivity list == trailing wait on
            body.append(
                ast.Wait(position=stmt.position, signals=tuple(stmt.sensitivity))
            )
        process = Process(name=stmt.name, variables=variables, body=body)
        self._resolve_process(process)
        return process

    # -- name resolution --------------------------------------------------------------------

    def _resolve_process(self, process: Process) -> None:
        for stmt in ast.iter_statements(process.body):
            self._resolve_statement(stmt, process)

    def _resolve_statement(self, stmt: ast.Statement, process: Process) -> None:
        if isinstance(stmt, ast.VariableAssign):
            if stmt.target not in process.variables:
                raise ElaborationError(
                    f"assignment to undeclared variable {stmt.target!r} "
                    f"in process {process.name!r}"
                )
            stmt.target_slice = self._normalize_target_slice(stmt.target, stmt.target_slice)
            self._resolve_expression(stmt.value, process)
        elif isinstance(stmt, ast.SignalAssign):
            if stmt.target not in self._signals:
                raise ElaborationError(
                    f"assignment to undeclared signal {stmt.target!r} "
                    f"in process {process.name!r}"
                )
            stmt.target_slice = self._normalize_target_slice(stmt.target, stmt.target_slice)
            self._resolve_expression(stmt.value, process)
        elif isinstance(stmt, ast.Wait):
            for name in stmt.signals:
                if name not in self._signals:
                    raise ElaborationError(
                        f"wait on undeclared signal {name!r} in process {process.name!r}"
                    )
            if stmt.condition is not None:
                self._resolve_expression(stmt.condition, process)
            if not stmt.signals and stmt.condition is not None:
                stmt.signals = tuple(sorted(ast.free_signals_expr(stmt.condition)))
        elif isinstance(stmt, (ast.If, ast.While)):
            self._resolve_expression(stmt.condition, process)
        # Null has nothing to resolve; nested statements are visited by the caller

    def _normalize_target_slice(self, name, target_slice):
        if target_slice is None:
            return None
        left, right, direction = target_slice
        left, right = self._normalizer.normalize_slice(name, left, right, direction)
        return (left, right, ast.RangeDirection.DOWNTO)

    def _resolve_expression(self, expr: ast.Expression, process: Process) -> None:
        stack: List[ast.Expression] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Name):
                node.kind = self._kind_of(node.ident, process, node)
            elif isinstance(node, ast.SliceName):
                node.kind = self._kind_of(node.ident, process, node)
                node.left, node.right = self._normalizer.normalize_slice(
                    node.ident, node.left, node.right, node.direction
                )
                node.direction = ast.RangeDirection.DOWNTO
            elif isinstance(node, ast.UnaryOp):
                stack.append(node.operand)
            elif isinstance(node, ast.BinaryOp):
                stack.append(node.left)
                stack.append(node.right)

    def _kind_of(self, ident: str, process: Process, node: ast.Expression) -> ast.NameKind:
        if ident in process.variables:
            return ast.NameKind.VARIABLE
        if ident in self._signals:
            return ast.NameKind.SIGNAL
        raise ElaborationError(
            f"undeclared name {ident!r} in process {process.name!r}"
            + (f" at {node.position}" if node.position else "")
        )

    # -- final well-formedness checks ----------------------------------------------------------

    def _check_design(self, design: Design) -> None:
        if not design.processes:
            raise ElaborationError(
                f"architecture {design.architecture_name!r} declares no processes"
            )
        for proc in design.processes:
            for stmt in ast.iter_statements(proc.body):
                if isinstance(stmt, ast.SignalAssign):
                    info = design.signals[stmt.target]
                    if info.is_input:
                        raise ElaborationError(
                            f"process {proc.name!r} assigns to input port {stmt.target!r}"
                        )


def elaborate(program: ast.Program, entity_name: Optional[str] = None) -> Design:
    """Elaborate ``program`` (one entity/architecture pair) into a design.

    ``entity_name`` selects the entity when the program contains several
    architectures; with a single architecture it may be omitted.
    """
    return Elaborator(program, entity_name).elaborate()


def elaborate_source(source: str, entity_name: Optional[str] = None) -> Design:
    """Parse and elaborate VHDL1 source text in one step."""
    from repro.vhdl.parser import parse_program

    return elaborate(parse_program(source), entity_name)
