"""Lexer for the VHDL1 concrete syntax.

The lexer recognises VHDL's ``--`` line comments, identifiers (case
insensitive, normalised to lower case), integer literals, character literals
(``'1'``) and string literals (``"1010"``), plus the punctuation and operators
used by the VHDL1 grammar.

Two implementations live here:

* :func:`tokenize` — the production scanner: a single pass driven by one
  precompiled master regex that consumes whitespace runs, comments,
  identifiers, integers and operators in whole-slice matches (character and
  string literals, which carry their own error cases, are handled by two
  small dedicated paths).  Identifier/keyword classification is one
  ``str.lower()`` on the matched slice plus a frozenset lookup, and operator
  kinds come from a precompiled text → kind table.  Positions are tracked as
  (line, offset-of-line-start), so a token's column is one subtraction
  instead of a per-character counter.
* :class:`Lexer` — the original character-at-a-time scanner, kept verbatim
  as the reference oracle.  ``tests/test_frontend_fast_paths.py`` asserts
  both produce identical token streams (kinds, texts, positions) and
  identical errors over the paper workloads and the lexical edge cases.

The fast scanner restricts identifiers and integers to ASCII
(``[A-Za-z_][A-Za-z0-9_]*`` / ``[0-9]+``), which is the entire VHDL1
character set; the reference scanner's ``str.isalpha`` accepted a wider
Unicode range that no valid input ever used.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import LexerError, SourcePosition
from repro.vhdl.stdlogic import STD_LOGIC_CHARS
from repro.vhdl.tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR_TOKENS = {
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "&": TokenKind.AMPERSAND,
    "=": TokenKind.EQ,
}

_VALID_STRING_CHARS = set(STD_LOGIC_CHARS) | {c.lower() for c in STD_LOGIC_CHARS}

#: Operator text → token kind, multi-character operators included.
_OPERATOR_KINDS = {
    ":=": TokenKind.ASSIGN_VAR,
    "<=": TokenKind.ASSIGN_SIG,
    ">=": TokenKind.GE,
    "/=": TokenKind.NEQ,
    "=>": TokenKind.ARROW,
    ":": TokenKind.COLON,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "/": TokenKind.SLASH,
    **_SINGLE_CHAR_TOKENS,
}

#: The master scanner.  Alternatives without a named group (whitespace runs
#: and comments) are skipped; named groups dispatch to one slice-level
#: handler each.  Multi-character operators precede their one-character
#: prefixes so ``:=`` never scans as ``:`` ``=``.
_TOKEN_PATTERN = re.compile(
    r"""[ \t\r\n]+
      | --[^\n]*
      | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<int>[0-9]+)
      | (?P<op>:=|<=|>=|/=|=>|[;,()+\-*&=:</>])
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source`` and return the token list (ending with ``EOF``)."""
    tokens: List[Token] = []
    append = tokens.append
    match = _TOKEN_PATTERN.match
    length = len(source)
    pos = 0
    line = 1
    line_start = 0
    keywords = KEYWORDS
    operator_kinds = _OPERATOR_KINDS
    keyword_kind = TokenKind.KEYWORD
    identifier_kind = TokenKind.IDENTIFIER
    integer_kind = TokenKind.INTEGER

    while pos < length:
        matched = match(source, pos)
        if matched is not None:
            group = matched.lastgroup
            end = matched.end()
            if group is None:
                # whitespace run or comment; only whitespace holds newlines
                text = source[pos:end]
                newlines = text.count("\n")
                if newlines:
                    line += newlines
                    line_start = pos + text.rindex("\n") + 1
                pos = end
                continue
            position = SourcePosition(line, pos - line_start + 1)
            text = source[pos:end]
            if group == "id":
                text = text.lower()
                append(
                    Token(
                        keyword_kind if text in keywords else identifier_kind,
                        text,
                        position,
                    )
                )
            elif group == "int":
                append(Token(integer_kind, text, position))
            else:
                append(Token(operator_kinds[text], text, position))
            pos = end
            continue

        char = source[pos]
        position = SourcePosition(line, pos - line_start + 1)
        if char == "'":
            # character literal: opening quote, one value char, closing quote
            if pos + 2 >= length or source[pos + 2] != "'":
                raise LexerError("unterminated character literal", position)
            value = source[pos + 1]
            normalized = value.upper() if value.upper() in STD_LOGIC_CHARS else value
            if normalized not in STD_LOGIC_CHARS:
                raise LexerError(
                    f"character literal {value!r} is not a std_logic value", position
                )
            append(Token(TokenKind.CHAR_LITERAL, normalized, position))
            pos += 3
            continue
        if char == '"':
            end = source.find('"', pos + 1)
            if end == -1:
                raise LexerError("unterminated string literal", position)
            text = source[pos + 1 : end]
            if not _VALID_STRING_CHARS.issuperset(text):
                for ch in text:
                    if ch not in _VALID_STRING_CHARS:
                        raise LexerError(
                            "string literal contains non-std_logic character "
                            f"{ch!r}",
                            position,
                        )
            append(Token(TokenKind.STRING_LITERAL, text.upper(), position))
            pos = end + 1
            continue
        raise LexerError(f"unexpected character {char!r}", position)

    append(Token(TokenKind.EOF, "", SourcePosition(line, length - line_start + 1)))
    return tokens


class Lexer:
    """The character-at-a-time reference scanner (the golden-test oracle).

    Kept byte-for-byte compatible with the original implementation;
    :func:`tokenize_reference` runs it.  The production path is the
    regex-driven :func:`tokenize` above.
    """

    def __init__(self, source: str):
        self._source = source
        self._length = len(source)
        self._index = 0
        self._line = 1
        self._column = 1

    # -- character-level helpers ---------------------------------------------

    def _position(self) -> SourcePosition:
        return SourcePosition(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._index + offset
        if index >= self._length:
            return ""
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._index]
        self._index += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _at_end(self) -> bool:
        return self._index >= self._length

    # -- token-level scanning ---------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole input and return its tokens, ending with ``EOF``."""
        tokens: List[Token] = []
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                self._skip_comment()
                continue
            tokens.append(self._next_token())
        tokens.append(Token(TokenKind.EOF, "", self._position()))
        return tokens

    def _skip_comment(self) -> None:
        while not self._at_end() and self._peek() != "\n":
            self._advance()

    def _next_token(self) -> Token:
        position = self._position()
        char = self._peek()

        if char.isalpha() or char == "_":
            return self._scan_identifier(position)
        if char.isdigit():
            return self._scan_integer(position)
        if char == "'":
            return self._scan_char_literal(position)
        if char == '"':
            return self._scan_string_literal(position)

        # multi-character operators
        if char == ":":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN_VAR, ":=", position)
            return Token(TokenKind.COLON, ":", position)
        if char == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN_SIG, "<=", position)
            return Token(TokenKind.LT, "<", position)
        if char == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", position)
            return Token(TokenKind.GT, ">", position)
        if char == "/":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.NEQ, "/=", position)
            return Token(TokenKind.SLASH, "/", position)
        if char == "=":
            self._advance()
            if self._peek() == ">":
                self._advance()
                return Token(TokenKind.ARROW, "=>", position)
            return Token(TokenKind.EQ, "=", position)

        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[char], char, position)

        raise LexerError(f"unexpected character {char!r}", position)

    def _scan_identifier(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        text = "".join(chars).lower()
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, position)

    def _scan_integer(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and self._peek().isdigit():
            chars.append(self._advance())
        return Token(TokenKind.INTEGER, "".join(chars), position)

    def _scan_char_literal(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        if self._at_end():
            raise LexerError("unterminated character literal", position)
        value = self._advance()
        if self._at_end() or self._peek() != "'":
            raise LexerError("unterminated character literal", position)
        self._advance()  # closing quote
        normalized = value.upper() if value.upper() in STD_LOGIC_CHARS else value
        if normalized not in STD_LOGIC_CHARS:
            raise LexerError(
                f"character literal {value!r} is not a std_logic value", position
            )
        return Token(TokenKind.CHAR_LITERAL, normalized, position)

    def _scan_string_literal(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while not self._at_end() and self._peek() != '"':
            chars.append(self._advance())
        if self._at_end():
            raise LexerError("unterminated string literal", position)
        self._advance()  # closing quote
        text = "".join(chars)
        for ch in text:
            if ch not in _VALID_STRING_CHARS:
                raise LexerError(
                    f"string literal contains non-std_logic character {ch!r}", position
                )
        return Token(TokenKind.STRING_LITERAL, text.upper(), position)


def tokenize_reference(source: str) -> List[Token]:
    """Tokenise with the reference scanner (the golden-test oracle)."""
    return Lexer(source).tokenize()
