"""Hand-written lexer for the VHDL1 concrete syntax.

The lexer recognises VHDL's ``--`` line comments, identifiers (case
insensitive, normalised to lower case), integer literals, character literals
(``'1'``) and string literals (``"1010"``), plus the punctuation and operators
used by the VHDL1 grammar.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError, SourcePosition
from repro.vhdl.stdlogic import STD_LOGIC_CHARS
from repro.vhdl.tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR_TOKENS = {
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "&": TokenKind.AMPERSAND,
    "=": TokenKind.EQ,
}

_VALID_STRING_CHARS = set(STD_LOGIC_CHARS) | {c.lower() for c in STD_LOGIC_CHARS}


class Lexer:
    """Converts VHDL1 source text into a list of :class:`Token` objects."""

    def __init__(self, source: str):
        self._source = source
        self._length = len(source)
        self._index = 0
        self._line = 1
        self._column = 1

    # -- character-level helpers ---------------------------------------------

    def _position(self) -> SourcePosition:
        return SourcePosition(self._line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self._index + offset
        if index >= self._length:
            return ""
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._index]
        self._index += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _at_end(self) -> bool:
        return self._index >= self._length

    # -- token-level scanning ---------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole input and return its tokens, ending with ``EOF``."""
        tokens: List[Token] = []
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                self._skip_comment()
                continue
            tokens.append(self._next_token())
        tokens.append(Token(TokenKind.EOF, "", self._position()))
        return tokens

    def _skip_comment(self) -> None:
        while not self._at_end() and self._peek() != "\n":
            self._advance()

    def _next_token(self) -> Token:
        position = self._position()
        char = self._peek()

        if char.isalpha() or char == "_":
            return self._scan_identifier(position)
        if char.isdigit():
            return self._scan_integer(position)
        if char == "'":
            return self._scan_char_literal(position)
        if char == '"':
            return self._scan_string_literal(position)

        # multi-character operators
        if char == ":":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN_VAR, ":=", position)
            return Token(TokenKind.COLON, ":", position)
        if char == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.ASSIGN_SIG, "<=", position)
            return Token(TokenKind.LT, "<", position)
        if char == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", position)
            return Token(TokenKind.GT, ">", position)
        if char == "/":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.NEQ, "/=", position)
            return Token(TokenKind.SLASH, "/", position)
        if char == "=":
            self._advance()
            if self._peek() == ">":
                self._advance()
                return Token(TokenKind.ARROW, "=>", position)
            return Token(TokenKind.EQ, "=", position)

        if char in _SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(_SINGLE_CHAR_TOKENS[char], char, position)

        raise LexerError(f"unexpected character {char!r}", position)

    def _scan_identifier(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and (self._peek().isalnum() or self._peek() == "_"):
            chars.append(self._advance())
        text = "".join(chars).lower()
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, position)

    def _scan_integer(self, position: SourcePosition) -> Token:
        chars: List[str] = []
        while not self._at_end() and self._peek().isdigit():
            chars.append(self._advance())
        return Token(TokenKind.INTEGER, "".join(chars), position)

    def _scan_char_literal(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        if self._at_end():
            raise LexerError("unterminated character literal", position)
        value = self._advance()
        if self._at_end() or self._peek() != "'":
            raise LexerError("unterminated character literal", position)
        self._advance()  # closing quote
        normalized = value.upper() if value.upper() in STD_LOGIC_CHARS else value
        if normalized not in STD_LOGIC_CHARS:
            raise LexerError(
                f"character literal {value!r} is not a std_logic value", position
            )
        return Token(TokenKind.CHAR_LITERAL, normalized, position)

    def _scan_string_literal(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while not self._at_end() and self._peek() != '"':
            chars.append(self._advance())
        if self._at_end():
            raise LexerError("unterminated string literal", position)
        self._advance()  # closing quote
        text = "".join(chars)
        for ch in text:
            if ch not in _VALID_STRING_CHARS:
                raise LexerError(
                    f"string literal contains non-std_logic character {ch!r}", position
                )
        return Token(TokenKind.STRING_LITERAL, text.upper(), position)


def tokenize(source: str) -> List[Token]:
    """Tokenise ``source`` and return the token list (ending with ``EOF``)."""
    return Lexer(source).tokenize()
