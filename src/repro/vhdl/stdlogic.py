"""IEEE-1164 nine-valued logic for VHDL1.

The paper's semantic domain of logical values is (Section 3, "Basic semantic
domains")::

    v in LValue = {'U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'}

with the readings Uninitialised, Forcing Unknown, Forcing zero, Forcing one,
High Impedance, Weak Unknown, Weak zero, Weak one and Don't care.  Vectors of
logical values (``AValue = LValue*``) model ``std_logic_vector``.

This module implements

* :class:`StdLogic` — a single nine-valued logic value;
* :class:`StdLogicVector` — an immutable vector of logic values with slicing,
  bitwise operators and the unsigned arithmetic used by the AES workload;
* the IEEE-1164 *resolution function* used by the semantics' synchronisation
  rule (the ``fs`` of Table 3) both for scalars and for vectors;
* conversion helpers between Python integers and vectors.

The truth tables are transcribed from IEEE Std 1164-1993 (``resolution_table``,
``and_table``, ``or_table``, ``xor_table``, ``not_table``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.errors import SimulationError

#: The nine characters of the ``std_logic`` type, in IEEE-1164 order.
STD_LOGIC_CHARS: Tuple[str, ...] = ("U", "X", "0", "1", "Z", "W", "L", "H", "-")

_CHAR_TO_INDEX = {c: i for i, c in enumerate(STD_LOGIC_CHARS)}

#: Human-readable meaning of each logic value (used in reports and docs).
STD_LOGIC_MEANINGS = {
    "U": "Uninitialized",
    "X": "Forcing Unknown",
    "0": "Forcing zero",
    "1": "Forcing one",
    "Z": "High Impedance",
    "W": "Weak Unknown",
    "L": "Weak zero",
    "H": "Weak one",
    "-": "Don't care",
}

# ---------------------------------------------------------------------------
# IEEE 1164 tables.  Rows/columns follow STD_LOGIC_CHARS order:
#   U    X    0    1    Z    W    L    H    -
# ---------------------------------------------------------------------------

#: ``resolved`` from IEEE 1164: combines two drivers of the same signal.
RESOLUTION_TABLE: Tuple[Tuple[str, ...], ...] = (
    # U    X    0    1    Z    W    L    H    -
    ("U", "U", "U", "U", "U", "U", "U", "U", "U"),  # U
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # X
    ("U", "X", "0", "X", "0", "0", "0", "0", "X"),  # 0
    ("U", "X", "X", "1", "1", "1", "1", "1", "X"),  # 1
    ("U", "X", "0", "1", "Z", "W", "L", "H", "X"),  # Z
    ("U", "X", "0", "1", "W", "W", "W", "W", "X"),  # W
    ("U", "X", "0", "1", "L", "W", "L", "W", "X"),  # L
    ("U", "X", "0", "1", "H", "W", "W", "H", "X"),  # H
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # -
)

#: ``and`` table from IEEE 1164.
AND_TABLE: Tuple[Tuple[str, ...], ...] = (
    # U    X    0    1    Z    W    L    H    -
    ("U", "U", "0", "U", "U", "U", "0", "U", "U"),  # U
    ("U", "X", "0", "X", "X", "X", "0", "X", "X"),  # X
    ("0", "0", "0", "0", "0", "0", "0", "0", "0"),  # 0
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # 1
    ("U", "X", "0", "X", "X", "X", "0", "X", "X"),  # Z
    ("U", "X", "0", "X", "X", "X", "0", "X", "X"),  # W
    ("0", "0", "0", "0", "0", "0", "0", "0", "0"),  # L
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # H
    ("U", "X", "0", "X", "X", "X", "0", "X", "X"),  # -
)

#: ``or`` table from IEEE 1164.
OR_TABLE: Tuple[Tuple[str, ...], ...] = (
    # U    X    0    1    Z    W    L    H    -
    ("U", "U", "U", "1", "U", "U", "U", "1", "U"),  # U
    ("U", "X", "X", "1", "X", "X", "X", "1", "X"),  # X
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # 0
    ("1", "1", "1", "1", "1", "1", "1", "1", "1"),  # 1
    ("U", "X", "X", "1", "X", "X", "X", "1", "X"),  # Z
    ("U", "X", "X", "1", "X", "X", "X", "1", "X"),  # W
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # L
    ("1", "1", "1", "1", "1", "1", "1", "1", "1"),  # H
    ("U", "X", "X", "1", "X", "X", "X", "1", "X"),  # -
)

#: ``xor`` table from IEEE 1164.
XOR_TABLE: Tuple[Tuple[str, ...], ...] = (
    # U    X    0    1    Z    W    L    H    -
    ("U", "U", "U", "U", "U", "U", "U", "U", "U"),  # U
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # X
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # 0
    ("U", "X", "1", "0", "X", "X", "1", "0", "X"),  # 1
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # Z
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # W
    ("U", "X", "0", "1", "X", "X", "0", "1", "X"),  # L
    ("U", "X", "1", "0", "X", "X", "1", "0", "X"),  # H
    ("U", "X", "X", "X", "X", "X", "X", "X", "X"),  # -
)

#: ``not`` table from IEEE 1164.
NOT_TABLE: Tuple[str, ...] = ("U", "X", "1", "0", "X", "X", "1", "0", "X")

#: ``to_x01`` normalisation: maps weak values onto their forcing counterparts.
TO_X01_TABLE: Tuple[str, ...] = ("X", "X", "0", "1", "X", "X", "0", "1", "X")


class StdLogic:
    """A single IEEE-1164 ``std_logic`` value.

    Instances are interned: there are exactly nine of them, one per character
    in :data:`STD_LOGIC_CHARS`, so identity comparison is safe and cheap.

    >>> StdLogic("1") & StdLogic("0")
    StdLogic('0')
    >>> StdLogic("1") ^ StdLogic("1")
    StdLogic('0')
    >>> StdLogic.resolve_pair(StdLogic("0"), StdLogic("Z"))
    StdLogic('0')
    """

    __slots__ = ("_char", "_index")

    _instances: dict = {}

    def __new__(cls, char: Union[str, "StdLogic"]) -> "StdLogic":
        if isinstance(char, StdLogic):
            return char
        if char not in _CHAR_TO_INDEX:
            raise SimulationError(f"not a std_logic value: {char!r}")
        existing = cls._instances.get(char)
        if existing is not None:
            return existing
        obj = super().__new__(cls)
        obj._char = char
        obj._index = _CHAR_TO_INDEX[char]
        cls._instances[char] = obj
        return obj

    # -- basic protocol -----------------------------------------------------

    @property
    def char(self) -> str:
        """The single-character spelling of this value (e.g. ``'1'``)."""
        return self._char

    @property
    def meaning(self) -> str:
        """The IEEE-1164 reading of this value (e.g. ``'Forcing one'``)."""
        return STD_LOGIC_MEANINGS[self._char]

    def __repr__(self) -> str:
        return f"StdLogic({self._char!r})"

    def __str__(self) -> str:
        return f"'{self._char}'"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StdLogic):
            return self._char == other._char
        if isinstance(other, str):
            return self._char == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("StdLogic", self._char))

    # -- predicates ----------------------------------------------------------

    def is_high(self) -> bool:
        """True when the value reads as logic one (``'1'`` or weak ``'H'``)."""
        return self._char in ("1", "H")

    def is_low(self) -> bool:
        """True when the value reads as logic zero (``'0'`` or weak ``'L'``)."""
        return self._char in ("0", "L")

    def is_defined(self) -> bool:
        """True when the value is a definite zero or one (strong or weak)."""
        return self.is_high() or self.is_low()

    # -- conversions ----------------------------------------------------------

    def to_x01(self) -> "StdLogic":
        """Normalise onto {'X', '0', '1'} as IEEE-1164 ``to_x01`` does."""
        return StdLogic(TO_X01_TABLE[self._index])

    def to_bit(self) -> int:
        """Convert to a Python ``0``/``1``; raises if the value is unknown."""
        if self.is_high():
            return 1
        if self.is_low():
            return 0
        raise SimulationError(f"cannot convert {self} to a bit")

    @classmethod
    def from_bit(cls, bit: int) -> "StdLogic":
        """Build ``'0'`` or ``'1'`` from a Python integer."""
        return cls("1") if bit else cls("0")

    # -- logic operators -------------------------------------------------------

    def __and__(self, other: "StdLogic") -> "StdLogic":
        other = StdLogic(other)
        return StdLogic(AND_TABLE[self._index][other._index])

    def __or__(self, other: "StdLogic") -> "StdLogic":
        other = StdLogic(other)
        return StdLogic(OR_TABLE[self._index][other._index])

    def __xor__(self, other: "StdLogic") -> "StdLogic":
        other = StdLogic(other)
        return StdLogic(XOR_TABLE[self._index][other._index])

    def __invert__(self) -> "StdLogic":
        return StdLogic(NOT_TABLE[self._index])

    def nand(self, other: "StdLogic") -> "StdLogic":
        """IEEE-1164 ``nand``."""
        return ~(self & other)

    def nor(self, other: "StdLogic") -> "StdLogic":
        """IEEE-1164 ``nor``."""
        return ~(self | other)

    def xnor(self, other: "StdLogic") -> "StdLogic":
        """IEEE-1164 ``xnor``."""
        return ~(self ^ other)

    # -- resolution -------------------------------------------------------------

    @classmethod
    def resolve_pair(cls, a: "StdLogic", b: "StdLogic") -> "StdLogic":
        """Resolve two drivers with the IEEE-1164 resolution table."""
        a = StdLogic(a)
        b = StdLogic(b)
        return cls(RESOLUTION_TABLE[a._index][b._index])

    @classmethod
    def resolve(cls, drivers: Iterable["StdLogic"]) -> "StdLogic":
        """The resolution function ``fs`` of the semantics (Table 3).

        Combines the multiset of values assigned to a signal by the different
        processes into a single value.  With no drivers the result is ``'Z'``
        (nothing is driving the net); with a single driver it is that driver's
        value.
        """
        result: "StdLogic" = cls("Z")
        seen = False
        for value in drivers:
            value = StdLogic(value)
            result = value if not seen else cls.resolve_pair(result, value)
            seen = True
        return result


#: Convenient singletons.
U = StdLogic("U")
X = StdLogic("X")
ZERO = StdLogic("0")
ONE = StdLogic("1")
Z = StdLogic("Z")
W = StdLogic("W")
L = StdLogic("L")
H = StdLogic("H")
DONT_CARE = StdLogic("-")


class StdLogicVector:
    """An immutable vector of :class:`StdLogic` values.

    The paper normalises all vectors to range from a smaller to a larger index
    (Section 3); this class follows that convention internally and simply
    stores a tuple of bits indexed ``0 .. width-1`` with index ``0`` the *most
    significant* position, matching the textual spelling (``"10"`` has ``'1'``
    first).  Slicing helpers mirror the semantics' ``split`` function.

    >>> v = StdLogicVector.from_string("1010")
    >>> v.to_unsigned()
    10
    >>> (v ^ StdLogicVector.from_string("0110")).to_string()
    '1100'
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[Union[StdLogic, str]]):
        self._bits: Tuple[StdLogic, ...] = tuple(StdLogic(b) for b in bits)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "StdLogicVector":
        """Build a vector from its double-quoted spelling (without quotes)."""
        return cls(StdLogic(ch) for ch in text)

    @classmethod
    def from_unsigned(cls, value: int, width: int) -> "StdLogicVector":
        """Encode a non-negative integer as an unsigned vector of ``width`` bits."""
        if value < 0:
            raise SimulationError("from_unsigned requires a non-negative value")
        if width < 0:
            raise SimulationError("from_unsigned requires a non-negative width")
        if width and value >= (1 << width):
            value &= (1 << width) - 1
        chars = []
        for position in range(width - 1, -1, -1):
            chars.append("1" if (value >> position) & 1 else "0")
        return cls.from_string("".join(chars))

    @classmethod
    def uninitialized(cls, width: int) -> "StdLogicVector":
        """A vector of ``width`` ``'U'`` values (the initial signal value)."""
        return cls([U] * width)

    @classmethod
    def filled(cls, value: Union[StdLogic, str], width: int) -> "StdLogicVector":
        """A vector of ``width`` copies of ``value``."""
        return cls([StdLogic(value)] * width)

    # -- basic protocol --------------------------------------------------------

    @property
    def width(self) -> int:
        """Number of bits in the vector."""
        return len(self._bits)

    @property
    def bits(self) -> Tuple[StdLogic, ...]:
        """The bits, most significant first."""
        return self._bits

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self) -> Iterator[StdLogic]:
        return iter(self._bits)

    def __getitem__(self, index: Union[int, slice]) -> Union[StdLogic, "StdLogicVector"]:
        if isinstance(index, slice):
            return StdLogicVector(self._bits[index])
        return self._bits[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StdLogicVector):
            return self._bits == other._bits
        if isinstance(other, str):
            return self.to_string() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("StdLogicVector", self._bits))

    def __repr__(self) -> str:
        return f"StdLogicVector({self.to_string()!r})"

    def __str__(self) -> str:
        return f'"{self.to_string()}"'

    def to_string(self) -> str:
        """The unquoted character spelling, most significant bit first."""
        return "".join(b.char for b in self._bits)

    # -- predicates -------------------------------------------------------------

    def is_fully_defined(self) -> bool:
        """True when every bit is a definite zero or one."""
        return all(b.is_defined() for b in self._bits)

    # -- conversions --------------------------------------------------------------

    def to_unsigned(self) -> int:
        """Interpret the vector as an unsigned integer (weak values allowed)."""
        result = 0
        for bit in self._bits:
            result = (result << 1) | bit.to_bit()
        return result

    def to_x01(self) -> "StdLogicVector":
        """Normalise every bit onto {'X', '0', '1'}."""
        return StdLogicVector(b.to_x01() for b in self._bits)

    # -- structural operations -----------------------------------------------------

    def concat(self, other: "StdLogicVector") -> "StdLogicVector":
        """Concatenation (VHDL ``&``): ``self`` supplies the high-order bits."""
        return StdLogicVector(self._bits + other._bits)

    def slice_downto(self, left: int, right: int) -> "StdLogicVector":
        """The semantics' ``split`` for a ``(left downto right)`` slice.

        Indices follow VHDL ``downto`` numbering, i.e. bit ``width-1`` is the
        leftmost (most significant) character of the spelling and bit ``0`` is
        the rightmost.
        """
        if left < right:
            raise SimulationError(
                f"downto slice requires left >= right, got ({left} downto {right})"
            )
        self._check_index(left)
        self._check_index(right)
        start = self.width - 1 - left
        stop = self.width - right
        return StdLogicVector(self._bits[start:stop])

    def set_slice_downto(
        self, left: int, right: int, value: "StdLogicVector"
    ) -> "StdLogicVector":
        """Return a copy with the ``(left downto right)`` slice replaced."""
        if left < right:
            raise SimulationError(
                f"downto slice requires left >= right, got ({left} downto {right})"
            )
        self._check_index(left)
        self._check_index(right)
        expected = left - right + 1
        if value.width != expected:
            raise SimulationError(
                f"slice assignment width mismatch: target has {expected} bits, "
                f"value has {value.width}"
            )
        start = self.width - 1 - left
        stop = self.width - right
        bits = list(self._bits)
        bits[start:stop] = list(value.bits)
        return StdLogicVector(bits)

    def element_downto(self, index: int) -> StdLogic:
        """Single-bit indexing with ``downto`` numbering."""
        self._check_index(index)
        return self._bits[self.width - 1 - index]

    def set_element_downto(self, index: int, value: StdLogic) -> "StdLogicVector":
        """Return a copy with bit ``index`` (``downto`` numbering) replaced."""
        self._check_index(index)
        bits = list(self._bits)
        bits[self.width - 1 - index] = StdLogic(value)
        return StdLogicVector(bits)

    def reversed(self) -> "StdLogicVector":
        """Reverse bit order (used when normalising ``to`` ranges to ``downto``)."""
        return StdLogicVector(reversed(self._bits))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise SimulationError(
                f"vector index {index} out of range for width {self.width}"
            )

    # -- bitwise operators ------------------------------------------------------------

    def _zip_apply(self, other: "StdLogicVector", op) -> "StdLogicVector":
        if not isinstance(other, StdLogicVector):
            raise SimulationError("bitwise operation requires two vectors")
        if self.width != other.width:
            raise SimulationError(
                f"bitwise operation on vectors of different widths "
                f"({self.width} vs {other.width})"
            )
        return StdLogicVector(op(a, b) for a, b in zip(self._bits, other._bits))

    def __and__(self, other: "StdLogicVector") -> "StdLogicVector":
        return self._zip_apply(other, lambda a, b: a & b)

    def __or__(self, other: "StdLogicVector") -> "StdLogicVector":
        return self._zip_apply(other, lambda a, b: a | b)

    def __xor__(self, other: "StdLogicVector") -> "StdLogicVector":
        return self._zip_apply(other, lambda a, b: a ^ b)

    def __invert__(self) -> "StdLogicVector":
        return StdLogicVector(~b for b in self._bits)

    # -- arithmetic (numeric_std-style unsigned) ----------------------------------------

    def _arith(self, other: "StdLogicVector", op) -> "StdLogicVector":
        if not isinstance(other, StdLogicVector):
            raise SimulationError("arithmetic requires two vectors")
        width = max(self.width, other.width)
        if not (self.is_fully_defined() and other.is_fully_defined()):
            return StdLogicVector.filled(X, width)
        result = op(self.to_unsigned(), other.to_unsigned())
        result %= 1 << width
        return StdLogicVector.from_unsigned(result, width)

    def add(self, other: "StdLogicVector") -> "StdLogicVector":
        """Unsigned addition modulo ``2**width`` (``numeric_std`` ``+``)."""
        return self._arith(other, lambda a, b: a + b)

    def sub(self, other: "StdLogicVector") -> "StdLogicVector":
        """Unsigned subtraction modulo ``2**width`` (``numeric_std`` ``-``)."""
        return self._arith(other, lambda a, b: a - b)

    def mul(self, other: "StdLogicVector") -> "StdLogicVector":
        """Unsigned multiplication truncated to ``max(width)`` bits."""
        return self._arith(other, lambda a, b: a * b)

    def shift_left(self, amount: int) -> "StdLogicVector":
        """Logical shift left by ``amount`` bits, filling with ``'0'``."""
        if amount < 0:
            return self.shift_right(-amount)
        amount = min(amount, self.width)
        return StdLogicVector(self._bits[amount:] + (ZERO,) * amount)

    def shift_right(self, amount: int) -> "StdLogicVector":
        """Logical shift right by ``amount`` bits, filling with ``'0'``."""
        if amount < 0:
            return self.shift_left(-amount)
        amount = min(amount, self.width)
        return StdLogicVector((ZERO,) * amount + self._bits[: self.width - amount])

    def rotate_left(self, amount: int) -> "StdLogicVector":
        """Rotate left by ``amount`` bit positions."""
        if self.width == 0:
            return self
        amount %= self.width
        return StdLogicVector(self._bits[amount:] + self._bits[:amount])

    def rotate_right(self, amount: int) -> "StdLogicVector":
        """Rotate right by ``amount`` bit positions."""
        if self.width == 0:
            return self
        amount %= self.width
        return self.rotate_left(self.width - amount)

    # -- comparisons (return StdLogic to stay inside the value domain) -------------------

    def equals(self, other: "StdLogicVector") -> StdLogic:
        """VHDL ``=`` on vectors, returning ``'1'``/``'0'``/``'X'``."""
        if self.width != other.width:
            return ZERO
        if not (self.is_fully_defined() and other.is_fully_defined()):
            return X
        return ONE if self.to_x01() == other.to_x01() else ZERO

    def less_than(self, other: "StdLogicVector") -> StdLogic:
        """Unsigned ``<`` returning ``'1'``/``'0'``/``'X'``."""
        if not (self.is_fully_defined() and other.is_fully_defined()):
            return X
        return ONE if self.to_unsigned() < other.to_unsigned() else ZERO


Value = Union[StdLogic, StdLogicVector]
"""The semantic value domain ``Value = LValue ⊎ AValue`` of the paper."""


def resolve_values(drivers: Sequence[Value]) -> Value:
    """Resolution function ``fs`` lifted to scalars *and* vectors.

    Vector drivers are resolved element-wise; mixing scalar and vector drivers
    for the same signal, or vectors of different widths, is a simulation error
    (the paper's programs never do this, and real VHDL forbids it).
    """
    if not drivers:
        raise SimulationError("resolution of an empty driver multiset")
    if len(drivers) == 1:
        return drivers[0]
    if all(isinstance(d, StdLogic) for d in drivers):
        return StdLogic.resolve(drivers)  # type: ignore[arg-type]
    if all(isinstance(d, StdLogicVector) for d in drivers):
        widths = {d.width for d in drivers}  # type: ignore[union-attr]
        if len(widths) != 1:
            raise SimulationError(
                f"cannot resolve vector drivers of different widths: {sorted(widths)}"
            )
        columns: List[StdLogic] = []
        width = widths.pop()
        for position in range(width):
            columns.append(
                StdLogic.resolve(d.bits[position] for d in drivers)  # type: ignore[union-attr]
            )
        return StdLogicVector(columns)
    raise SimulationError("cannot resolve a mix of scalar and vector drivers")


def value_to_string(value: Value) -> str:
    """Render a value the way VHDL source spells it (``'1'`` or ``"1010"``)."""
    if isinstance(value, StdLogic):
        return f"'{value.char}'"
    return f'"{value.to_string()}"'
