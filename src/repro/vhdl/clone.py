"""Targeted structural cloning of VHDL1 AST fragments.

Elaboration mutates statement bodies in place (name-kind resolution, slice
normalisation, label stamping), so the parse artifact must never be handed to
a :class:`~repro.vhdl.elaborate.Elaborator` directly — it needs a private
copy.  ``copy.deepcopy`` does that job correctly but dominates the cold
elaborate profile: its generic memo machinery visits every dataclass field,
including the immutable ``SourcePosition`` objects that are perfectly safe to
share.  The cloners here walk the closed VHDL1 node set explicitly, share
positions (frozen dataclasses) and copy everything mutable.

An optional ``rename`` hook rewrites every identifier occurrence — assignment
targets, wait sensitivity lists, and name references inside expressions.  The
hierarchy flattener uses it to inline instantiated bodies under per-instance
signal/variable names; plain elaboration passes no hook and gets a verbatim
structural copy.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.vhdl import ast

#: Identity used when no rename hook is supplied.
Rename = Callable[[str], str]


def _keep(name: str) -> str:
    return name


def clone_expression(
    expr: ast.Expression, rename: Optional[Rename] = None
) -> ast.Expression:
    """Clone an expression tree, optionally renaming identifiers."""
    rename = rename or _keep
    return _clone_expr(expr, rename)


def _clone_expr(expr: ast.Expression, rename: Rename) -> ast.Expression:
    if isinstance(expr, ast.Name):
        return ast.Name(
            position=expr.position, ident=rename(expr.ident), kind=expr.kind
        )
    if isinstance(expr, ast.SliceName):
        return ast.SliceName(
            position=expr.position,
            ident=rename(expr.ident),
            left=expr.left,
            right=expr.right,
            direction=expr.direction,
            kind=expr.kind,
        )
    if isinstance(expr, ast.LogicLiteral):
        return ast.LogicLiteral(position=expr.position, value=expr.value)
    if isinstance(expr, ast.VectorLiteral):
        return ast.VectorLiteral(position=expr.position, value=expr.value)
    if isinstance(expr, ast.IntegerLiteral):
        return ast.IntegerLiteral(position=expr.position, value=expr.value)
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            position=expr.position,
            operator=expr.operator,
            operand=_clone_expr(expr.operand, rename),
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            position=expr.position,
            operator=expr.operator,
            left=_clone_expr(expr.left, rename),
            right=_clone_expr(expr.right, rename),
        )
    raise TypeError(f"cannot clone expression node {type(expr).__name__}")


def _clone_optional_expr(
    expr: Optional[ast.Expression], rename: Rename
) -> Optional[ast.Expression]:
    return None if expr is None else _clone_expr(expr, rename)


def clone_statement(
    stmt: ast.Statement, rename: Optional[Rename] = None
) -> ast.Statement:
    """Clone one sequential statement (recursively), optionally renaming."""
    rename = rename or _keep
    return _clone_stmt(stmt, rename)


def _clone_stmt(stmt: ast.Statement, rename: Rename) -> ast.Statement:
    if isinstance(stmt, ast.Null):
        return ast.Null(position=stmt.position, label=stmt.label)
    if isinstance(stmt, ast.VariableAssign):
        return ast.VariableAssign(
            position=stmt.position,
            label=stmt.label,
            target=rename(stmt.target),
            target_slice=stmt.target_slice,
            value=_clone_expr(stmt.value, rename),
        )
    if isinstance(stmt, ast.SignalAssign):
        return ast.SignalAssign(
            position=stmt.position,
            label=stmt.label,
            target=rename(stmt.target),
            target_slice=stmt.target_slice,
            value=_clone_expr(stmt.value, rename),
        )
    if isinstance(stmt, ast.Wait):
        return ast.Wait(
            position=stmt.position,
            label=stmt.label,
            signals=tuple(rename(name) for name in stmt.signals),
            condition=_clone_optional_expr(stmt.condition, rename),
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            position=stmt.position,
            label=stmt.label,
            condition=_clone_expr(stmt.condition, rename),
            then_branch=[_clone_stmt(s, rename) for s in stmt.then_branch],
            else_branch=[_clone_stmt(s, rename) for s in stmt.else_branch],
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            position=stmt.position,
            label=stmt.label,
            condition=_clone_expr(stmt.condition, rename),
            body=[_clone_stmt(s, rename) for s in stmt.body],
        )
    raise TypeError(f"cannot clone statement node {type(stmt).__name__}")


def clone_statements(
    statements: Sequence[ast.Statement], rename: Optional[Rename] = None
) -> List[ast.Statement]:
    """Clone a statement list, optionally renaming identifiers throughout."""
    rename = rename or _keep
    return [_clone_stmt(stmt, rename) for stmt in statements]


def clone_declaration(
    decl: ast.Declaration, rename: Optional[Rename] = None
) -> ast.Declaration:
    """Clone a variable/signal declaration, optionally renaming its name.

    The declared type is shared: elaboration replaces ``to``-ranged types via
    :meth:`~repro.vhdl.ast.StdLogicVectorType.normalized` (a fresh node) rather
    than mutating them, so sharing is safe.
    """
    rename = rename or _keep
    if isinstance(decl, ast.VariableDeclaration):
        return ast.VariableDeclaration(
            position=decl.position,
            name=rename(decl.name),
            var_type=decl.var_type,
            initial=_clone_optional_expr(decl.initial, rename),
        )
    if isinstance(decl, ast.SignalDeclaration):
        return ast.SignalDeclaration(
            position=decl.position,
            name=rename(decl.name),
            sig_type=decl.sig_type,
            initial=_clone_optional_expr(decl.initial, rename),
        )
    raise TypeError(f"cannot clone declaration node {type(decl).__name__}")
