"""Frontend for the VHDL1 fragment of VHDL defined in the paper (Figure 1).

Modules
-------
``stdlogic``
    The IEEE-1164 nine-valued logic domain, its resolution function, logical
    operators and vector arithmetic (Section 2 / Section 3 "basic semantic
    domains").
``ast``
    Abstract syntax tree nodes mirroring the grammar of Figure 1.
``tokens`` / ``lexer`` / ``parser``
    A hand-written lexer and recursive-descent parser accepting concrete VHDL
    syntax for the VHDL1 fragment.
``pretty``
    A pretty printer producing parseable VHDL1 source from an AST.
``elaborate``
    Elaboration into a :class:`~repro.vhdl.elaborate.Design`: entity/architecture
    binding, rewriting concurrent signal assignments to processes, flattening
    blocks, normalising ``to`` ranges to ``downto`` (Section 3.3).
``typecheck``
    Static well-formedness checks (declared names, vector widths, port modes).
"""

from repro.vhdl.parser import parse_program, parse_statement, parse_expression
from repro.vhdl.elaborate import elaborate, Design, Process
from repro.vhdl.stdlogic import StdLogic, StdLogicVector

__all__ = [
    "parse_program",
    "parse_statement",
    "parse_expression",
    "elaborate",
    "Design",
    "Process",
    "StdLogic",
    "StdLogicVector",
]
