"""Generic Monotone-Framework machinery (the paper's analyses are instances).

The Reaching Definitions analyses of Section 4 are forward data-flow analyses
over powerset lattices.  :mod:`repro.dataflow.framework` provides the instance
description (:class:`~repro.dataflow.framework.DataflowInstance`) and
:mod:`repro.dataflow.worklist` the chaotic-iteration solver computing the
least solution of the equation system.
"""

from repro.dataflow.framework import DataflowInstance, DataflowSolution, JoinMode
from repro.dataflow.worklist import solve

__all__ = ["DataflowInstance", "DataflowSolution", "JoinMode", "solve"]
