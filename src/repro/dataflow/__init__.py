"""Generic Monotone-Framework machinery (the paper's analyses are instances).

The Reaching Definitions analyses of Section 4 are forward data-flow analyses
over powerset lattices.  :mod:`repro.dataflow.framework` provides the instance
description (:class:`~repro.dataflow.framework.DataflowInstance`),
:mod:`repro.dataflow.universe` the fact interner that turns fact sets into
int bitsets, and :mod:`repro.dataflow.worklist` the chaotic-iteration solvers
(bitset engine and frozenset oracle) computing the least solution of the
equation system.
"""

from repro.dataflow.framework import DataflowInstance, DataflowSolution, JoinMode
from repro.dataflow.universe import FactUniverse
from repro.dataflow.worklist import solve, solve_sets

__all__ = [
    "DataflowInstance",
    "DataflowSolution",
    "FactUniverse",
    "JoinMode",
    "solve",
    "solve_sets",
]
