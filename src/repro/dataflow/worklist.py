"""Worklist solver computing the least solution of a Monotone Framework.

Two interchangeable engines compute the same least solution:

* :func:`solve` — the production engine.  Every fact occurring in a kill, gen
  or extremal set is interned into a :class:`~repro.dataflow.universe.FactUniverse`
  and the chaotic iteration runs entirely on Python-int bitsets: the transfer
  function is ``(entry & ~kill) | gen`` and joins are word-wise ``|`` (may
  analyses) or ``&`` (the paper's dotted intersection ``⋂˙``, which yields
  ``0`` for an empty family of predecessors).  The worklist is prioritised by
  reverse postorder of the flow graph, so acyclic stretches converge in one
  sweep.  The solution is decoded back to frozensets at the boundary, so
  callers never see bitsets.
* :func:`solve_sets` — the original frozenset implementation, kept verbatim as
  the cross-check oracle (``tests/test_bitset_backend.py`` asserts both
  engines agree on the paper programs, the AES rounds and randomized
  programs).

Because every equation right-hand side is monotone and the lattices are
finite, both iterations terminate in the least solution — the solution the
paper requires ("the smallest solution to the equation systems").
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from typing import Deque, Dict, FrozenSet, List, Set, Tuple, TypeVar

from repro.dataflow.framework import DataflowInstance, DataflowSolution, EMPTY, JoinMode
from repro.dataflow.universe import FactUniverse

Fact = TypeVar("Fact")


def reverse_postorder(
    labels: FrozenSet[int],
    successors: Dict[int, List[int]],
    roots: FrozenSet[int],
) -> Dict[int, int]:
    """Rank every label by reverse postorder of a DFS from ``roots``.

    Labels unreachable from the roots are ranked after all reachable ones, in
    ascending label order, so the result is a total, deterministic priority.
    """
    postorder: List[int] = []
    visited: Set[int] = set()
    for root in sorted(roots):
        if root in visited:
            continue
        # Iterative DFS with an explicit (label, child-iterator) stack.
        stack: List[Tuple[int, int]] = [(root, 0)]
        visited.add(root)
        while stack:
            label, child_index = stack[-1]
            children = successors.get(label, ())
            if child_index < len(children):
                stack[-1] = (label, child_index + 1)
                child = children[child_index]
                if child not in visited:
                    visited.add(child)
                    stack.append((child, 0))
            else:
                stack.pop()
                postorder.append(label)
    order = {label: rank for rank, label in enumerate(reversed(postorder))}
    for label in sorted(labels - visited):
        order[label] = len(order)
    return order


def solve(instance: DataflowInstance) -> DataflowSolution:
    """Compute the least solution of ``instance`` on the bitset engine."""
    predecessors: Dict[int, List[int]] = defaultdict(list)
    successors: Dict[int, List[int]] = defaultdict(list)
    for src, dst in instance.flow:
        predecessors[dst].append(src)
        successors[src].append(dst)

    universe: FactUniverse = FactUniverse()
    extremal_bits: Dict[int, int] = {
        label: universe.encode(instance.extremal_value.get(label, ()))
        for label in instance.extremal_labels
    }
    not_kill: Dict[int, int] = {}
    gen_bits: Dict[int, int] = {}
    for label in instance.labels:
        not_kill[label] = ~universe.encode(instance.kill.get(label, ()))
        gen_bits[label] = universe.encode(instance.gen.get(label, ()))

    entry: Dict[int, int] = {}
    exit_: Dict[int, int] = {}
    for label in instance.labels:
        entry[label] = extremal_bits.get(label, 0)
        exit_[label] = (entry[label] & not_kill[label]) | gen_bits[label]

    order = reverse_postorder(instance.labels, successors, instance.extremal_labels)
    worklist: List[Tuple[int, int]] = [(order[label], label) for label in instance.labels]
    heapq.heapify(worklist)
    queued: Set[int] = set(instance.labels)
    union_join = instance.join_mode is JoinMode.UNION
    iterations = 0

    while worklist:
        _, label = heapq.heappop(worklist)
        if label not in queued:
            continue
        queued.discard(label)
        iterations += 1

        if label in extremal_bits:
            # The paper's equations give extremal labels exactly the extremal
            # value ("∅ if l = init(ss_i)"); entries are isolated, so there are
            # no incoming edges to join anyway.
            new_entry = extremal_bits[label]
        else:
            incoming = predecessors.get(label)
            if not incoming:
                new_entry = 0
            elif union_join:
                new_entry = 0
                for pred in incoming:
                    new_entry |= exit_[pred]
            else:
                new_entry = exit_[incoming[0]]
                for pred in incoming[1:]:
                    new_entry &= exit_[pred]

        new_exit = (new_entry & not_kill[label]) | gen_bits[label]
        changed = new_entry != entry[label] or new_exit != exit_[label]
        entry[label] = new_entry
        exit_[label] = new_exit
        if changed:
            for succ in successors.get(label, []):
                if succ not in queued:
                    heapq.heappush(worklist, (order[succ], succ))
                    queued.add(succ)

    # Adjacent labels usually share bitsets (exit(l) == entry(l')), so decode
    # each distinct bitset once.
    decoded: Dict[int, FrozenSet] = {}

    def decode(bits: int) -> FrozenSet:
        value = decoded.get(bits)
        if value is None:
            value = decoded[bits] = universe.decode(bits)
        return value

    return DataflowSolution(
        entry={label: decode(bits) for label, bits in entry.items()},
        exit={label: decode(bits) for label, bits in exit_.items()},
        iterations=iterations,
    )


def solve_sets(instance: DataflowInstance) -> DataflowSolution:
    """The original frozenset engine, kept as the cross-check oracle."""
    predecessors: Dict[int, List[int]] = defaultdict(list)
    successors: Dict[int, List[int]] = defaultdict(list)
    for src, dst in instance.flow:
        predecessors[dst].append(src)
        successors[src].append(dst)

    entry: Dict[int, FrozenSet] = {}
    exit_: Dict[int, FrozenSet] = {}
    for label in instance.labels:
        if label in instance.extremal_labels:
            entry[label] = frozenset(instance.extremal_value.get(label, EMPTY))
        else:
            entry[label] = EMPTY
        exit_[label] = instance.transfer(label, entry[label])

    worklist: Deque[int] = deque(sorted(instance.labels))
    queued: Set[int] = set(worklist)
    iterations = 0

    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        iterations += 1

        if label in instance.extremal_labels:
            new_entry = frozenset(instance.extremal_value.get(label, EMPTY))
        else:
            incoming = [exit_[pred] for pred in predecessors.get(label, [])]
            new_entry = instance.join(incoming)

        new_exit = instance.transfer(label, new_entry)
        changed = new_entry != entry[label] or new_exit != exit_[label]
        entry[label] = new_entry
        exit_[label] = new_exit
        if changed:
            for succ in successors.get(label, []):
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)

    return DataflowSolution(entry=entry, exit=exit_, iterations=iterations)
