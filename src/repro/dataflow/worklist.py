"""Worklist solver computing the least solution of a Monotone Framework.

The solver performs chaotic iteration starting from the bottom element (the
empty set at every label except the extremal ones), re-evaluating a label's
entry equation from *all* of its predecessors whenever one of them changes.
Because every equation right-hand side (union, the dotted intersection,
``\\ kill`` and ``∪ gen``) is monotone and the lattices are finite, the
iteration terminates in the least solution — the solution the paper requires
("the smallest solution to the equation systems").
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, FrozenSet, List, Set, TypeVar

from repro.dataflow.framework import DataflowInstance, DataflowSolution, EMPTY

Fact = TypeVar("Fact")


def solve(instance: DataflowInstance) -> DataflowSolution:
    """Compute the least solution of ``instance`` by worklist iteration."""
    predecessors: Dict[int, List[int]] = defaultdict(list)
    successors: Dict[int, List[int]] = defaultdict(list)
    for src, dst in instance.flow:
        predecessors[dst].append(src)
        successors[src].append(dst)

    entry: Dict[int, FrozenSet] = {}
    exit_: Dict[int, FrozenSet] = {}
    for label in instance.labels:
        if label in instance.extremal_labels:
            entry[label] = frozenset(instance.extremal_value.get(label, EMPTY))
        else:
            entry[label] = EMPTY
        exit_[label] = instance.transfer(label, entry[label])

    worklist: Deque[int] = deque(sorted(instance.labels))
    queued: Set[int] = set(worklist)
    iterations = 0

    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        iterations += 1

        if label in instance.extremal_labels:
            # The paper's equations give extremal labels exactly the extremal
            # value ("∅ if l = init(ss_i)"); entries are isolated, so there are
            # no incoming edges to join anyway.
            new_entry = frozenset(instance.extremal_value.get(label, EMPTY))
        else:
            incoming = [exit_[pred] for pred in predecessors.get(label, [])]
            new_entry = instance.join(incoming)

        new_exit = instance.transfer(label, new_entry)
        changed = new_entry != entry[label] or new_exit != exit_[label]
        entry[label] = new_entry
        exit_[label] = new_exit
        if changed:
            for succ in successors.get(label, []):
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)

    return DataflowSolution(entry=entry, exit=exit_, iterations=iterations)
