"""Fact interning: the bridge between set-based specifications and bitsets.

The paper's complexity argument ("three bit-vector frameworks, each being
linear time in practice") presumes that lattice elements are actual bit
vectors.  :class:`FactUniverse` assigns every distinct fact a small integer
index, so a set of facts becomes a Python ``int`` used as an arbitrary-width
bit vector: union is ``|``, intersection ``&``, difference ``x & ~y`` — all
machine-word operations instead of per-element hashing.

The interner is append-only: indices are allocated in first-intern order and
never change, which makes bitsets from the same universe directly comparable
and keeps decoding deterministic (facts come back in interning order, and
:meth:`decode` sorts where the caller needs canonical output).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, Iterable, Iterator, List, TypeVar

Fact = TypeVar("Fact")


def _dense_rendering(bits: int) -> "str | None":
    """``bits`` as a reversed binary string when dense enough, else ``None``.

    Dense bitsets are rendered once at C level (``bin``) and scanned as a
    string (character ``i`` is bit ``i``), which beats per-bit bigint
    arithmetic by a wide margin; sparse bitsets should use the lowest-set-bit
    loop instead.  The density threshold and the subtle ``[:1:-1]`` reversal
    live only here, shared by :func:`bit_indices` and
    :meth:`FactUniverse.decode_list`.
    """
    if bits.bit_count() * 3 >= bits.bit_length():
        return bin(bits)[:1:-1]
    return None


def bit_indices(bits: int) -> List[int]:
    """The set bit positions of ``bits``, ascending."""
    rendered = _dense_rendering(bits)
    if rendered is not None:
        return [index for index, bit in enumerate(rendered) if bit == "1"]
    result: List[int] = []
    append = result.append
    while bits:
        low = bits & -bits
        append(low.bit_length() - 1)
        bits ^= low
    return result


class FactUniverse(Generic[Fact]):
    """An append-only bijection between facts and bit positions."""

    __slots__ = ("_index", "_facts")

    def __init__(self, facts: Iterable[Fact] = ()):
        self._index: Dict[Fact, int] = {}
        self._facts: List[Fact] = []
        for fact in facts:
            self.intern(fact)

    # -- interning -----------------------------------------------------------

    def intern(self, fact: Fact) -> int:
        """The index of ``fact``, allocating a fresh bit position if new."""
        index = self._index.get(fact)
        if index is None:
            index = len(self._facts)
            self._index[fact] = index
            self._facts.append(fact)
        return index

    def intern_all(self, facts: Iterable[Fact]) -> None:
        """Intern every fact of ``facts``."""
        for fact in facts:
            self.intern(fact)

    # -- lookups -------------------------------------------------------------

    def index_of(self, fact: Fact) -> int:
        """The index of an already-interned fact (``KeyError`` if unknown)."""
        return self._index[fact]

    def fact_of(self, index: int) -> Fact:
        """The fact at bit position ``index``."""
        return self._facts[index]

    def __contains__(self, fact: object) -> bool:
        return fact in self._index

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __repr__(self) -> str:
        return f"FactUniverse({len(self._facts)} facts)"

    # -- bitset conversion ---------------------------------------------------

    def encode(self, facts: Iterable[Fact]) -> int:
        """The bitset of ``facts`` (interning any that are new)."""
        bits = 0
        for fact in facts:
            bits |= 1 << self.intern(fact)
        return bits

    def encode_known(self, facts: Iterable[Fact]) -> int:
        """Like :meth:`encode` but raising ``KeyError`` on unknown facts."""
        bits = 0
        index = self._index
        for fact in facts:
            bits |= 1 << index[fact]
        return bits

    def decode_iter(self, bits: int) -> Iterator[Fact]:
        """The facts of a bitset, in ascending bit-position order."""
        facts = self._facts
        while bits:
            low = bits & -bits
            yield facts[low.bit_length() - 1]
            bits ^= low

    def decode_list(self, bits: int) -> List[Fact]:
        """The facts of a bitset as a list, in ascending bit-position order."""
        facts = self._facts
        rendered = _dense_rendering(bits)
        if rendered is not None:
            return [facts[i] for i, bit in enumerate(rendered) if bit == "1"]
        return [facts[i] for i in bit_indices(bits)]

    def decode(self, bits: int) -> FrozenSet[Fact]:
        """The facts of a bitset as a frozenset."""
        return frozenset(self.decode_list(bits))
