"""Description of a Monotone Framework instance over a powerset lattice.

An instance packages exactly the ingredients used in Tables 4 and 5 of the
paper:

* a finite set of labels and a flow relation over them;
* the extremal labels and the extremal value ``ι`` attached to them;
* ``kill`` and ``gen`` sets per label (the transfer functions are the usual
  bit-vector ``exit(l) = (entry(l) \\ kill(l)) ∪ gen(l)``);
* a *join mode*: either ``UNION`` (may analyses, e.g. ``RD∪``) or
  ``INTERSECTION_DOTTED`` (the paper's ``⋂˙`` used by the under-approximation
  ``RD∩``, where a join over the empty set yields ``∅`` rather than the top
  element, guaranteeing ``RD∩ ⊆ RD∪`` in the least solution).

The *description* is set-based — kill/gen/extremal values are frozensets of
arbitrary hashable facts, which keeps the instance builders a literal
transcription of the paper's tables.  The *solver*
(:func:`repro.dataflow.worklist.solve`) does not iterate these sets: it
interns every fact into a :class:`repro.dataflow.universe.FactUniverse` and
runs the fixpoint on Python-int bitsets, where the transfer function is
``(entry & ~kill) | gen`` and joins are ``|`` / ``&`` over machine words —
the actual bit-vector framework the paper's complexity claim refers to.
Frozensets only reappear at the boundary, when the solution is decoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, FrozenSet, Generic, Iterable, Mapping, Set, Tuple, TypeVar

Fact = TypeVar("Fact")
Label = int
Edge = Tuple[Label, Label]

EMPTY: frozenset = frozenset()


class JoinMode(Enum):
    """How information from several incoming edges is combined."""

    UNION = "union"
    INTERSECTION_DOTTED = "intersection-dotted"


@dataclass
class DataflowInstance(Generic[Fact]):
    """A forward Monotone Framework instance with bit-vector transfer functions."""

    labels: FrozenSet[Label]
    flow: FrozenSet[Edge]
    extremal_labels: FrozenSet[Label]
    extremal_value: Mapping[Label, FrozenSet[Fact]]
    kill: Mapping[Label, FrozenSet[Fact]]
    gen: Mapping[Label, FrozenSet[Fact]]
    join_mode: JoinMode = JoinMode.UNION

    def __post_init__(self) -> None:
        missing = {src for src, _ in self.flow} | {dst for _, dst in self.flow}
        missing -= set(self.labels)
        if missing:
            raise ValueError(f"flow mentions labels not in the label set: {sorted(missing)}")
        unknown_extremal = set(self.extremal_labels) - set(self.labels)
        if unknown_extremal:
            raise ValueError(
                f"extremal labels not in the label set: {sorted(unknown_extremal)}"
            )

    # -- helpers used by the solver ------------------------------------------------

    def predecessor_map(self) -> Dict[Label, Tuple[Label, ...]]:
        """The full predecessor adjacency, built once and cached.

        Use this (or :meth:`predecessors`) instead of scanning ``flow``:
        building the map is O(|flow|) on first use and every later lookup is a
        dict access.
        """
        cached = getattr(self, "_predecessor_map", None)
        if cached is None:
            collected: Dict[Label, list] = {}
            for src, dst in self.flow:
                collected.setdefault(dst, []).append(src)
            cached = {dst: tuple(srcs) for dst, srcs in collected.items()}
            object.__setattr__(self, "_predecessor_map", cached)
        return cached

    def predecessors(self, label: Label) -> Tuple[Label, ...]:
        """Labels with an edge into ``label`` (one O(|flow|) pass, then cached)."""
        return self.predecessor_map().get(label, ())

    def transfer(self, label: Label, entry: FrozenSet[Fact]) -> FrozenSet[Fact]:
        """``exit(l) = (entry(l) \\ kill(l)) ∪ gen(l)``."""
        return (entry - self.kill.get(label, EMPTY)) | self.gen.get(label, EMPTY)

    def join(self, values: Iterable[FrozenSet[Fact]]) -> FrozenSet[Fact]:
        """Combine incoming exit values according to the join mode.

        For :data:`JoinMode.INTERSECTION_DOTTED` the paper's ``⋂˙`` is used:
        the intersection of a *non-empty* family, and ``∅`` for the empty
        family.
        """
        collected = list(values)
        if not collected:
            return EMPTY
        if self.join_mode is JoinMode.UNION:
            result: Set[Fact] = set()
            for value in collected:
                result |= value
            return frozenset(result)
        result = set(collected[0])
        for value in collected[1:]:
            result &= value
        return frozenset(result)


@dataclass
class DataflowSolution(Generic[Fact]):
    """The least solution: per-label entry and exit sets."""

    entry: Dict[Label, FrozenSet[Fact]] = field(default_factory=dict)
    exit: Dict[Label, FrozenSet[Fact]] = field(default_factory=dict)
    iterations: int = 0

    def entry_of(self, label: Label) -> FrozenSet[Fact]:
        """Entry value at ``label`` (``∅`` for unknown labels)."""
        return self.entry.get(label, EMPTY)

    def exit_of(self, label: Label) -> FrozenSet[Fact]:
        """Exit value at ``label`` (``∅`` for unknown labels)."""
        return self.exit.get(label, EMPTY)
