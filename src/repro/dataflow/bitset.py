"""Pluggable bitset backends for the closure / flow-graph hot paths.

Name-sets everywhere in the analysis are Python ints used as bitsets (see
:mod:`repro.dataflow.universe`).  CPython's arbitrary-precision ints make
``|``/``&`` on them a single C loop, which is hard to beat — but at the
32×128-chain scale the bitsets grow to thousands of bits, and a word-packed
representation (one ``uint64`` numpy row per set) can OR in place without
allocating a fresh big-int per operation.  Which representation wins is an
empirical question per phase, so this module keeps **both**:

* ``"int"`` — the plain Python-int bitset paths (always available);
* ``"words"`` — numpy ``<u8`` word arrays, used by the word paths in
  :func:`repro.analysis.closure.propagate` and
  :meth:`repro.analysis.flowgraph.FlowGraph.from_resource_matrix`.

:data:`DEFAULT_SELECTION` records the winner per phase as measured by
``benchmarks/bench_scaling.py`` (the ``closure_backend`` phases) on the
32×128 chain workload; see docs/performance.md for the numbers.  The
selection is part of the artifact cache key for the ``closure`` and
``flow_graph`` stages (:func:`repro.pipeline.stages.stage_key`), so cached
artifacts can never leak across backends — and the test suite asserts the
rendered analyze/check/lint JSON is byte-identical across both anyway.

Override order for :func:`backend_for`: an active :func:`force_backend`
context beats the ``VHDL_IFA_BITSET_BACKEND`` environment variable, which
beats :data:`DEFAULT_SELECTION`.  Unknown names and a missing numpy both
fall back to ``"int"`` — the module never raises over configuration, so the
analysis runs identically (if more slowly) on a numpy-less interpreter.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

try:  # pragma: no cover - exercised implicitly by backend_for()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None  # type: ignore[assignment]

#: Backend names.
INT = "int"
WORDS = "words"

#: True when the word-packed backend can actually run.
HAVE_WORD_BACKEND = _np is not None

#: Environment override: ``VHDL_IFA_BITSET_BACKEND=int|words``.
ENV_VAR = "VHDL_IFA_BITSET_BACKEND"

#: The benchmarked winner per phase (``benchmarks/bench_scaling.py``,
#: ``closure_backend[...]`` / ``flow_graph_backend[...]`` on 32×128 chains).
#: Python ints win both phases on CPython 3.11: one big-int OR is a single
#: allocation-plus-C-loop, while the numpy path pays per-call dispatch on
#: rows of only a few hundred words.  The word backend stays selectable (and
#: continuously cross-checked) for wider universes and other interpreters.
DEFAULT_SELECTION: Dict[str, str] = {
    "closure": INT,
    "flow_graph": INT,
}

_FORCED: Optional[str] = None


def _normalize(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    name = name.strip().lower()
    if name not in (INT, WORDS):
        return None
    if name == WORDS and not HAVE_WORD_BACKEND:
        return INT
    return name


def backend_for(phase: str) -> str:
    """The backend to use for ``phase`` (``"closure"``/``"flow_graph"``).

    Resolution order: :func:`force_backend` context, then the
    ``VHDL_IFA_BITSET_BACKEND`` environment variable, then
    :data:`DEFAULT_SELECTION`; anything unknown or unavailable degrades to
    ``"int"``.
    """
    forced = _normalize(_FORCED)
    if forced is not None:
        return forced
    env = _normalize(os.environ.get(ENV_VAR))
    if env is not None:
        return env
    return _normalize(DEFAULT_SELECTION.get(phase)) or INT


@contextmanager
def force_backend(name: str) -> Iterator[None]:
    """Force every phase onto backend ``name`` for the duration of the block.

    Used by the byte-identity tests and the per-backend benchmark phases.
    Nesting restores the previous forcing on exit.
    """
    global _FORCED
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous


# ---------------------------------------------------------------------------
# Word packing
# ---------------------------------------------------------------------------


def words_for(bit_length: int) -> int:
    """How many 64-bit words hold ``bit_length`` bits (at least one)."""
    return (bit_length + 63) // 64 if bit_length > 0 else 1


def pack(value: int, words: int):
    """Pack a non-negative int bitset into a fresh ``<u8`` word array."""
    return _np.frombuffer(
        value.to_bytes(words * 8, "little"), dtype="<u8"
    ).copy()


def unpack(row) -> int:
    """Unpack a ``<u8`` word array back into a Python int bitset."""
    return int.from_bytes(row.tobytes(), "little")
