"""The v1 public API: one :class:`Workspace` behind every frontend.

A :class:`Workspace` is the session object the CLI, the batch driver and the
serve mode are all thin shells over.  It owns the three pieces of session
state the toolchain has grown:

* one :class:`~repro.dataflow.universe.FactUniverse` of interned resource
  names (for callers that *pool* several analyses at the bitset level);
* one artifact cache — in-memory, tiered over a ``cache_dir``, or none —
  threaded through a single long-lived
  :class:`~repro.pipeline.stages.Pipeline`;
* a registry of *named* policies, loadable from declarative TOML/JSON
  documents (:mod:`repro.security.policy_file`).

The facade exposes five verbs::

    ws = Workspace(cache_dir=".ifa-cache")
    result  = ws.analyze(source)                      # AnalysisResult
    checked = ws.check(source, policy="mls")          # CheckResult
    linted  = ws.lint(source)                         # LintResult
    report  = ws.batch(["a.vhd", "b.vhd"])            # BatchReport
    ws.stats()                                        # session statistics

Hierarchical designs (component instantiations) are handled on every verb:
``analyze`` auto-routes them through the summary linker of
:mod:`repro.hier` (``analyze_hierarchy`` / ``analyze_hierarchy_run`` are
the explicit forms, with ``flatten=True`` forcing the flattening oracle);
``check``/``lint``/``batch`` substitute the flattened equivalent
transparently — see ``docs/hierarchy.md``.

plus the ``*_run`` variants returning the full
:class:`~repro.pipeline.artifacts.PipelineResult` (per-stage timings, cache
hits) the JSON document builders consume.  The legacy free functions
(:func:`repro.analysis.api.analyze` and friends) remain supported thin
wrappers with byte-identical output; new code should construct a
``Workspace``.

Universe discipline: by default each ``analyze``/``check`` call keeps the
pipeline's per-run universe semantics (independent runs share no interned
names, and cached universe-bound artifacts adopt their stored universe).
Pass ``pool_universe=True`` to thread the workspace's own universe through a
run instead — its matrices then compare and combine bitset-natively with
other pooled runs, at the cost of bypassing the universe-bound cache tiers
(a cached matrix from another universe would not be poolable).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.lint import LintConfig, findings_fail
from repro.dataflow.universe import FactUniverse
from repro.errors import PolicyError
from repro.hier.flatten import flatten_source, may_instantiate
from repro.hier.link import link_hierarchy
from repro.hier.structure import has_instantiations
from repro.pipeline.artifacts import AnalysisOptions, AnalysisResult, PipelineResult
from repro.pipeline.batch import BatchJob, BatchReport, expand_jobs, run_batch
from repro.pipeline.cache import open_cache
from repro.pipeline.render import check_document, lint_document, render_lint_text
from repro.pipeline.stages import Pipeline
from repro.security.policy import FlowPolicy
from repro.security.policy_file import load_policy_file, policy_from_dict
from repro.security.report import Diagnostic

#: Anything :meth:`Workspace.policy` resolves: a policy object, a registered
#: name, a parsed policy document, or a path to a policy file.
PolicySpec = Union[FlowPolicy, str, Dict[str, Any], os.PathLike]

_UNSET = object()


@dataclass
class CheckResult:
    """The outcome of one :meth:`Workspace.check`.

    Bundles the covert-channel report with the policy that was enforced and
    the underlying pipeline run (timings, cache hits, artifacts).
    """

    run: PipelineResult
    policy: FlowPolicy
    report: Any

    @property
    def clean(self) -> bool:
        """True when no policy violation was found."""
        return self.report.is_clean

    @property
    def violations(self) -> List[Any]:
        """The raw :class:`~repro.security.policy.PolicyViolation` records."""
        return list(self.report.violations)

    @property
    def diagnostics(self) -> List[Any]:
        """The violations as structured :class:`Diagnostic` records."""
        return self.report.diagnostics

    @property
    def result(self) -> AnalysisResult:
        """The full analysis result the check ran on."""
        return self.run.result

    @property
    def exit_code(self) -> int:
        """The CLI convention: 0 clean, 3 when a violation was found."""
        return 0 if self.clean else 3

    def to_text(self) -> str:
        """The human-readable report (what ``vhdl-ifa check`` prints)."""
        return self.report.to_text()

    def document(self, file: Optional[str] = None) -> Dict[str, Any]:
        """The complete ``check`` JSON document (``vhdl-ifa/v1``)."""
        return check_document(self.run, self.policy, file=file)


@dataclass
class LintResult:
    """The outcome of one :meth:`Workspace.lint`.

    ``findings`` already reflect the applied :class:`LintConfig` (rule
    selection, severity overrides) and are deterministically ordered;
    ``run.artifacts.lint`` keeps the cached full-catalog tuple.
    """

    run: PipelineResult
    config: LintConfig
    findings: List[Diagnostic]
    fail_on: str = "error"

    @property
    def clean(self) -> bool:
        """True when no finding survived the configuration."""
        return not self.findings

    @property
    def result(self) -> AnalysisResult:
        """The full analysis result the lint ran on."""
        return self.run.result

    @property
    def exit_code(self) -> int:
        """The CLI convention: 0 clean, 3 when ``--fail-on`` is tripped."""
        return 3 if findings_fail(self.findings, self.fail_on) else 0

    def to_text(self) -> str:
        """The human-readable report (what ``vhdl-ifa lint`` prints)."""
        return render_lint_text(self.result.design.name, self.findings)

    def document(self, file: Optional[str] = None) -> Dict[str, Any]:
        """The complete ``lint`` JSON document (``vhdl-ifa/v1``)."""
        return lint_document(self.run, self.findings, file=file)


class Workspace:
    """The session facade: one universe, one cache, named policies.

    ``cache_dir`` persists artifacts on disk (tiered under an in-memory
    front); ``memory_cache=False`` with no ``cache_dir`` disables caching
    for single-shot use; passing ``cache=`` explicitly (including ``None``)
    overrides both.  ``policies`` pre-registers named policies — values may
    be :class:`FlowPolicy` objects, parsed policy documents (dicts) or
    policy-file paths.
    """

    def __init__(
        self,
        *,
        cache_dir: Optional[str] = None,
        cache: Any = _UNSET,
        memory_cache: bool = True,
        universe: Optional[FactUniverse] = None,
        policies: Optional[Dict[str, PolicySpec]] = None,
    ):
        # Caching is *disabled* only when the caller explicitly passes
        # cache=None (the CLI's --no-cache).  A workspace that merely has no
        # shared cache (memory_cache=False, no cache_dir) still lets batch
        # pool workers keep their own per-worker in-memory tier.
        self.no_cache = cache is None
        if cache is _UNSET:
            cache = open_cache(cache_dir, memory=memory_cache)
            self.no_cache = False
        self.cache = cache
        self.cache_dir = cache_dir
        self.universe = universe if universe is not None else FactUniverse()
        self.pipeline = Pipeline(cache)
        self._policies: Dict[str, FlowPolicy] = {}
        for name, spec in (policies or {}).items():
            self.register_policy(name, spec)

    # ------------------------------------------------------------- policies

    @property
    def policies(self) -> Dict[str, FlowPolicy]:
        """The registered policies, name → policy (a copy)."""
        return dict(self._policies)

    def register_policy(self, name: str, policy: PolicySpec) -> FlowPolicy:
        """Register ``policy`` (resolved via :meth:`policy`) under ``name``."""
        resolved = self.policy(policy)
        self._policies[name] = resolved
        return resolved

    def load_policy(
        self, path: "str | os.PathLike[str]", name: Optional[str] = None
    ) -> FlowPolicy:
        """Load a TOML/JSON policy file and register it.

        The registry name is ``name``, else the document's own ``name`` key,
        else the file stem.
        """
        policy = load_policy_file(path)
        register_as = name or policy.name or Path(path).stem
        self._policies[register_as] = policy
        return policy

    def policy(self, spec: PolicySpec) -> FlowPolicy:
        """Resolve a policy: an object as-is, a ``dict`` as a declarative
        document, a path as a file, and a ``str`` as a registered name
        first, else as a path to an existing policy file."""
        if isinstance(spec, FlowPolicy):
            return spec
        if isinstance(spec, dict):
            return policy_from_dict(spec)
        if isinstance(spec, str):
            registered = self._policies.get(spec)
            if registered is not None:
                return registered
            if os.path.exists(spec):
                return load_policy_file(spec)
            known = ", ".join(sorted(self._policies)) or "(none)"
            raise PolicyError(
                f"unknown policy {spec!r}: not a registered policy "
                f"(registered: {known}) and no such policy file"
            )
        if isinstance(spec, os.PathLike):
            return load_policy_file(spec)
        raise PolicyError(
            "expected a FlowPolicy, a registered policy name, a policy "
            f"document or a policy-file path, got {type(spec).__name__}"
        )

    # -------------------------------------------------------------- analyse

    @staticmethod
    def _options(
        entity: Optional[str],
        improved: bool,
        loop_processes: bool,
        use_under_approximation: bool,
    ) -> AnalysisOptions:
        return AnalysisOptions(
            entity=entity,
            improved=improved,
            loop_processes=loop_processes,
            use_under_approximation=use_under_approximation,
        )

    def analyze(self, source: str, **opts: Any) -> AnalysisResult:
        """Run the full Information Flow analysis on VHDL1 source text.

        Accepts the keyword options of :meth:`analyze_run` and returns the
        :class:`AnalysisResult` artifact bundle.
        """
        return self.analyze_run(source, **opts).result

    def analyze_run(
        self,
        source: str,
        *,
        entity: Optional[str] = None,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        until: Optional[str] = None,
        pool_universe: bool = False,
        profile: bool = False,
        hierarchy: str = "link",
    ) -> PipelineResult:
        """As :meth:`analyze`, returning the staged :class:`PipelineResult`.

        ``profile=True`` runs every computed stage under cProfile; the
        per-stage hot spots are on ``PipelineResult.stage_profiles`` (this
        is what ``vhdl-ifa analyze --profile`` prints).

        A source with component instantiations is routed through
        :mod:`repro.hier` instead of the flat pipeline: ``hierarchy="link"``
        (the default) composes cached per-entity summaries,
        ``hierarchy="flatten"`` analyses the flattened program — the two are
        byte-identical — and ``hierarchy="reject"`` restores the flat
        pipeline's refusal.  ``until`` (a flat-stage name) and ``profile``
        only apply on the flat and flatten routes.
        """
        options = self._options(
            entity, improved, loop_processes, use_under_approximation
        )
        universe = self.universe if pool_universe else None
        if until is None and hierarchy != "reject" and may_instantiate(source):
            program = self._parsed(source)
            if has_instantiations(program):
                if hierarchy == "flatten":
                    return self.pipeline.run(
                        flatten_source(program, entity),
                        options,
                        universe=universe,
                        profile=profile,
                    )
                if hierarchy != "link":
                    raise ValueError(
                        f"hierarchy must be 'link', 'flatten' or 'reject', "
                        f"got {hierarchy!r}"
                    )
                return link_hierarchy(
                    program,
                    options,
                    cache=self.cache,
                    universe=universe,
                )
        return self.pipeline.run(
            source,
            options,
            universe=universe,
            until=until,
            profile=profile,
        )

    def analyze_hierarchy(self, source: str, **opts: Any) -> AnalysisResult:
        """Analyse a hierarchical design (instantiations resolved and linked).

        Accepts the keyword options of :meth:`analyze_hierarchy_run` and
        returns the whole-design :class:`AnalysisResult`.
        """
        return self.analyze_hierarchy_run(source, **opts).result

    def analyze_hierarchy_run(
        self,
        source: str,
        *,
        entity: Optional[str] = None,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        flatten: bool = False,
        pool_universe: bool = False,
    ) -> PipelineResult:
        """Analyse a hierarchical design, returning the staged result.

        ``entity`` selects the hierarchy root (inferred when ``None``); by
        default the compositional linker runs (per-entity summaries served
        from the workspace cache), ``flatten=True`` forces the flattening
        oracle through the ordinary pipeline — byte-identical output either
        way.  Unlike :meth:`analyze_run` this does not auto-detect: a flat
        program is simply a hierarchy of zero instances.
        """
        options = self._options(
            entity, improved, loop_processes, use_under_approximation
        )
        universe = self.universe if pool_universe else None
        program = self._parsed(source)
        if flatten:
            return self.pipeline.run(
                flatten_source(program, entity), options, universe=universe
            )
        return link_hierarchy(program, options, cache=self.cache, universe=universe)

    def _parsed(self, source: str) -> Any:
        """The parsed program of ``source``, through the cached parse stage."""
        return self.pipeline.run(source, until="parse").artifacts.program

    def _flat_equivalent(self, source: str, entity: Optional[str]) -> str:
        """``source``, with a hierarchical design flattened transparently.

        The substitution behind :meth:`check` and :meth:`lint_run`: those
        surfaces run the ordinary staged pipeline (report/lint stages
        included), so hierarchical inputs go through the flattening oracle —
        the documents keep their unchanged ``vhdl-ifa/v1`` schema.
        """
        if not may_instantiate(source):
            return source
        program = self._parsed(source)
        if not has_instantiations(program):
            return source
        return flatten_source(program, entity)

    def analyze_corpus(
        self,
        sources: Iterable[str],
        **opts: Any,
    ) -> List[PipelineResult]:
        """Analyse a corpus of sources into one pooled name universe.

        Every run pins the workspace's shared :class:`FactUniverse`
        (``pool_universe=True``), so bitset-encoded artefacts from different
        sources stay directly comparable — the batched form of per-call
        universe pooling.  Accepts the keyword options of
        :meth:`analyze_run` (``pool_universe`` is implied) and returns the
        per-source results in input order.  Parse artefacts are still shared
        through the workspace cache (they are not universe-bound), so a
        corpus that repeats a file parses it once.
        """
        opts.pop("pool_universe", None)
        return [
            self.analyze_run(source, pool_universe=True, **opts)
            for source in sources
        ]

    def kemmerer_run(
        self,
        source: str,
        *,
        entity: Optional[str] = None,
        loop_processes: bool = True,
        pool_universe: bool = False,
    ) -> PipelineResult:
        """Kemmerer's baseline over the workspace's pipeline and cache."""
        return self.pipeline.run_kemmerer(
            source,
            AnalysisOptions(entity=entity, loop_processes=loop_processes),
            universe=self.universe if pool_universe else None,
        )

    # ---------------------------------------------------------------- check

    def check(
        self,
        source: str,
        policy: PolicySpec,
        *,
        outputs: Optional[Iterable[str]] = None,
        transitive: Optional[bool] = None,
        restrict_to_ports: bool = False,
        entity: Optional[str] = None,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        pool_universe: bool = False,
    ) -> CheckResult:
        """Analyse ``source`` and check it against ``policy``.

        ``transitive=None`` defers to the policy's own preferred mode (the
        ``mode`` key of a declarative policy); ``outputs`` restricts the
        reported sinks; ``restrict_to_ports`` keeps only port-to-port flows.
        """
        resolved = self.policy(policy)
        if transitive is None:
            transitive = bool(getattr(resolved, "transitive", False))
        run = self.pipeline.run(
            self._flat_equivalent(source, entity),
            self._options(entity, improved, loop_processes, use_under_approximation),
            universe=self.universe if pool_universe else None,
            policy=resolved,
            report_options={
                "transitive": transitive,
                "restrict_to_ports": restrict_to_ports,
                "outputs": list(outputs) if outputs else None,
            },
        )
        return CheckResult(run=run, policy=resolved, report=run.report)

    # ----------------------------------------------------------------- lint

    def lint(
        self,
        source: str,
        policy: Optional[PolicySpec] = None,
        *,
        config: Optional[LintConfig] = None,
        fail_on: str = "error",
        entity: Optional[str] = None,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        pool_universe: bool = False,
    ) -> LintResult:
        """Run the lint rule catalog (``docs/lint.md``) over ``source``.

        ``config`` selects rules and overrides severities explicitly; else a
        ``policy`` (any :data:`PolicySpec`) supplies its ``[lint]`` table;
        else the full catalog runs at default severities.  ``fail_on`` sets
        the severity threshold behind :attr:`LintResult.exit_code`.
        """
        resolved_config = config
        if resolved_config is None and policy is not None:
            resolved_config = getattr(self.policy(policy), "lint", None)
        if resolved_config is None:
            resolved_config = LintConfig()
        run = self.lint_run(
            source,
            entity=entity,
            improved=improved,
            loop_processes=loop_processes,
            use_under_approximation=use_under_approximation,
            pool_universe=pool_universe,
        )
        findings = resolved_config.apply(run.artifacts.lint)
        return LintResult(
            run=run, config=resolved_config, findings=findings, fail_on=fail_on
        )

    def lint_run(
        self,
        source: str,
        *,
        entity: Optional[str] = None,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        pool_universe: bool = False,
    ) -> PipelineResult:
        """As :meth:`lint`, returning the staged :class:`PipelineResult`
        (``run.artifacts.lint`` holds the unfiltered full-catalog tuple).
        Hierarchical sources are flattened transparently (the lint catalog
        then sees the whole design under its flat instance-prefixed names).
        """
        return self.pipeline.run_lint(
            self._flat_equivalent(source, entity),
            self._options(entity, improved, loop_processes, use_under_approximation),
            universe=self.universe if pool_universe else None,
        )

    # ---------------------------------------------------------------- batch

    def batch(
        self,
        jobs: Sequence[Union[str, BatchJob]],
        *,
        all_entities: bool = False,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        policy: Optional[PolicySpec] = None,
        collapse: bool = False,
        self_loops: bool = False,
        dot: bool = False,
        improved: bool = True,
        loop_processes: bool = True,
        use_under_approximation: bool = True,
        lint: Union[bool, LintConfig, None] = None,
        fail_on: str = "error",
    ) -> BatchReport:
        """Analyse many files (or :class:`BatchJob` items) in one run.

        Paths are expanded to jobs (one per entity with ``all_entities``);
        parallel runs fan out over a process pool whose workers layer their
        per-worker memory tier over this workspace's ``cache_dir`` disk
        store, so the pool shares the workspace's cache configuration.
        ``policy`` turns the batch into a policy check over every job.
        ``lint=True`` (or a :class:`LintConfig`) adds a per-job lint section;
        ``lint=None`` defers to the resolved policy's ``[lint]`` table (no
        lint run when it has none); ``fail_on`` sets the severity threshold
        behind :attr:`BatchReport.exit_code`.
        """
        expanded: List[BatchJob] = []
        for job in jobs:
            if isinstance(job, BatchJob):
                expanded.append(job)
            else:
                expanded.extend(
                    expand_jobs([job], all_entities=all_entities, cache=self.cache)
                )
        resolved_policy = None if policy is None else self.policy(policy)
        lint_config: Optional[LintConfig]
        policy_lint = getattr(resolved_policy, "lint", None)
        if isinstance(lint, LintConfig):
            lint_config = lint
        elif lint:
            # Explicitly requested: the policy's table still configures it.
            lint_config = policy_lint if policy_lint is not None else LintConfig()
        elif lint is None:
            # Unspecified: a policy declaring a [lint] table opts the run in.
            lint_config = policy_lint
        else:
            lint_config = None
        return run_batch(
            expanded,
            AnalysisOptions(
                improved=improved,
                loop_processes=loop_processes,
                use_under_approximation=use_under_approximation,
            ),
            collapse=collapse,
            self_loops=self_loops,
            dot=dot,
            parallel=parallel,
            max_workers=max_workers,
            cache=self.cache,
            policy=resolved_policy,
            lint=lint_config,
            fail_on=fail_on,
            **self.worker_configuration(),
        )

    def worker_configuration(self) -> Dict[str, Any]:
        """The cache spec worker processes rebuild this session's tiers from.

        Caches hold live pickles and open file handles, so they never cross
        a process boundary; what does cross is this pair — the shared disk
        root (if any) and the no-cache override — from which every batch
        pool worker and every serve pool worker layers its own in-memory
        tier over the workspace's persistent store.
        """
        return {"cache_dir": self.cache_dir, "no_cache": self.no_cache}

    # ---------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        """Session statistics: universe size, policies, cache counters."""
        document: Dict[str, Any] = {
            "universe": len(self.universe),
            "policies": sorted(self._policies),
        }
        if self.cache is not None:
            document["cache"] = self.cache.stats()
        return document
