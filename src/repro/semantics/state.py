"""Semantic stores: the local variable state ``σ`` and signal state ``ϕ``.

Following Section 3 ("Constructed semantic domains"):

* ``σ ∈ State = Var → Value`` — one per process;
* ``ϕ ∈ Signals = Sig → ({0, 1} ⇀ Value)`` — one per process, where index ``0``
  holds the *present* value (always defined) and index ``1`` the *active*
  value waiting one delta-cycle in the future (possibly undefined).

Initial values follow Section 3.2: scalars start as ``'U'`` and vectors as a
string of ``'U'`` of the declared width, unless the declaration provides an
initialiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.errors import SimulationError
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, Process, SignalInfo, VariableInfo
from repro.vhdl.stdlogic import StdLogic, StdLogicVector, Value


def default_value(type_node: ast.TypeNode) -> Value:
    """The uninitialised value of a type: ``'U'`` or ``"U…U"``."""
    if isinstance(type_node, ast.StdLogicVectorType):
        return StdLogicVector.uninitialized(type_node.width)
    return StdLogic("U")


class VariableStore:
    """The local variable state ``σ`` of one process."""

    def __init__(self, variables: Optional[Dict[str, VariableInfo]] = None):
        self._types: Dict[str, ast.TypeNode] = {}
        self._values: Dict[str, Value] = {}
        for info in (variables or {}).values():
            self._types[info.name] = info.var_type
            self._values[info.name] = default_value(info.var_type)

    def names(self) -> Iterable[str]:
        """Declared variable names."""
        return self._values.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def read(self, name: str) -> Value:
        """``σ x``."""
        if name not in self._values:
            raise SimulationError(f"read of undeclared variable {name!r}")
        return self._values[name]

    def write(self, name: str, value: Value) -> None:
        """``σ[x ↦ v]`` (in place)."""
        if name not in self._values:
            raise SimulationError(f"write to undeclared variable {name!r}")
        self._values[name] = value

    def write_slice(self, name: str, left: int, right: int, value: Value) -> None:
        """``σ[x(z_i … z_j) ↦ v]`` for a ``downto`` slice."""
        current = self.read(name)
        if not isinstance(current, StdLogicVector):
            raise SimulationError(f"slice assignment to scalar variable {name!r}")
        if isinstance(value, StdLogic):
            value = StdLogicVector([value])
        self._values[name] = current.set_slice_downto(left, right, value)

    def snapshot(self) -> Dict[str, Value]:
        """A copy of the current mapping (values are immutable)."""
        return dict(self._values)


class SignalStore:
    """The signal state ``ϕ`` of one process (present and active values)."""

    def __init__(self, signals: Optional[Dict[str, SignalInfo]] = None):
        self._types: Dict[str, ast.TypeNode] = {}
        self._present: Dict[str, Value] = {}
        self._active: Dict[str, Value] = {}
        for info in (signals or {}).values():
            self._types[info.name] = info.sig_type
            self._present[info.name] = default_value(info.sig_type)

    def names(self) -> Iterable[str]:
        """Declared signal names."""
        return self._present.keys()

    def __contains__(self, name: str) -> bool:
        return name in self._present

    def type_of(self, name: str) -> ast.TypeNode:
        """Declared type of ``name``."""
        return self._types[name]

    # -- present values (ϕ s 0) ------------------------------------------------

    def present(self, name: str) -> Value:
        """``ϕ s 0`` — the present value."""
        if name not in self._present:
            raise SimulationError(f"read of undeclared signal {name!r}")
        return self._present[name]

    def set_present(self, name: str, value: Value) -> None:
        """Overwrite the present value (used by synchronisation and test benches)."""
        if name not in self._present:
            raise SimulationError(f"write to undeclared signal {name!r}")
        self._present[name] = value

    # -- active values (ϕ s 1) --------------------------------------------------

    def active(self, name: str) -> Optional[Value]:
        """``ϕ s 1`` — the active value, or ``None`` when undefined."""
        return self._active.get(name)

    def set_active(self, name: str, value: Value) -> None:
        """``ϕ[1][s ↦ v]`` — schedule a value for the next delta-cycle."""
        if name not in self._present:
            raise SimulationError(f"assignment to undeclared signal {name!r}")
        self._active[name] = value

    def set_active_slice(self, name: str, left: int, right: int, value: Value) -> None:
        """Schedule a slice update; unassigned positions keep the present value."""
        base = self._active.get(name, self._present[name])
        if not isinstance(base, StdLogicVector):
            raise SimulationError(f"slice assignment to scalar signal {name!r}")
        if isinstance(value, StdLogic):
            value = StdLogicVector([value])
        self._active[name] = base.set_slice_downto(left, right, value)

    def clear_active(self) -> None:
        """Forget all active values (after a synchronisation)."""
        self._active.clear()

    def active_signals(self) -> Dict[str, Value]:
        """All signals with a defined active value."""
        return dict(self._active)

    def is_active(self) -> bool:
        """The predicate ``active(ϕ)``: some signal has an active value."""
        return bool(self._active)

    def snapshot_present(self) -> Dict[str, Value]:
        """A copy of the present values."""
        return dict(self._present)


@dataclass
class ProcessState:
    """Runtime state of one process: its control point and its two stores."""

    process: Process
    variables: VariableStore
    signals: SignalStore
    program_counter: list = field(default_factory=list)
    """A stack of (statement list, index) continuations; empty means the body
    will restart from the beginning (processes repeat indefinitely)."""
    waiting: bool = False
    finished_iteration: bool = False


def initial_signal_store(design: Design) -> SignalStore:
    """Build a signal store for all signals of ``design``."""
    return SignalStore(design.signals)
