"""Structural operational semantics of VHDL1 (Section 3 of the paper).

The simulator executes each process by itself until it reaches a ``wait``
statement (rule **[Handle non-waiting processes]**), then performs the
synchronisation of rule **[Active signals]**: delta-time values are resolved
with the resolution function ``fs``, become the new present values in every
process, and processes whose waited-on signals changed (and whose ``until``
condition evaluates to ``'1'``) resume.

The semantics exists for two reasons: it makes the examples executable
end-to-end (e.g. simulating the generated AES components against the pure
Python reference), and it powers the property-based *soundness* tests — if
the analysis reports no flow from an input to an output, then changing that
input must not change the observed output.
"""

from repro.semantics.state import ProcessState, SignalStore, VariableStore
from repro.semantics.expressions import evaluate_expression
from repro.semantics.simulator import SimulationTrace, Simulator, simulate

__all__ = [
    "ProcessState",
    "SignalStore",
    "VariableStore",
    "evaluate_expression",
    "SimulationTrace",
    "Simulator",
    "simulate",
]
