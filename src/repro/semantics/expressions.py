"""Evaluation of VHDL1 expressions (Table 1).

``E : Expr → (State × Signals ⇀ Value)``: names are looked up in the local
variable store or the signal store (always the *present* value, ``ϕ s 0``),
slices use the semantics' ``split`` function, and operators are evaluated on
the IEEE-1164 domain of :mod:`repro.vhdl.stdlogic`.

The comparison operators return ``'1'``/``'0'`` (or ``'X'`` when an operand is
not fully defined), matching how synthesis tools treat ``std_logic``
comparisons inside VHDL1's ``if``/``while``/``wait until`` conditions.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SimulationError
from repro.vhdl import ast
from repro.vhdl.stdlogic import ONE, StdLogic, StdLogicVector, Value, ZERO, X
from repro.semantics.state import SignalStore, VariableStore


def _as_vector(value: Value) -> StdLogicVector:
    if isinstance(value, StdLogicVector):
        return value
    return StdLogicVector([value])


def _bitwise(op_name: str, left: Value, right: Value) -> Value:
    """Apply a logical operator element-wise to scalars or equal-width vectors."""
    scalar_ops: Dict[str, Callable[[StdLogic, StdLogic], StdLogic]] = {
        "and": lambda a, b: a & b,
        "or": lambda a, b: a | b,
        "xor": lambda a, b: a ^ b,
        "nand": lambda a, b: a.nand(b),
        "nor": lambda a, b: a.nor(b),
        "xnor": lambda a, b: a.xnor(b),
    }
    op = scalar_ops[op_name]
    if isinstance(left, StdLogic) and isinstance(right, StdLogic):
        return op(left, right)
    left_vec = _as_vector(left)
    right_vec = _as_vector(right)
    if left_vec.width != right_vec.width:
        raise SimulationError(
            f"{op_name!r} on vectors of different widths "
            f"({left_vec.width} vs {right_vec.width})"
        )
    return StdLogicVector(op(a, b) for a, b in zip(left_vec.bits, right_vec.bits))


def _compare_equal(left: Value, right: Value) -> StdLogic:
    if isinstance(left, StdLogic) and isinstance(right, StdLogic):
        if not (left.is_defined() and right.is_defined()):
            return X
        return ONE if left.to_x01() == right.to_x01() else ZERO
    return _as_vector(left).equals(_as_vector(right))


def _compare_order(operator: str, left: Value, right: Value) -> StdLogic:
    left_vec = _as_vector(left)
    right_vec = _as_vector(right)
    if not (left_vec.is_fully_defined() and right_vec.is_fully_defined()):
        return X
    lhs, rhs = left_vec.to_unsigned(), right_vec.to_unsigned()
    outcomes = {
        "<": lhs < rhs,
        "<=": lhs <= rhs,
        ">": lhs > rhs,
        ">=": lhs >= rhs,
    }
    return ONE if outcomes[operator] else ZERO


def _arithmetic(operator: str, left: Value, right: Value) -> Value:
    left_vec = _as_vector(left)
    right_vec = _as_vector(right)
    operations = {
        "+": left_vec.add,
        "-": left_vec.sub,
        "*": left_vec.mul,
    }
    return operations[operator](right_vec)


def evaluate_expression(
    expr: ast.Expression, variables: VariableStore, signals: SignalStore
) -> Value:
    """``E[[e]]⟨σ, ϕ⟩`` — evaluate ``expr`` in the given stores."""
    if isinstance(expr, ast.LogicLiteral):
        return StdLogic(expr.value)
    if isinstance(expr, ast.VectorLiteral):
        return StdLogicVector.from_string(expr.value)
    if isinstance(expr, ast.IntegerLiteral):
        # integer literals only occur where tooling generated comparisons;
        # encode them as the narrowest unsigned vector that holds the value
        width = max(1, expr.value.bit_length())
        return StdLogicVector.from_unsigned(expr.value, width)
    if isinstance(expr, ast.Name):
        if expr.kind is ast.NameKind.VARIABLE:
            return variables.read(expr.ident)
        if expr.kind is ast.NameKind.SIGNAL:
            return signals.present(expr.ident)
        # unresolved names can only occur before elaboration
        if expr.ident in variables:
            return variables.read(expr.ident)
        return signals.present(expr.ident)
    if isinstance(expr, ast.SliceName):
        if expr.kind is ast.NameKind.VARIABLE or (
            expr.kind is ast.NameKind.UNKNOWN and expr.ident in variables
        ):
            base = variables.read(expr.ident)
        else:
            base = signals.present(expr.ident)
        if not isinstance(base, StdLogicVector):
            raise SimulationError(f"slice of scalar value {expr.ident!r}")
        result = base.slice_downto(expr.left, expr.right)
        if result.width == 1:
            # single-bit indexing yields a scalar, as in VHDL
            return result.bits[0]
        return result
    if isinstance(expr, ast.UnaryOp):
        operand = evaluate_expression(expr.operand, variables, signals)
        if expr.operator != "not":
            raise SimulationError(f"unsupported unary operator {expr.operator!r}")
        if isinstance(operand, StdLogic):
            return ~operand
        return ~operand
    if isinstance(expr, ast.BinaryOp):
        left = evaluate_expression(expr.left, variables, signals)
        right = evaluate_expression(expr.right, variables, signals)
        operator = expr.operator
        if operator in ("and", "or", "xor", "nand", "nor", "xnor"):
            return _bitwise(operator, left, right)
        if operator == "=":
            return _compare_equal(left, right)
        if operator == "/=":
            equal = _compare_equal(left, right)
            if equal == X:
                return X
            return ~equal
        if operator in ("<", "<=", ">", ">="):
            return _compare_order(operator, left, right)
        if operator == "&":
            return _as_vector(left).concat(_as_vector(right))
        if operator in ("+", "-", "*"):
            return _arithmetic(operator, left, right)
        raise SimulationError(f"unsupported binary operator {operator!r}")
    raise SimulationError(f"cannot evaluate expression node {type(expr).__name__}")


def is_true(value: Value) -> bool:
    """True when a condition value reads as logic one."""
    if isinstance(value, StdLogic):
        return value.is_high()
    return value.width > 0 and value.is_fully_defined() and value.to_unsigned() != 0


def is_false(value: Value) -> bool:
    """True when a condition value reads as logic zero."""
    if isinstance(value, StdLogic):
        return value.is_low()
    return value.is_fully_defined() and value.to_unsigned() == 0
