"""Delta-cycle simulator implementing the transition systems of Tables 2 and 3.

Execution alternates between two phases, exactly as the paper's semantics:

* **[Handle non-waiting processes]** — every process that is not blocked at a
  ``wait`` statement executes its statements (Table 2) against its local
  variable store ``σ_i`` and signal store ``ϕ_i``; signal assignments only
  update the *active* slot ``ϕ_i s 1``.
* **[Active signals]** — once every process is blocked, if some signal is
  active anywhere (including the environment's drivers, the paper's process
  ``π``), the active values are resolved with ``fs`` and become the new
  *present* values in every process; a blocked process resumes when one of its
  waited-on signals changed value and its ``until`` condition evaluates to
  ``'1'``.

The environment is modelled by :meth:`Simulator.drive`: driving an ``in`` port
schedules an active value that participates in the next synchronisation, which
is exactly the behaviour of the paper's environment process ``π``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.semantics.expressions import evaluate_expression, is_true
from repro.semantics.state import ProcessState, SignalStore, VariableStore
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, Process
from repro.vhdl.stdlogic import StdLogic, StdLogicVector, Value, resolve_values

#: Convenient input type for driving signals from Python: a value object, a
#: character such as ``'1'`` or a bit string such as ``"10110000"``.
Driveable = Union[Value, str, int]


@dataclass
class _Frame:
    """A continuation frame: a statement list and the next index to run."""

    statements: List[ast.Statement]
    index: int = 0


@dataclass
class _ProcessRuntime:
    """Mutable runtime data of one process."""

    process: Process
    variables: VariableStore
    signals: SignalStore
    frames: List[_Frame] = field(default_factory=list)
    waiting_on: Optional[ast.Wait] = None
    steps: int = 0

    @property
    def is_waiting(self) -> bool:
        return self.waiting_on is not None


@dataclass
class SimulationTrace:
    """Recorded observations: one entry of present values per delta cycle."""

    entries: List[Dict[str, Value]] = field(default_factory=list)

    def record(self, snapshot: Dict[str, Value]) -> None:
        """Append a snapshot of present values."""
        self.entries.append(snapshot)

    def history_of(self, signal: str) -> List[Value]:
        """Values taken by ``signal`` across the recorded delta cycles."""
        return [entry[signal] for entry in self.entries if signal in entry]

    def __len__(self) -> int:
        return len(self.entries)


class Simulator:
    """Executable semantics of one elaborated design."""

    def __init__(
        self,
        design: Design,
        loop_processes: bool = True,
        max_steps_per_activation: int = 100_000,
    ):
        self._design = design
        self._loop = loop_processes
        self._max_steps = max_steps_per_activation
        self._env_active: Dict[str, Value] = {}
        self._delta_cycles = 0
        self.trace = SimulationTrace()

        self._runtimes: List[_ProcessRuntime] = []
        for process in design.processes:
            runtime = _ProcessRuntime(
                process=process,
                variables=VariableStore(process.variables),
                signals=SignalStore(design.signals),
            )
            runtime.frames.append(_Frame(process.body))
            self._initialize_declared_values(runtime)
            self._runtimes.append(runtime)

    # ------------------------------------------------------------------ setup

    def _initialize_declared_values(self, runtime: _ProcessRuntime) -> None:
        for info in runtime.process.variables.values():
            if info.initial is not None:
                value = evaluate_expression(
                    info.initial, runtime.variables, runtime.signals
                )
                runtime.variables.write(info.name, value)
        for info in self._design.signals.values():
            if info.initial is not None:
                value = evaluate_expression(
                    info.initial, runtime.variables, runtime.signals
                )
                runtime.signals.set_present(info.name, value)

    # --------------------------------------------------------------- inspection

    @property
    def delta_cycles(self) -> int:
        """Number of synchronisations performed so far."""
        return self._delta_cycles

    def read_signal(self, name: str) -> Value:
        """Present value of a signal (identical across processes after sync)."""
        if name not in self._design.signals:
            raise SimulationError(f"unknown signal {name!r}")
        return self._runtimes[0].signals.present(name)

    def read_variable(self, process_name: str, name: str) -> Value:
        """Current value of a process-local variable."""
        for runtime in self._runtimes:
            if runtime.process.name == process_name:
                return runtime.variables.read(name)
        raise SimulationError(f"unknown process {process_name!r}")

    def signal_snapshot(self) -> Dict[str, Value]:
        """Present values of every signal."""
        return {name: self.read_signal(name) for name in self._design.signals}

    # ----------------------------------------------------------------- stimulus

    def _coerce(self, name: str, value: Driveable) -> Value:
        info = self._design.signals[name]
        width = info.width
        if isinstance(value, (StdLogic, StdLogicVector)):
            return value
        if isinstance(value, int):
            if width is None:
                return StdLogic.from_bit(value)
            return StdLogicVector.from_unsigned(value, width)
        if isinstance(value, str):
            if width is None:
                return StdLogic(value)
            return StdLogicVector.from_string(value)
        raise SimulationError(f"cannot drive {name!r} with {value!r}")

    def validate_drive(self, name: str, value: Driveable) -> Value:
        """Check a stimulus without scheduling it; returns the coerced value.

        Raises :class:`SimulationError` for an unknown signal, a non-input
        port or a value that cannot be coerced to the port's type — letting
        callers validate a whole stimulus set up front, before any simulation
        work is done.
        """
        if name not in self._design.signals:
            raise SimulationError(f"unknown signal {name!r}")
        info = self._design.signals[name]
        if not info.is_input:
            raise SimulationError(f"signal {name!r} is not an input port")
        return self._coerce(name, value)

    def drive(self, name: str, value: Driveable) -> None:
        """Schedule an environment-driven value for an ``in`` port.

        The value becomes visible after the next synchronisation, like the
        assignments of the paper's environment process ``π``.
        """
        self._env_active[name] = self.validate_drive(name, value)

    def force_present(self, name: str, value: Driveable) -> None:
        """Directly overwrite a signal's present value in every process.

        This bypasses the delta-cycle mechanism; it is meant for setting up
        initial conditions in tests.
        """
        coerced = self._coerce(name, value)
        for runtime in self._runtimes:
            runtime.signals.set_present(name, coerced)

    # ----------------------------------------------------------------- execution

    def run(self, max_delta_cycles: int = 1_000) -> int:
        """Run until quiescent or ``max_delta_cycles`` synchronisations.

        Returns the number of delta cycles performed by this call.
        """
        performed = 0
        while performed < max_delta_cycles:
            self._run_processes()
            if not self._synchronize():
                break
            performed += 1
        return performed

    def step_delta(self) -> bool:
        """Run processes then perform one synchronisation; False if quiescent."""
        self._run_processes()
        return self._synchronize()

    # -- phase 1: rule [Handle non-waiting processes] -------------------------------

    def _run_processes(self) -> None:
        for runtime in self._runtimes:
            self._run_single(runtime)

    def _run_single(self, runtime: _ProcessRuntime) -> None:
        steps = 0
        while not runtime.is_waiting:
            if not runtime.frames:
                if self._loop:
                    runtime.frames.append(_Frame(runtime.process.body))
                else:
                    return  # straight-line mode: the process simply stops
            if steps > self._max_steps:
                raise SimulationError(
                    f"process {runtime.process.name!r} exceeded "
                    f"{self._max_steps} steps without reaching a wait statement"
                )
            frame = runtime.frames[-1]
            if frame.index >= len(frame.statements):
                runtime.frames.pop()
                continue
            statement = frame.statements[frame.index]
            self._execute(runtime, frame, statement)
            steps += 1
        runtime.steps += steps

    def _execute(
        self, runtime: _ProcessRuntime, frame: _Frame, statement: ast.Statement
    ) -> None:
        if isinstance(statement, ast.Null):
            frame.index += 1
            return
        if isinstance(statement, ast.VariableAssign):
            value = evaluate_expression(
                statement.value, runtime.variables, runtime.signals
            )
            if statement.target_slice is None:
                runtime.variables.write(statement.target, value)
            else:
                left, right, _ = statement.target_slice
                runtime.variables.write_slice(statement.target, left, right, value)
            frame.index += 1
            return
        if isinstance(statement, ast.SignalAssign):
            value = evaluate_expression(
                statement.value, runtime.variables, runtime.signals
            )
            if statement.target_slice is None:
                runtime.signals.set_active(statement.target, value)
            else:
                left, right, _ = statement.target_slice
                runtime.signals.set_active_slice(statement.target, left, right, value)
            frame.index += 1
            return
        if isinstance(statement, ast.Wait):
            runtime.waiting_on = statement
            frame.index += 1
            return
        if isinstance(statement, ast.If):
            condition = evaluate_expression(
                statement.condition, runtime.variables, runtime.signals
            )
            frame.index += 1
            branch = statement.then_branch if is_true(condition) else statement.else_branch
            runtime.frames.append(_Frame(branch))
            return
        if isinstance(statement, ast.While):
            condition = evaluate_expression(
                statement.condition, runtime.variables, runtime.signals
            )
            if is_true(condition):
                runtime.frames.append(_Frame(statement.body))
            else:
                frame.index += 1
            return
        raise SimulationError(f"cannot execute statement {type(statement).__name__}")

    # -- phase 2: rule [Active signals] ------------------------------------------------

    def _synchronize(self) -> bool:
        drivers: Dict[str, List[Value]] = {}
        for runtime in self._runtimes:
            for name, value in runtime.signals.active_signals().items():
                drivers.setdefault(name, []).append(value)
        for name, value in self._env_active.items():
            drivers.setdefault(name, []).append(value)

        if not drivers:
            return False

        changed: Dict[int, set] = {index: set() for index in range(len(self._runtimes))}
        for name, values in drivers.items():
            resolved = resolve_values(values)
            for index, runtime in enumerate(self._runtimes):
                if runtime.signals.present(name) != resolved:
                    changed[index].add(name)
                runtime.signals.set_present(name, resolved)

        for runtime in self._runtimes:
            runtime.signals.clear_active()
        self._env_active.clear()

        for index, runtime in enumerate(self._runtimes):
            wait = runtime.waiting_on
            if wait is None:
                continue
            signal_changed = any(name in changed[index] for name in wait.signals)
            condition_true = True
            if wait.condition is not None:
                condition_true = is_true(
                    evaluate_expression(wait.condition, runtime.variables, runtime.signals)
                )
            if wait.signals and signal_changed and condition_true:
                runtime.waiting_on = None

        self._delta_cycles += 1
        self.trace.record(self.signal_snapshot())
        return True


def simulate(
    design: Design,
    inputs: Optional[Dict[str, Driveable]] = None,
    max_delta_cycles: int = 1_000,
) -> Dict[str, Value]:
    """Convenience driver: apply ``inputs``, run to quiescence, return outputs.

    ``inputs`` maps ``in`` port names to values (``'1'``, ``"1010"``, integers
    or value objects).  The returned dictionary contains the present value of
    every signal of the design after the run.
    """
    simulator = Simulator(design)
    simulator.run(max_delta_cycles)
    for name, value in (inputs or {}).items():
        simulator.drive(name, value)
    simulator.run(max_delta_cycles)
    return simulator.signal_snapshot()
