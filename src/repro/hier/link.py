"""Compositional linking of entity summaries over the instantiation tree.

Linking composes a whole-design analysis out of per-entity
:class:`~repro.hier.summary.EntitySummary` artifacts without re-running any
per-process stage:

1.  Every process of every (transitively) instantiated entity is *placed*:
    its summary facts are renamed through the composed port maps into the
    flat namespace (the same renaming :mod:`repro.hier.flatten` applies to
    the AST) and its labels shifted by one offset into the label range the
    flat design would have allocated to it.  Placement is exact because the
    standalone labelling of a process is allocator-contiguous and
    order-isomorphic to its flat labelling, and because the per-process
    results of Tables 4 and 6 are closed under injective renaming of the
    written names (the structural layer rejects port maps that alias a
    written port for precisely this reason).
2.  The cross-process stages then run for real over the composed data: the
    Table 5 reaching definitions (solved per process — the flow relation has
    no cross-process edges, so the whole-program least solution decomposes
    exactly), the Table 7 specialisation, and the Table 8/9 closure down to
    the :class:`~repro.analysis.flowgraph.FlowGraph`.  These are the
    *original* analysis functions, driven through a
    :class:`LinkedProgramCFG` facade that answers the cross-flow queries in
    O(1) from the composed wait-label sets.

The result is a regular :class:`~repro.pipeline.artifacts.PipelineResult`
(stages ``summary`` and ``link``) whose analysis artefacts — and therefore
whose rendered ``vhdl-ifa/v1`` documents — are byte-identical to analysing
the flattened program, while the per-entity work is shared across instances
and cached across runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.closure import global_resource_matrix
from repro.analysis.flowgraph import FlowGraph
from repro.analysis.improved import improved_global_resource_matrix
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.analysis.reaching_defs import (
    ReachingDefinitionsResult,
    gen_rd,
    initial_definitions,
    kill_rd,
)
from repro.analysis.resource_matrix import Access, ResourceMatrix
from repro.analysis.specialize import specialize
from repro.cfg.builder import ProcessCFG
from repro.cfg.labels import Block, BlockKind
from repro.dataflow.framework import DataflowInstance, JoinMode
from repro.dataflow.universe import FactUniverse
from repro.dataflow.worklist import solve
from repro.errors import HierarchyError
from repro.hier.flatten import instance_rename
from repro.hier.structure import DesignHierarchy, HierarchyUnit, Instance, build_hierarchy
from repro.hier.summary import EntitySummary, ProcessSummary, summarize_entity
from repro.pipeline.artifacts import (
    AnalysisOptions,
    AnalysisResult,
    PipelineResult,
    StageTiming,
)
from repro.vhdl import ast
from repro.vhdl.elaborate import Design, SignalInfo

Rename = Callable[[str], str]


def _identity(name: str) -> str:
    return name


class _LinkedProcess:
    """The process facade behind a relocated :class:`ProcessCFG`.

    Provides exactly what the link-time stages consume: the flat name, the
    renamed free-name sets (for the Table 5 extremal values) and the renamed
    variable table.
    """

    __slots__ = ("name", "variables", "synthesized", "_free_signals", "_free_variables")

    def __init__(
        self,
        name: str,
        synthesized: bool,
        free_signals: FrozenSet[str],
        free_variables: FrozenSet[str],
        declared_variables: Tuple[str, ...],
    ):
        self.name = name
        self.synthesized = synthesized
        self.variables = {variable: None for variable in declared_variables}
        self._free_signals = free_signals
        self._free_variables = free_variables

    def free_signals(self) -> FrozenSet[str]:
        return self._free_signals

    def free_variables(self) -> FrozenSet[str]:
        return self._free_variables


class _RenamedTarget:
    """Stand-in statement carrying only the renamed assignment target."""

    __slots__ = ("target",)

    def __init__(self, target: str):
        self.target = target


#: Shared placeholder statement for blocks whose statement is never consumed.
_NO_STATEMENT = ast.Null()


class LinkedProgramCFG:
    """A :class:`~repro.cfg.builder.ProgramCFG`-shaped view of linked summaries.

    Interface-compatible with the consumers of the link-time stages
    (reaching definitions, specialisation, closure, rendering), with the
    lookups the real class answers by scanning — ``process_of_label`` and the
    cross-flow predicates — precomputed to O(1), which is what keeps linking
    cheap at thousands of processes.
    """

    def __init__(
        self,
        design: Design,
        processes: Dict[str, ProcessCFG],
        variable_count: int,
    ):
        self.design = design
        self.processes = processes
        self._order = list(processes)
        self._variable_count = variable_count
        owner: Dict[int, str] = {}
        blocks: Dict[int, Block] = {}
        waits: Set[int] = set()
        for name, cfg in processes.items():
            for label in cfg.blocks:
                owner[label] = name
            blocks.update(cfg.blocks)
            waits |= cfg.wait_labels
        self._owner = owner
        self._blocks = blocks
        self._labels = frozenset(blocks)
        self._wait_labels = frozenset(waits)
        self._empty_wait_processes = sum(
            1 for cfg in processes.values() if not cfg.wait_labels
        )

    # -- lookups ------------------------------------------------------------

    @property
    def process_order(self) -> List[str]:
        return list(self._order)

    @property
    def blocks(self) -> Dict[int, Block]:
        return self._blocks

    @property
    def labels(self) -> FrozenSet[int]:
        return self._labels

    def block(self, label: int) -> Block:
        return self._blocks[label]

    def process_of_label(self, label: int) -> str:
        return self._owner[label]

    def cfg_of_label(self, label: int) -> ProcessCFG:
        return self.processes[self._owner[label]]

    # -- wait statements and cross flow -------------------------------------

    @property
    def wait_labels(self) -> FrozenSet[int]:
        return self._wait_labels

    def wait_labels_of(self, process_name: str) -> FrozenSet[int]:
        return self.processes[process_name].wait_labels

    @property
    def has_empty_wait_process(self) -> bool:
        """True when some process never waits (the cross-flow relation ``cf``
        is then empty, and every Table 5 wait kill/gen set is ``∅``)."""
        return self._empty_wait_processes > 0

    def label_occurs_in_cross_flow(self, label: int) -> bool:
        # A wait label's owner has a wait by definition, so "every other
        # process has a wait" is "no process is wait-free".
        return label in self._wait_labels and self._empty_wait_processes == 0

    def labels_cooccur_in_cross_flow(self, label_a: int, label_b: int) -> bool:
        if label_a not in self._wait_labels or label_b not in self._wait_labels:
            return False
        if self._owner[label_a] == self._owner[label_b] and label_a != label_b:
            return False
        return self._empty_wait_processes == 0

    # -- statistics ---------------------------------------------------------

    def summary(self) -> Dict[str, int]:
        """The statistics the flat :class:`ProgramCFG` would report.

        ``variables`` counts declared variables per process (the flat
        ``Design.variable_names()`` keeps per-process duplicates), which the
        linked design reconstructs from the summaries.
        """
        return {
            "processes": len(self.processes),
            "labels": len(self._blocks),
            "flow_edges": sum(len(cfg.flow) for cfg in self.processes.values()),
            "wait_labels": len(self._wait_labels),
            "signals": len(self.design.signals),
            "variables": self._variable_count,
        }


@dataclass(frozen=True)
class _Placement:
    """One process summary placed into the flat design."""

    summary: ProcessSummary
    rename: Rename
    flat_name: str
    offset: int


# ---------------------------------------------------------------------------
# Composition
# ---------------------------------------------------------------------------


def _flat_signals(
    hierarchy: DesignHierarchy, root: HierarchyUnit
) -> Dict[str, SignalInfo]:
    """The flat signal table, in the order flat elaboration would build it."""
    signals: Dict[str, SignalInfo] = {}

    def add(name: str, info: SignalInfo) -> None:
        if name in signals:
            raise HierarchyError(
                f"linked design {root.entity.name!r}: duplicate signal {name!r}"
            )
        signals[name] = info

    for port in root.entity.ports:
        add(
            port.name,
            SignalInfo(
                name=port.name,
                sig_type=port.port_type,
                is_port=True,
                mode=port.mode,
            ),
        )

    def collect(unit: HierarchyUnit, rename: Rename) -> None:
        for decl in unit.signals:
            name = rename(decl.name)
            add(
                name,
                SignalInfo(name=name, sig_type=decl.sig_type, initial=decl.initial),
            )
        for item in unit.items:
            if isinstance(item, Instance):
                collect(
                    hierarchy.unit_of(item.entity), instance_rename(item, rename)
                )

    collect(root, _identity)
    return signals


def _place_processes(
    hierarchy: DesignHierarchy,
    root: HierarchyUnit,
    summaries: Dict[str, EntitySummary],
) -> List[_Placement]:
    """Walk the instantiation tree in flat process order, assigning each
    process its flat name, rename and label offset."""
    placements: List[_Placement] = []
    next_label = 1  # the flat LabelAllocator starts at 1

    def walk(unit: HierarchyUnit, rename: Rename, prefix: str) -> None:
        nonlocal next_label
        summary = summaries[unit.name.lower()]
        leaf_index = 0
        for item in unit.items:
            if isinstance(item, Instance):
                walk(
                    hierarchy.unit_of(item.entity),
                    instance_rename(item, rename),
                    prefix + item.label + "__",
                )
            else:
                process = summary.processes[leaf_index]
                leaf_index += 1
                offset = next_label - process.label_base
                next_label += process.label_span
                placements.append(
                    _Placement(process, rename, prefix + process.name, offset)
                )

    walk(root, _identity, "")
    return placements


def _compose(
    hierarchy: DesignHierarchy,
    summaries: Dict[str, EntitySummary],
    options: AnalysisOptions,
    universe: Optional[FactUniverse],
) -> AnalysisResult:
    root = hierarchy.root_unit
    signals = _flat_signals(hierarchy, root)
    placements = _place_processes(hierarchy, root, summaries)
    if not placements:
        raise HierarchyError(
            f"linked design {root.entity.name!r} contains no processes"
        )

    in_ports = {
        port.name for port in root.entity.ports if port.mode is ast.PortMode.IN
    }

    processes: Dict[str, ProcessCFG] = {}
    active: Dict[str, ActiveSignalsResult] = {}
    variable_count = 0

    for placed in placements:
        ps, rename, name, offset = (
            placed.summary,
            placed.rename,
            placed.flat_name,
            placed.offset,
        )
        if name in processes:
            raise HierarchyError(
                f"linked design {root.entity.name!r}: duplicate process "
                f"name {name!r}"
            )
        for variable in ps.declared_variables:
            renamed = rename(variable)
            if renamed in signals:
                raise HierarchyError(
                    f"linked design {root.entity.name!r}: variable {renamed!r} "
                    f"of process {name!r} shadows a signal"
                )
        variable_count += len(ps.declared_variables)

        blocks: Dict[int, Block] = {}
        for label, kind_name, target in ps.blocks:
            kind = BlockKind[kind_name]
            if target is not None:
                renamed_target = rename(target)
                if kind is BlockKind.SIGNAL_ASSIGN and renamed_target in in_ports:
                    # Parity with flat elaboration's mode check after renaming
                    # a written child port onto a root input port.
                    raise HierarchyError(
                        f"process {name!r} assigns to input port "
                        f"{renamed_target!r}"
                    )
                statement = _RenamedTarget(renamed_target)
            else:
                statement = _NO_STATEMENT
            flat_label = label + offset
            blocks[flat_label] = Block(
                label=flat_label,
                kind=kind,
                statement=statement,
                process_name=name,
            )

        entry_label = ps.entry_label + offset
        loop_label = ps.loop_label + offset
        process = _LinkedProcess(
            name=name,
            synthesized=ps.synthesized,
            free_signals=frozenset(rename(s) for s in ps.free_signals),
            free_variables=frozenset(rename(v) for v in ps.free_variables),
            declared_variables=tuple(rename(v) for v in ps.declared_variables),
        )
        processes[name] = ProcessCFG(
            process=process,
            entry_label=entry_label,
            loop_label=loop_label,
            blocks=blocks,
            flow={(a + offset, b + offset) for a, b in ps.flow},
            wait_labels=frozenset(w + offset for w in ps.wait_labels),
            body_labels=frozenset(blocks) - {entry_label, loop_label},
        )
        active[name] = ActiveSignalsResult(
            process_name=name,
            over_entry={
                label + offset: frozenset((rename(s), d + offset) for s, d in pairs)
                for label, pairs in ps.over_entry
            },
            over_exit={},
            under_entry={
                label + offset: frozenset((rename(s), d + offset) for s, d in pairs)
                for label, pairs in ps.under_entry
            },
            under_exit={},
        )

    design = Design(
        name=root.entity.name,
        entity_name=root.entity.name,
        architecture_name=root.architecture.name,
        signals=signals,
        processes=[],
    )
    program_cfg = LinkedProgramCFG(design, processes, variable_count)

    # Table 6 union: re-intern every stored local row under its renaming.
    rm_universe = universe if universe is not None else FactUniverse()
    rm_lo = ResourceMatrix(universe=rm_universe)
    encode = rm_universe.encode
    for placed in placements:
        rename, offset = placed.rename, placed.offset
        for label, m0, m1, r0, r1 in placed.summary.local_rows:
            flat_label = label + offset
            for access, names in (
                (Access.M0, m0),
                (Access.M1, m1),
                (Access.R0, r0),
                (Access.R1, r1),
            ):
                if names:
                    rm_lo.or_bits(
                        flat_label, access, encode(rename(n) for n in names)
                    )

    # Table 5, solved per process: the flow relation has no cross-process
    # edges, so the whole-program least solution is exactly the union of the
    # per-process least solutions — and per-process instances keep the
    # dataflow engine's bitsets narrow.  Cross-process coupling enters only
    # through the wait kill/gen sets, computed by the original Table 5
    # combinators against the composed facade; when some process never waits
    # those sets are empty by the combinators' own cross-flow guard, which
    # the facade answers in O(1).
    skip_wait_sets = program_cfg.has_empty_wait_process
    entry: Dict[int, FrozenSet[Tuple[str, int]]] = {}
    exit_: Dict[int, FrozenSet[Tuple[str, int]]] = {}
    empty: FrozenSet[Tuple[str, int]] = frozenset()
    for name, cfg in processes.items():
        kill: Dict[int, FrozenSet[Tuple[str, int]]] = {}
        gen: Dict[int, FrozenSet[Tuple[str, int]]] = {}
        for label, block in cfg.blocks.items():
            if block.kind is BlockKind.WAIT and skip_wait_sets:
                kill[label] = empty
                gen[label] = empty
            else:
                kill[label] = kill_rd(
                    block, cfg, program_cfg, active, options.use_under_approximation
                )
                gen[label] = gen_rd(block, program_cfg, active)
        solution = solve(
            DataflowInstance(
                labels=frozenset(cfg.blocks),
                flow=frozenset(cfg.flow),
                extremal_labels=frozenset({cfg.entry_label}),
                extremal_value={cfg.entry_label: initial_definitions(cfg)},
                kill=kill,
                gen=gen,
                join_mode=JoinMode.UNION,
            )
        )
        entry.update(solution.entry)
        exit_.update(solution.exit)
    reaching = ReachingDefinitionsResult(entry=entry, exit=exit_)

    # Tables 7–9: the original cross-process stages, unchanged.
    specialized = specialize(program_cfg, rm_lo, active, reaching)
    if options.improved:
        closure = improved_global_resource_matrix(
            program_cfg, rm_lo, specialized, design
        )
    else:
        closure = global_resource_matrix(program_cfg, rm_lo, specialized)
    graph = FlowGraph.from_resource_matrix(closure.rm_global)

    return AnalysisResult(
        design=design,
        program_cfg=program_cfg,
        active=active,
        reaching=reaching,
        rm_local=rm_lo,
        specialized=specialized,
        rm_global=closure.rm_global,
        graph=graph,
        improved=options.improved,
        outgoing_labels=getattr(closure, "outgoing_labels", {}),
        universe=rm_universe,
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def link_hierarchy(
    program: ast.Program,
    options: Optional[AnalysisOptions] = None,
    cache=None,
    universe: Optional[FactUniverse] = None,
    hierarchy: Optional[DesignHierarchy] = None,
) -> PipelineResult:
    """Analyse a hierarchical program by summary linking.

    Returns a :class:`~repro.pipeline.artifacts.PipelineResult` with stages
    ``summary`` (cached when *every* entity summary was served from ``cache``)
    and ``link``; its documents are byte-identical to the flattened route's.
    ``options.entity`` selects the hierarchy root; ``universe`` optionally
    pins the fact universe the composed matrices intern into.
    """
    if options is None:
        options = AnalysisOptions()
    start = time.perf_counter()
    if hierarchy is None:
        hierarchy = build_hierarchy(program, options.entity)
    summaries: Dict[str, EntitySummary] = {}
    all_cached = True
    for name in hierarchy.order:
        unit = hierarchy.unit_of(name)
        summary, from_cache = summarize_entity(
            unit, loop_processes=options.loop_processes, cache=cache
        )
        summaries[name.lower()] = summary
        all_cached = all_cached and from_cache
    summary_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = _compose(hierarchy, summaries, options, universe)
    link_seconds = time.perf_counter() - start

    return PipelineResult(
        options=options,
        stages=[
            StageTiming("summary", summary_seconds, cached=all_cached),
            StageTiming("link", link_seconds),
        ],
        result=result,
    )
