"""Hierarchical designs: component instantiation, flattening and linking.

VHDL1 programs may declare components and instantiate them (``u1 : comp port
map (a => x, b => y);``).  The flat pipeline deliberately refuses such
programs (:class:`~repro.errors.ElaborationError`); this package analyses them
through two interchangeable routes:

* :mod:`repro.hier.flatten` — the *elaborating* route: inline every
  instantiated architecture under per-instance names and analyse the
  resulting flat program with the ordinary pipeline.  Simple, obviously
  correct, and O(design size) per run.
* :mod:`repro.hier.summary` + :mod:`repro.hier.link` — the *compositional*
  route: analyse each distinct entity once into a reusable
  :class:`~repro.hier.summary.EntitySummary` (content-addressed and cached on
  disk next to the pipeline's stage artefacts) and *link* the summaries over
  the instantiation tree, renaming per-entity facts into the whole-design
  fact universe via the port maps.  Only the cross-process stages (Tables
  5 and 7–9) run at link time; the per-process stages (Tables 4 and 6) are
  reused from the summaries.

The two routes are byte-identical: ``vhdl-ifa analyze --json`` over a
hierarchical design produces the same document whether it links summaries or
flattens first (the equivalence tests assert this across workloads and
option combinations).  See ``docs/hierarchy.md``.
"""

from repro.errors import HierarchyError
from repro.hier.structure import (
    DesignHierarchy,
    HierarchyUnit,
    Instance,
    build_hierarchy,
    has_instantiations,
)
from repro.hier.flatten import (
    flatten_if_hierarchical,
    flatten_program,
    flatten_source,
    may_instantiate,
)
from repro.hier.summary import (
    EntitySummary,
    ProcessSummary,
    summarize_entity,
    summary_cache_key,
)
from repro.hier.link import link_hierarchy

__all__ = [
    "HierarchyError",
    "DesignHierarchy",
    "HierarchyUnit",
    "Instance",
    "build_hierarchy",
    "has_instantiations",
    "may_instantiate",
    "flatten_if_hierarchical",
    "flatten_program",
    "flatten_source",
    "EntitySummary",
    "ProcessSummary",
    "summarize_entity",
    "summary_cache_key",
    "link_hierarchy",
]
