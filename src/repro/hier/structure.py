"""Structural resolution of hierarchical VHDL1 designs.

This module turns the raw AST of a program with component instantiations into
a checked :class:`DesignHierarchy`:

* every architecture is *normalised* — ``block`` statements are spliced in
  place and their signal declarations hoisted, exactly as flat elaboration
  does, so the concurrent-statement order seen here is the process order the
  flat pipeline would produce;
* every instantiation is resolved against the component declarations in
  scope and the component's entity, and its port map is checked (arity,
  unknown/duplicate/missing formals) and normalised to a complete
  ``formal → actual`` binding in port declaration order;
* the instantiation relation over entities is checked to be acyclic.

All structural faults raise :class:`~repro.errors.HierarchyError`.  Both the
flattening elaborator (:mod:`repro.hier.flatten`) and the summary linker
(:mod:`repro.hier.link`) consume the same :class:`DesignHierarchy`, which is
what keeps their renaming schemes aligned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import HierarchyError
from repro.vhdl import ast

#: A normalised concurrent item: an ordinary leaf statement or an instance.
Item = Union[ast.ProcessStatement, ast.ConcurrentAssign, "Instance"]


@dataclass(frozen=True)
class Instance:
    """One resolved component instantiation.

    ``bindings`` maps every formal port to its actual (a parent-scope signal
    name), in the instantiated entity's port declaration order; ``modes``
    records each formal's declared mode in the same order.
    """

    label: str
    entity: str
    bindings: Tuple[Tuple[str, str], ...]
    modes: Tuple[ast.PortMode, ...]

    def actual_of(self, formal: str) -> str:
        """The actual bound to ``formal``."""
        for name, actual in self.bindings:
            if name == formal:
                return actual
        raise KeyError(formal)


@dataclass
class HierarchyUnit:
    """One entity/architecture pair in normalised form."""

    entity: ast.Entity
    architecture: ast.Architecture
    signals: List[ast.SignalDeclaration] = field(default_factory=list)
    other_declarations: List[ast.Declaration] = field(default_factory=list)
    components: Dict[str, ast.ComponentDeclaration] = field(default_factory=dict)
    items: List[Item] = field(default_factory=list)

    @property
    def name(self) -> str:
        """The entity name (declared spelling)."""
        return self.entity.name

    @property
    def instances(self) -> List[Instance]:
        """The resolved instantiations, in concurrent-statement order."""
        return [item for item in self.items if isinstance(item, Instance)]

    @property
    def leaves(self) -> List[ast.ConcurrentStatement]:
        """The ordinary concurrent statements, in order."""
        return [item for item in self.items if not isinstance(item, Instance)]

    def signal_names(self) -> List[str]:
        """Port names then internal signal names, in declaration order."""
        return [port.name for port in self.entity.ports] + [
            decl.name for decl in self.signals
        ]


@dataclass
class DesignHierarchy:
    """The checked instantiation tree of one root entity."""

    program: ast.Program
    root: str
    units: Dict[str, HierarchyUnit] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    """Reachable entities in bottom-up (reverse topological) order."""

    @property
    def root_unit(self) -> HierarchyUnit:
        """The unit of the root entity."""
        return self.units[self.root.lower()]

    def unit_of(self, entity_name: str) -> HierarchyUnit:
        """The unit of ``entity_name`` (case-insensitive)."""
        return self.units[entity_name.lower()]

    def instance_count(self) -> int:
        """Total number of instances in the fully expanded tree."""

        def count(unit: HierarchyUnit) -> int:
            return sum(
                1 + count(self.unit_of(inst.entity)) for inst in unit.instances
            )

        return count(self.root_unit)


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def _body_has_instantiations(body: List[ast.ConcurrentStatement]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.ComponentInstantiation):
            return True
        if isinstance(stmt, ast.BlockStatement) and _body_has_instantiations(
            stmt.body
        ):
            return True
    return False


def has_instantiations(program: ast.Program) -> bool:
    """True when any architecture instantiates a component (even in blocks)."""
    return any(_body_has_instantiations(arch.body) for arch in program.architectures)


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------


def _collect_declarations(unit: HierarchyUnit, decls: List[ast.Declaration]) -> None:
    for decl in decls:
        if isinstance(decl, ast.SignalDeclaration):
            unit.signals.append(decl)
        elif isinstance(decl, ast.ComponentDeclaration):
            key = decl.name.lower()
            if key in unit.components:
                raise HierarchyError(
                    f"duplicate component declaration {decl.name!r} in "
                    f"architecture {unit.architecture.name!r}"
                )
            unit.components[key] = decl
        else:
            # Anything else (e.g. a variable outside a process) is left for
            # flat elaboration to reject with its usual diagnostics.
            unit.other_declarations.append(decl)


def _resolve_port_map(
    stmt: ast.ComponentInstantiation,
    ports: List[ast.Port],
    entity_name: str,
) -> Dict[str, str]:
    """Check the port map of ``stmt`` and return the ``formal → actual`` map."""
    where = f"instantiation {stmt.label!r} of {entity_name!r}"
    if len(stmt.associations) > len(ports):
        raise HierarchyError(
            f"{where}: port map has {len(stmt.associations)} associations "
            f"but the entity declares {len(ports)} ports"
        )
    port_names = [port.name for port in ports]
    bindings: Dict[str, str] = {}
    positional = True
    for index, assoc in enumerate(stmt.associations):
        if not isinstance(assoc.actual, ast.Name):
            raise HierarchyError(
                f"{where}: actual for association {index + 1} must be a "
                "plain signal name"
            )
        actual = assoc.actual.ident
        if assoc.formal is None:
            if not positional:
                raise HierarchyError(
                    f"{where}: positional association after a named one"
                )
            formal = port_names[index]
        else:
            positional = False
            formal = assoc.formal
            if formal not in port_names:
                raise HierarchyError(
                    f"{where}: unknown formal port {formal!r} "
                    f"(entity ports: {', '.join(port_names)})"
                )
        if formal in bindings:
            raise HierarchyError(f"{where}: formal port {formal!r} bound twice")
        bindings[formal] = actual
    missing = [name for name in port_names if name not in bindings]
    if missing:
        raise HierarchyError(
            f"{where}: unbound formal port(s) {', '.join(repr(m) for m in missing)}"
        )
    return bindings


def _check_aliasing(
    stmt: ast.ComponentInstantiation,
    ports: List[ast.Port],
    bindings: Dict[str, str],
    entity_name: str,
) -> None:
    """Reject an actual shared between an ``out`` formal and any other formal.

    Aliasing two *read* ports onto one signal renames only reads and stays
    exact; aliasing a *written* port conflates assignment-kill sets, which the
    compositional linker cannot reproduce, so both routes refuse it.
    """
    actual_users: Dict[str, List[ast.Port]] = {}
    for port in ports:
        actual_users.setdefault(bindings[port.name], []).append(port)
    for actual, users in actual_users.items():
        if len(users) > 1 and any(p.mode is ast.PortMode.OUT for p in users):
            formals = ", ".join(repr(p.name) for p in users)
            raise HierarchyError(
                f"instantiation {stmt.label!r} of {entity_name!r}: actual "
                f"{actual!r} is bound to an out-mode formal and also to "
                f"another formal ({formals}); aliasing a written port is "
                "not supported"
            )


def _normalize_unit(unit: HierarchyUnit, program: ast.Program) -> None:
    """Splice blocks, hoist their declarations and resolve instantiations."""

    parent_signals = set(unit.signal_names())

    def walk(body: List[ast.ConcurrentStatement]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.BlockStatement):
                _collect_declarations(unit, stmt.declarations)
                parent_signals.update(
                    d.name
                    for d in stmt.declarations
                    if isinstance(d, ast.SignalDeclaration)
                )
                walk(stmt.body)
            elif isinstance(stmt, ast.ComponentInstantiation):
                unit.items.append(_resolve_instance(stmt))
            elif isinstance(stmt, (ast.ProcessStatement, ast.ConcurrentAssign)):
                unit.items.append(stmt)
            else:
                raise HierarchyError(
                    f"unsupported concurrent statement "
                    f"{type(stmt).__name__} in architecture "
                    f"{unit.architecture.name!r}"
                )

    def _resolve_instance(stmt: ast.ComponentInstantiation) -> Instance:
        component = unit.components.get(stmt.component.lower())
        if component is None:
            raise HierarchyError(
                f"instantiation {stmt.label!r}: unknown component "
                f"{stmt.component!r} (no component declaration in "
                f"architecture {unit.architecture.name!r})"
            )
        entity = program.entity(component.name)
        if entity is None:
            raise HierarchyError(
                f"component {component.name!r} does not name a declared entity"
            )
        _check_component_interface(component, entity)
        bindings = _resolve_port_map(stmt, entity.ports, entity.name)
        _check_aliasing(stmt, entity.ports, bindings, entity.name)
        for formal, actual in bindings.items():
            if actual not in parent_signals:
                raise HierarchyError(
                    f"instantiation {stmt.label!r} of {entity.name!r}: actual "
                    f"{actual!r} (for formal {formal!r}) is not a signal of "
                    f"the enclosing architecture"
                )
        duplicates = [
            item.label
            for item in unit.items
            if isinstance(item, Instance) and item.label == stmt.label
        ]
        if duplicates:
            raise HierarchyError(
                f"duplicate instance label {stmt.label!r} in architecture "
                f"{unit.architecture.name!r}"
            )
        return Instance(
            label=stmt.label,
            entity=entity.name,
            bindings=tuple((port.name, bindings[port.name]) for port in entity.ports),
            modes=tuple(port.mode for port in entity.ports),
        )

    walk(unit.architecture.body)


def _signal_assign_targets(statements) -> List[str]:
    targets: List[str] = []
    for stmt in statements:
        if isinstance(stmt, ast.SignalAssign):
            targets.append(stmt.target)
        elif isinstance(stmt, ast.If):
            targets.extend(_signal_assign_targets(stmt.then_branch))
            targets.extend(_signal_assign_targets(stmt.else_branch))
        elif isinstance(stmt, ast.While):
            targets.extend(_signal_assign_targets(stmt.body))
    return targets


def _check_port_writes(unit: HierarchyUnit) -> None:
    """Reject writes to ``in``-mode ports of the unit's own entity.

    Flat elaboration enforces this per design; checking it structurally here
    keeps the flattening route (where a child's in-port occurrence is renamed
    to a writable parent signal) in agreement with the summary route (where
    each entity is elaborated standalone).
    """
    in_ports = {p.name for p in unit.entity.ports if p.mode is ast.PortMode.IN}
    if not in_ports:
        return
    for item in unit.items:
        if isinstance(item, Instance):
            continue
        if isinstance(item, ast.ConcurrentAssign):
            targets = _signal_assign_targets([item.assignment])
            where = "concurrent assignment"
        else:
            targets = _signal_assign_targets(item.body)
            where = f"process {item.name!r}"
        for target in targets:
            if target in in_ports:
                raise HierarchyError(
                    f"entity {unit.name!r}: {where} assigns to input "
                    f"port {target!r}"
                )


def _check_component_interface(
    component: ast.ComponentDeclaration, entity: ast.Entity
) -> None:
    declared = [(p.name, p.mode) for p in component.ports]
    actual = [(p.name, p.mode) for p in entity.ports]
    if declared != actual:
        raise HierarchyError(
            f"component declaration {component.name!r} does not match entity "
            f"{entity.name!r}: component ports "
            f"({', '.join(f'{n}:{m.value}' for n, m in declared)}) vs entity "
            f"ports ({', '.join(f'{n}:{m.value}' for n, m in actual)})"
        )


# ---------------------------------------------------------------------------
# Hierarchy construction
# ---------------------------------------------------------------------------


def _unit_for(program: ast.Program, entity_name: str) -> HierarchyUnit:
    entity = program.entity(entity_name)
    if entity is None:
        raise HierarchyError(f"entity {entity_name!r} is not declared")
    architecture = program.architecture_of(entity_name)
    if architecture is None:
        raise HierarchyError(f"no architecture found for entity {entity_name!r}")
    unit = HierarchyUnit(entity=entity, architecture=architecture)
    _collect_declarations(unit, architecture.declarations)
    _normalize_unit(unit, program)
    _check_port_writes(unit)
    return unit


def _infer_root(program: ast.Program) -> str:
    """The unique entity that no architecture instantiates."""
    if not program.architectures:
        raise HierarchyError("program contains no architecture")
    instantiated = set()
    for arch in program.architectures:

        def scan(body: List[ast.ConcurrentStatement]) -> None:
            for stmt in body:
                if isinstance(stmt, ast.ComponentInstantiation):
                    instantiated.add(stmt.component.lower())
                elif isinstance(stmt, ast.BlockStatement):
                    scan(stmt.body)

        scan(arch.body)
    roots = [
        arch.entity_name
        for arch in program.architectures
        if arch.entity_name.lower() not in instantiated
    ]
    if len(roots) == 1:
        return roots[0]
    if not roots:
        raise HierarchyError(
            "no root entity: every architecture is instantiated by another "
            "(instantiation cycle?)"
        )
    raise HierarchyError(
        f"ambiguous root entity ({', '.join(sorted(roots))}); "
        "pass entity_name to select one"
    )


def build_hierarchy(
    program: ast.Program, entity_name: Optional[str] = None
) -> DesignHierarchy:
    """Resolve and check the instantiation tree rooted at ``entity_name``.

    With ``entity_name=None`` the root is inferred: the unique entity not
    instantiated by any architecture.  Raises
    :class:`~repro.errors.HierarchyError` for any structural fault, including
    instantiation cycles (reported with the offending entity path).
    """
    root = entity_name if entity_name is not None else _infer_root(program)
    hierarchy = DesignHierarchy(program=program, root=root)

    visiting: List[str] = []

    def visit(name: str) -> None:
        key = name.lower()
        if key in (n.lower() for n in visiting):
            cycle = visiting[visiting.index(next(v for v in visiting if v.lower() == key)):]
            raise HierarchyError(
                "instantiation cycle: " + " -> ".join(cycle + [name])
            )
        if key in hierarchy.units:
            return
        visiting.append(name)
        unit = _unit_for(program, name)
        for instance in unit.instances:
            visit(instance.entity)
        visiting.pop()
        hierarchy.units[key] = unit
        hierarchy.order.append(unit.name)

    visit(root)
    return hierarchy
