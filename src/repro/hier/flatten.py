"""Flattening elaboration of hierarchical designs.

Flattening replaces every component instantiation with a renamed copy of the
instantiated architecture's concurrent statements:

* a formal port occurrence becomes the bound actual (itself renamed into the
  parent's flat namespace),
* every internal signal, variable and process of an instance is prefixed with
  the instance label (``u3__acc``), composing across nesting levels
  (``bank1__u3__acc``),
* block statements are spliced and their declarations hoisted first, exactly
  as flat elaboration would do, so the flat process order equals the
  normalised traversal order of the hierarchy.

The result is an ordinary single-architecture :class:`~repro.vhdl.ast.Program`
that the flat pipeline analyses as-is.  :func:`flatten_source` pretty-prints
it, which is what the CLI's ``--flatten`` route feeds back through the parser
(so parse caching applies to the flat text too).

This route is the *oracle* for the summary linker: ``docs/hierarchy.md``
and the equivalence tests pin linked output to be byte-identical to the
analysis of the flattened program.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Union

from repro.hier.structure import (
    DesignHierarchy,
    HierarchyUnit,
    Instance,
    build_hierarchy,
    has_instantiations,
)
from repro.vhdl import ast, pretty
from repro.vhdl.clone import clone_declaration, clone_statement, clone_statements
from repro.vhdl.parser import parse_program

Rename = Callable[[str], str]


def _identity(name: str) -> str:
    return name


def instance_rename(instance: Instance, parent_rename: Rename) -> Rename:
    """The flat-namespace rename for names inside ``instance``'s entity.

    A formal port maps to its actual (renamed by the *parent*); every other
    name — internal signals, variables, even already-prefixed names from
    deeper instances — is prefixed with the instance label and then renamed by
    the parent, so prefixes accumulate outwards across nesting levels.

    The summary linker uses the same composition, which is what keeps the two
    routes' namespaces identical.
    """
    bindings = dict(instance.bindings)
    label = instance.label

    def rename(name: str) -> str:
        actual = bindings.get(name)
        if actual is not None:
            return parent_rename(actual)
        return parent_rename(f"{label}__{name}")

    return rename


def _rename_leaf(
    stmt: Union[ast.ProcessStatement, ast.ConcurrentAssign],
    rename: Rename,
    prefix: str,
) -> ast.ConcurrentStatement:
    if isinstance(stmt, ast.ConcurrentAssign):
        return ast.ConcurrentAssign(
            position=stmt.position,
            assignment=clone_statement(stmt.assignment, rename),
        )
    return ast.ProcessStatement(
        position=stmt.position,
        name=prefix + stmt.name,
        declarations=[clone_declaration(d, rename) for d in stmt.declarations],
        body=clone_statements(stmt.body, rename),
        sensitivity=tuple(rename(name) for name in stmt.sensitivity),
    )


def _expand(
    hierarchy: DesignHierarchy,
    unit: HierarchyUnit,
    rename: Rename,
    prefix: str,
) -> Tuple[List[ast.Declaration], List[ast.ConcurrentStatement]]:
    """Renamed signal declarations and concurrent leaves of one subtree.

    Declarations come out as the unit's own (hoisted) declarations followed by
    each instance subtree's, in item order; leaves come out in normalised item
    order with instance bodies spliced in place.
    """
    declarations: List[ast.Declaration] = [
        clone_declaration(decl, rename) for decl in unit.signals
    ]
    declarations.extend(
        clone_declaration(decl, rename) for decl in unit.other_declarations
    )
    leaves: List[ast.ConcurrentStatement] = []
    for item in unit.items:
        if isinstance(item, Instance):
            child = hierarchy.unit_of(item.entity)
            child_rename = instance_rename(item, rename)
            child_prefix = prefix + item.label + "__"
            child_decls, child_leaves = _expand(
                hierarchy, child, child_rename, child_prefix
            )
            declarations.extend(child_decls)
            leaves.extend(child_leaves)
        else:
            leaves.append(_rename_leaf(item, rename, prefix))
    return declarations, leaves


def flatten_hierarchy(hierarchy: DesignHierarchy) -> ast.Program:
    """Flatten a resolved hierarchy into a single-architecture program."""
    root = hierarchy.root_unit
    declarations, leaves = _expand(hierarchy, root, _identity, "")
    architecture = ast.Architecture(
        position=root.architecture.position,
        name=root.architecture.name,
        entity_name=root.entity.name,
        declarations=declarations,
        body=leaves,
    )
    return ast.Program(entities=[root.entity], architectures=[architecture])


def flatten_program(
    program: ast.Program, entity_name: Optional[str] = None
) -> ast.Program:
    """Flatten ``program`` into an equivalent single-architecture program.

    ``entity_name`` selects the hierarchy root (inferred when ``None``).
    Raises :class:`~repro.errors.HierarchyError` for structural faults.
    """
    return flatten_hierarchy(build_hierarchy(program, entity_name))


def flatten_source(program: ast.Program, entity_name: Optional[str] = None) -> str:
    """Flatten ``program`` and render the result as VHDL1 source text."""
    return pretty.format_program(flatten_program(program, entity_name))


def may_instantiate(source: str) -> bool:
    """A cheap textual gate for hierarchy detection.

    Every instantiation statement contains the two-word ``port map`` form,
    which no purely flat construct does — so ``False`` guarantees the source
    has no instantiations and the (much more expensive) parse-and-walk check
    can be skipped.  ``True`` only means "might": comments can fool it, and
    callers confirm with :func:`~repro.hier.structure.has_instantiations`.
    """
    return "port map" in source.lower()


def flatten_if_hierarchical(source: str, entity_name: Optional[str] = None) -> str:
    """``source`` unchanged when flat, else its flattened rendering.

    The transparent-substitution helper behind the check/lint/batch
    surfaces: hierarchical inputs become the equivalent flat program (whose
    analysis the linker is byte-identical to), flat inputs pass through
    untouched without even being parsed.
    """
    if not may_instantiate(source):
        return source
    program = parse_program(source)
    if not has_instantiations(program):
        return source
    return flatten_source(program, entity_name)
