"""Reusable per-entity analysis summaries for the compositional linker.

An :class:`EntitySummary` captures everything the linker needs to place one
entity's processes into a larger design *without re-analysing them*:

* the shape of each process CFG (block kinds, flow edges, wait labels) in the
  labelling the entity receives when analysed standalone — per-process labels
  are allocator-contiguous, so the linker relocates a whole process by adding
  one offset;
* the per-process stages of the paper that are closed under renaming: the
  Table 4 active-signals solutions and the Table 6 local Resource Matrix rows
  (stored name-decoded, since the linker re-interns them into the whole-design
  fact universe under the instance's renaming);
* the free/declared name sets the cross-process stages (Table 5 and the
  Table 7–9 specialisation/closure, which run at link time) start from.

Summaries are content-addressed by the entity's *self slice* — the entity and
its architecture's own signals and leaf statements, with component
declarations and instantiations removed — so editing one entity of a design
invalidates exactly that entity's summary, and two textually identical
entities in different files share one.  They persist through the ordinary
artifact caches under ``summary:``-prefixed keys (landing in
``<cache-dir>/summary/`` next to the pipeline's stage artifacts).

Of the analysis options only ``loop_processes`` shapes a summary (it changes
the CFG wrapping); ``improved`` and ``use_under_approximation`` configure
link-time stages and deliberately do not key summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.analysis.local_deps import local_dependencies
from repro.analysis.reaching_active import analyze_active_signals
from repro.analysis.resource_matrix import Access
from repro.cfg.builder import ProcessCFG, build_cfg
from repro.hier.structure import HierarchyUnit
from repro.pipeline.cache import source_digest
from repro.vhdl import ast, pretty
from repro.vhdl.elaborate import elaborate

#: Bumped when the summary layout changes, so stale cached pickles miss.
SUMMARY_FORMAT = 1

#: ``(label, sorted (name, label) pairs)`` rows of one dataflow solution.
ActiveRows = Tuple[Tuple[int, Tuple[Tuple[str, int], ...]], ...]


@dataclass(frozen=True)
class ProcessSummary:
    """One process of an entity, as analysed standalone.

    All labels are the absolute labels of the standalone run; they occupy the
    allocator span ``[label_base, label_base + label_span)`` (the span always
    counts the synthetic loop-guard label, which straight-line CFGs allocate
    but do not use), so relocation is a single integer offset.
    """

    name: str
    synthesized: bool
    label_base: int
    label_span: int
    entry_label: int
    loop_label: int
    #: ``(label, BlockKind name, assignment target or None)`` per block.
    blocks: Tuple[Tuple[int, str, Optional[str]], ...]
    flow: Tuple[Tuple[int, int], ...]
    wait_labels: Tuple[int, ...]
    free_signals: Tuple[str, ...]
    free_variables: Tuple[str, ...]
    declared_variables: Tuple[str, ...]
    #: ``(label, M0 names, M1 names, R0 names, R1 names)`` — the Table 6 rows.
    local_rows: Tuple[
        Tuple[int, Tuple[str, ...], Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]],
        ...,
    ]
    #: Table 4 entry solutions (exit values are not consumed by any linked
    #: stage, so they are not stored).
    over_entry: ActiveRows
    under_entry: ActiveRows


@dataclass(frozen=True)
class EntitySummary:
    """The linkable analysis summary of one entity."""

    entity: str
    ports: Tuple[Tuple[str, str], ...]
    internal_signals: Tuple[str, ...]
    processes: Tuple[ProcessSummary, ...]
    label_span: int
    source_digest: str


# ---------------------------------------------------------------------------
# Self slice and cache key
# ---------------------------------------------------------------------------


def entity_slice(unit: HierarchyUnit) -> ast.Program:
    """The entity-local program of ``unit``: its own leaves, no instances.

    Signal declarations hoisted out of blocks are kept (they are part of the
    entity's own namespace); component declarations and instantiations are
    dropped — they influence linking, not the entity-local analysis.
    """
    declarations = list(unit.signals) + list(unit.other_declarations)
    architecture = ast.Architecture(
        position=unit.architecture.position,
        name=unit.architecture.name,
        entity_name=unit.entity.name,
        declarations=declarations,
        body=list(unit.leaves),
    )
    return ast.Program(entities=[unit.entity], architectures=[architecture])


def slice_source(unit: HierarchyUnit) -> str:
    """The canonical source text of the self slice (the content address)."""
    return pretty.format_program(entity_slice(unit))


def summary_cache_key(unit: HierarchyUnit, loop_processes: bool = True) -> str:
    """The artifact-cache key of ``unit``'s summary.

    Keyed by the self-slice digest, the entity, ``loop_processes`` and the
    summary format — and deliberately *not* by ``improved`` or
    ``use_under_approximation``, which only configure link-time stages.
    """
    digest = source_digest(slice_source(unit))
    return (
        f"summary:v{SUMMARY_FORMAT}:{digest}:{unit.name.lower()}"
        f":loop_processes={loop_processes!r}"
    )


# ---------------------------------------------------------------------------
# Building
# ---------------------------------------------------------------------------


def _active_rows(solution: Dict[int, FrozenSet[Tuple[str, int]]]) -> ActiveRows:
    return tuple(
        (label, tuple(sorted(pairs))) for label, pairs in sorted(solution.items())
    )


def _summarize_process(cfg: ProcessCFG) -> ProcessSummary:
    labels = sorted(cfg.blocks)
    base = labels[0]
    span = len(cfg.body_labels) + 2  # body + entry + (possibly unused) guard
    if labels[-1] >= base + span:
        raise AssertionError(
            f"process {cfg.name!r}: labels {labels} exceed allocator span "
            f"[{base}, {base + span})"
        )

    blocks = []
    for label in labels:
        block = cfg.blocks[label]
        target = (
            block.statement.target
            if block.kind.name in ("VARIABLE_ASSIGN", "SIGNAL_ASSIGN")
            else None
        )
        blocks.append((label, block.kind.name, target))

    active = analyze_active_signals(cfg)
    matrix = local_dependencies(cfg.process)
    columns = {access: matrix.column(access) for access in Access}
    row_labels = sorted(set().union(*(col.keys() for col in columns.values())))
    decode = matrix.universe.decode_list
    local_rows = tuple(
        (
            label,
            tuple(sorted(decode(columns[Access.M0].get(label, 0)))),
            tuple(sorted(decode(columns[Access.M1].get(label, 0)))),
            tuple(sorted(decode(columns[Access.R0].get(label, 0)))),
            tuple(sorted(decode(columns[Access.R1].get(label, 0)))),
        )
        for label in row_labels
    )

    return ProcessSummary(
        name=cfg.name,
        synthesized=cfg.process.synthesized,
        label_base=base,
        label_span=span,
        entry_label=cfg.entry_label,
        loop_label=cfg.loop_label,
        blocks=tuple(blocks),
        flow=tuple(sorted(cfg.flow)),
        wait_labels=tuple(sorted(cfg.wait_labels)),
        free_signals=tuple(sorted(cfg.process.free_signals())),
        free_variables=tuple(sorted(cfg.process.free_variables())),
        declared_variables=tuple(cfg.process.variables),
        local_rows=local_rows,
        over_entry=_active_rows(active.over_entry),
        under_entry=_active_rows(active.under_entry),
    )


def _build_summary(unit: HierarchyUnit, loop_processes: bool, digest: str) -> EntitySummary:
    ports = tuple((port.name, port.mode.value) for port in unit.entity.ports)
    internal = tuple(decl.name for decl in unit.signals)
    if not unit.leaves:
        # Purely structural entity: nothing to elaborate (the flat pipeline
        # requires at least one process, which this entity's instances supply).
        return EntitySummary(
            entity=unit.entity.name,
            ports=ports,
            internal_signals=internal,
            processes=(),
            label_span=0,
            source_digest=digest,
        )
    design = elaborate(entity_slice(unit))
    program_cfg = build_cfg(design, loop_processes=loop_processes)
    processes = tuple(
        _summarize_process(program_cfg.processes[name])
        for name in program_cfg.process_order
    )
    return EntitySummary(
        entity=unit.entity.name,
        ports=ports,
        internal_signals=internal,
        processes=processes,
        label_span=sum(ps.label_span for ps in processes),
        source_digest=digest,
    )


def summarize_entity(
    unit: HierarchyUnit,
    loop_processes: bool = True,
    cache=None,
) -> Tuple[EntitySummary, bool]:
    """The summary of ``unit``, served from ``cache`` when possible.

    Returns ``(summary, from_cache)``.  ``cache`` is any of the artifact
    caches of :mod:`repro.pipeline.cache` (or ``None`` to always build).
    """
    digest = source_digest(slice_source(unit))
    key = (
        f"summary:v{SUMMARY_FORMAT}:{digest}:{unit.name.lower()}"
        f":loop_processes={loop_processes!r}"
    )
    if cache is not None:
        cached = cache.get(key)
        if isinstance(cached, EntitySummary):
            return cached, True
    summary = _build_summary(unit, loop_processes, digest)
    if cache is not None:
        cache.put(key, summary)
    return summary, False
