"""Replay the recorded corpus against live surfaces and diff every field.

``verify_corpus`` boots the server profile of each interaction group (see
:mod:`repro.contract.profiles`), replays every recorded request — HTTP
round-trips and CLI invocations — and compares the normalised live
response against the recording with
:func:`repro.contract.differ.diff_documents`:

* **additive** divergences (new optional fields) pass; each one is logged
  with an ``additive`` line so the growth is visible in CI output;
* **breaking** divergences (removed field, type change, value change,
  status / exit-code change) fail the interaction with a field-level
  JSON-pointer diff naming it.

**Version wiring.** Before any diff, each interaction's recorded
``schema`` is checked against the live contract version — ``GET /version``
of the very server under test for HTTP interactions,
:data:`repro.pipeline.render.SCHEMA_VERSION` for CLI ones.  A skew fails
with instructions to re-record; a breaking diff at a *matching* version
fails with instructions to either revert or bump to ``vhdl-ifa/v2`` and
re-record.  That makes "breaking change" an explicit, versioned event
rather than a silent drift.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.pipeline.serve import interaction_id as serve_interaction_id

from .differ import ADDITIVE, BREAKING, Divergence, diff_documents
from .matchers import normalize
from .model import Corpus, Interaction
from .profiles import (
    PROFILES,
    boot,
    http_request,
    materialize_inputs,
    resolve_argv,
    run_cli,
    saturated,
)

#: The advice appended to every breaking failure (the v2 bump procedure).
BUMP_ADVICE = (
    "either revert the producer change, or bump SCHEMA_VERSION to "
    "'vhdl-ifa/v2' and re-record the corpus (vhdl-ifa contract record)"
)


@dataclass
class InteractionResult:
    """The verdict of replaying one interaction."""

    interaction: Interaction
    ok: bool
    breaking: List[Divergence] = field(default_factory=list)
    additive: List[Divergence] = field(default_factory=list)
    failure: Optional[str] = None  # non-diff failure (version skew, transport)

    def describe(self) -> str:
        label = f"{self.interaction.description} ({self.interaction.id})"
        if self.ok:
            suffix = (
                f" [+{len(self.additive)} additive]" if self.additive else ""
            )
            return f"PASS {label}{suffix}"
        if self.failure is not None:
            return f"FAIL {label}: {self.failure}"
        lines = [f"FAIL {label}: {len(self.breaking)} breaking divergence(s)"]
        lines.extend(f"  {divergence}" for divergence in self.breaking)
        lines.append(f"  {BUMP_ADVICE}")
        return "\n".join(lines)


@dataclass
class VerifyReport:
    """The outcome of one full corpus replay in one execution mode."""

    mode: str
    results: List[InteractionResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[InteractionResult]:
        return [result for result in self.results if not result.ok]

    @property
    def additive_count(self) -> int:
        return sum(len(result.additive) for result in self.results)

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (
            f"contract verify [{self.mode}]: {verdict} — "
            f"{len(self.results)} interaction(s), "
            f"{len(self.failures)} failing, "
            f"{self.additive_count} additive field(s)"
        )


def _check_schema(interaction: Interaction, live_schema: str) -> Optional[str]:
    if interaction.schema != live_schema:
        return (
            f"recorded against contract {interaction.schema!r} but the live "
            f"surface speaks {live_schema!r}; re-record the corpus against "
            "the new contract version (vhdl-ifa contract record)"
        )
    return None


def _diff_result(
    interaction: Interaction,
    live_document: Any,
    *,
    recorded_code: int,
    live_code: int,
    code_label: str,
    log: Optional[Callable[[str], None]],
) -> InteractionResult:
    divergences = list(
        diff_documents(
            interaction.response["document"],
            normalize(live_document, interaction.matchers),
        )
    )
    if live_code != recorded_code:
        divergences.insert(
            0,
            Divergence(
                "",
                BREAKING,
                f"{code_label} changed from {recorded_code} to {live_code}",
            ),
        )
    breaking = [d for d in divergences if d.kind == BREAKING]
    additive = [d for d in divergences if d.kind == ADDITIVE]
    result = InteractionResult(
        interaction=interaction,
        ok=not breaking,
        breaking=breaking,
        additive=additive,
    )
    if log:
        for divergence in additive:
            log(
                f"additive: {interaction.description} ({interaction.id}) "
                f"{divergence.pointer}: {divergence.detail}"
            )
        if breaking:
            log(result.describe())
    return result


def _replay_http(
    server: Any,
    interaction: Interaction,
    live_schema: str,
    log: Optional[Callable[[str], None]],
) -> InteractionResult:
    skew = _check_schema(interaction, live_schema)
    if skew is not None:
        return InteractionResult(interaction=interaction, ok=False, failure=skew)
    request = interaction.request
    method, path = request["method"], request["path"]
    payload = request.get("body")
    try:
        status, document, headers = http_request(server.port, method, path, payload)
    except Exception as error:  # transport failure is a verification failure
        return InteractionResult(
            interaction=interaction,
            ok=False,
            failure=f"transport error replaying {method} {path}: {error!r}",
        )
    if status != 413:  # a 413 is rejected before the body is read: no id
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        expected_header = serve_interaction_id(method, path, body)
        if headers.get("X-Interaction-Id") != expected_header:
            return InteractionResult(
                interaction=interaction,
                ok=False,
                failure=(
                    f"X-Interaction-Id header "
                    f"{headers.get('X-Interaction-Id')!r} does not match the "
                    f"request address {expected_header!r}"
                ),
            )
    return _diff_result(
        interaction,
        document,
        recorded_code=int(interaction.response["status"]),
        live_code=status,
        code_label="status",
        log=log,
    )


def _replay_cli(
    root: Path,
    interaction: Interaction,
    live_schema: str,
    log: Optional[Callable[[str], None]],
) -> InteractionResult:
    skew = _check_schema(interaction, live_schema)
    if skew is not None:
        return InteractionResult(interaction=interaction, ok=False, failure=skew)
    argv = resolve_argv(interaction.request["argv"], root)
    try:
        exit_code, document = run_cli(argv)
    except Exception as error:
        return InteractionResult(
            interaction=interaction,
            ok=False,
            failure=f"error replaying CLI {argv!r}: {error!r}",
        )
    return _diff_result(
        interaction,
        document,
        recorded_code=int(interaction.response["exit_code"]),
        live_code=exit_code,
        code_label="exit code",
        log=log,
    )


def verify_corpus(
    corpus: Corpus,
    mode: str = "inline",
    scratch: Optional[Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> VerifyReport:
    """Replay every interaction of ``corpus`` in ``mode`` (inline/pool)."""
    from repro.pipeline.render import SCHEMA_VERSION

    if scratch is None:
        with tempfile.TemporaryDirectory(prefix="vhdl-ifa-contract-") as tmp:
            return verify_corpus(corpus, mode, Path(tmp), log)
    root = materialize_inputs(Path(scratch))
    report = VerifyReport(mode=mode)
    by_profile: Dict[str, List[Interaction]] = {}
    for interaction in corpus:
        by_profile.setdefault(interaction.profile, []).append(interaction)
    for profile_name, group in by_profile.items():
        if profile_name == "cli":
            for interaction in group:
                report.results.append(
                    _replay_cli(root, interaction, SCHEMA_VERSION, log)
                )
            continue
        profile = PROFILES.get(profile_name)
        if profile is None:
            for interaction in group:
                report.results.append(
                    InteractionResult(
                        interaction=interaction,
                        ok=False,
                        failure=(
                            f"unknown server profile {profile_name!r}; the "
                            "corpus and repro.contract.profiles are out of sync"
                        ),
                    )
                )
            continue
        with boot(profile, mode=mode) as server:
            # The live contract version, asked of the very server under test.
            _, version_document, _ = http_request(server.port, "GET", "/version")
            live_schema = str(version_document.get("schema"))
            with saturated(server, profile):
                for interaction in group:
                    report.results.append(
                        _replay_http(server, interaction, live_schema, log)
                    )
    if log:
        log(report.summary())
    return report
