"""Record the consumer-contract corpus from live surfaces.

``record_corpus`` boots each server profile (see
:mod:`repro.contract.profiles`), plays a fixed inventory of requests
against it — every serve endpoint including the 400/404/405/409/413/429/504
error paths — runs the four JSON CLI subcommands over the paper workloads,
and captures each round-trip as a normalised
:class:`repro.contract.model.Interaction`.  Volatile fields are masked
*at record time* using the authoritative matcher tables from
:func:`repro.pipeline.render.volatile_pointers`, so committed files pin
exactly the stable surface.

The inventory asserts the status / exit code of every recording — a
recording that does not reproduce its expected outcome is a bug in the
profile table, and must fail loudly here rather than commit a lie.

CLI argv entries use ``@workloads/…`` and ``@fixtures/…`` placeholders, so
no absolute path reaches a committed file.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import workloads
from repro.pipeline.render import volatile_pointers
from repro.pipeline.serve import interaction_id as serve_interaction_id

from .matchers import normalize
from .model import KIND_CLI, KIND_HTTP, Corpus, Interaction
from .profiles import (
    CONFLICTING_POLICY,
    HANG_MARKER,
    MLS_POLICY,
    PROFILES,
    boot,
    http_request,
    materialize_inputs,
    resolve_argv,
    run_cli,
    saturated,
)

#: The secret input resource of each paper workload (drives /check requests).
WORKLOAD_SECRETS: Dict[str, str] = {
    "paper_program_a": "a",
    "paper_program_b": "a",
    "challenge_f": "key",
    "producer_consumer": "left",
    "conditional": "sel",
    "two_phase": "x",
    "overwriting_loop": "data",
    "synthetic_chain": "chain_in",
}


@dataclass(frozen=True)
class _HttpPlan:
    description: str
    profile: str
    method: str
    path: str
    payload: Optional[Dict[str, Any]]
    expected_status: int
    command: str  # selects the volatile_pointers matcher table


@dataclass(frozen=True)
class _CliPlan:
    description: str
    argv: Tuple[str, ...]  # with @workloads/ / @fixtures/ placeholders
    expected_exit: int
    command: str


def _http_inventory() -> List[_HttpPlan]:
    sources = dict(workloads.batch_workload_sources())
    plans: List[_HttpPlan] = []
    for name, source in sources.items():
        plans.append(
            _HttpPlan(
                f"analyze {name}", "default", "POST", "/analyze",
                {"source": source}, 200, "analyze",
            )
        )
    for name, source in sources.items():
        payload: Dict[str, Any] = {
            "source": source,
            "secret": [WORKLOAD_SECRETS[name]],
        }
        if name == "challenge_f":
            payload["output"] = ["leak"]
        plans.append(
            _HttpPlan(
                f"check {name} secret", "default", "POST", "/check",
                payload, 200, "check",
            )
        )
    for name, source in sources.items():
        plans.append(
            _HttpPlan(
                f"lint {name}", "default", "POST", "/lint",
                {"source": source}, 200, "lint",
            )
        )
    hier = dict(workloads.hierarchy_workload_sources())
    plans.append(
        _HttpPlan(
            "analyze hierarchical mux", "default", "POST", "/analyze",
            {"source": hier["mux_top"]}, 200, "analyze",
        )
    )
    plans.append(
        _HttpPlan(
            "check hierarchical mux secret", "default", "POST", "/check",
            {"source": hier["mux_top"], "secret": ["sel"]}, 200, "check",
        )
    )
    plans.append(
        _HttpPlan(
            "lint hierarchical mux", "default", "POST", "/lint",
            {"source": hier["mux_top"]}, 200, "lint",
        )
    )
    plans.append(
        _HttpPlan(
            "analyze unbound formal port", "default", "POST", "/analyze",
            {
                "source": hier["mux_top"].replace(
                    "port map (lo, sel, n2)", "port map (lo, sel)"
                )
            },
            400, "error",
        )
    )
    plans.extend(
        [
            _HttpPlan(
                "policy register mls", "default", "POST", "/policy",
                dict(MLS_POLICY), 200, "policy",
            ),
            _HttpPlan(
                "policy invalid level rank", "default", "POST", "/policy",
                {"levels": {"public": "zero"}}, 400, "error",
            ),
            _HttpPlan(
                "analyze parse error", "default", "POST", "/analyze",
                {"source": "entity broken"}, 400, "error",
            ),
            _HttpPlan(
                "analyze missing source", "default", "POST", "/analyze",
                {}, 400, "error",
            ),
            _HttpPlan(
                "unknown path", "default", "POST", "/nope", {}, 404, "error",
            ),
            _HttpPlan(
                "analyze wrong method", "default", "GET", "/analyze",
                None, 405, "error",
            ),
            _HttpPlan(
                "version wrong method", "default", "POST", "/version",
                {}, 405, "error",
            ),
            _HttpPlan(
                "analyze oversized body", "limits", "POST", "/analyze",
                {"source": "-- padding\n" + "x" * 4096}, 413, "error",
            ),
            _HttpPlan(
                "policy conflicting redefinition", "conflict", "POST", "/policy",
                dict(CONFLICTING_POLICY), 409, "error",
            ),
            _HttpPlan(
                "stats snapshot", "ops-inline", "GET", "/stats", None, 200, "stats",
            ),
            _HttpPlan(
                "version document", "ops-inline", "GET", "/version",
                None, 200, "version",
            ),
            _HttpPlan(
                "healthz inline", "ops-inline", "GET", "/healthz",
                None, 200, "healthz",
            ),
            _HttpPlan(
                "metrics inline", "ops-inline", "GET", "/metrics",
                None, 200, "metrics",
            ),
            _HttpPlan(
                "healthz pool", "ops-pool", "GET", "/healthz",
                None, 200, "healthz",
            ),
            _HttpPlan(
                "metrics pool", "ops-pool", "GET", "/metrics",
                None, 200, "metrics",
            ),
            _HttpPlan(
                "analyze hung worker times out", "hang", "POST", "/analyze",
                {
                    "source": workloads.challenge_f_program()
                    + f"\n-- {HANG_MARKER}\n"
                },
                504, "error",
            ),
            _HttpPlan(
                "analyze shed at capacity", "shed", "POST", "/analyze",
                {"source": workloads.paper_program_a()}, 429, "error",
            ),
        ]
    )
    return plans


def _cli_inventory() -> List[_CliPlan]:
    return [
        _CliPlan(
            "cli analyze challenge-f",
            ("analyze", "@workloads/challenge_f.vhd", "--json"), 0, "analyze",
        ),
        _CliPlan(
            "cli analyze conditional",
            ("analyze", "@workloads/conditional.vhd", "--json"), 0, "analyze",
        ),
        _CliPlan(
            "cli check challenge-f clean",
            (
                "check", "@workloads/challenge_f.vhd",
                "--secret", "key", "--output", "leak", "--json",
            ),
            0, "check",
        ),
        _CliPlan(
            "cli check producer-consumer violation",
            (
                "check", "@workloads/producer_consumer.vhd",
                "--secret", "left", "--json",
            ),
            3, "check",
        ),
        _CliPlan(
            "cli check challenge-f policy file",
            (
                "check", "@workloads/challenge_f.vhd",
                "--policy", "@fixtures/mls.json", "--json",
            ),
            3, "check",
        ),
        _CliPlan(
            "cli lint overwriting-loop",
            (
                "lint", "@workloads/overwriting_loop.vhd",
                "--json", "--fail-on", "never",
            ),
            0, "lint",
        ),
        _CliPlan(
            "cli lint synthetic-chain",
            (
                "lint", "@workloads/synthetic_chain.vhd",
                "--json", "--fail-on", "never",
            ),
            0, "lint",
        ),
        _CliPlan(
            "cli analyze hierarchical mux",
            ("analyze", "@workloads/mux_top.vhd", "--json"), 0, "analyze",
        ),
        _CliPlan(
            "cli analyze hierarchical mux flattened",
            ("analyze", "@workloads/mux_top.vhd", "--json", "--flatten"),
            0, "analyze",
        ),
        _CliPlan(
            "cli batch sequential",
            (
                "batch", "@workloads/paper_program_a.vhd",
                "@workloads/paper_program_b.vhd", "@workloads/two_phase.vhd",
                "--sequential", "--json",
            ),
            0, "batch",
        ),
    ]


def _record_http(log: Optional[Callable[[str], None]]) -> List[Interaction]:
    from repro.pipeline.render import SCHEMA_VERSION

    interactions: List[Interaction] = []
    plans = _http_inventory()
    by_profile: Dict[str, List[_HttpPlan]] = {}
    for plan in plans:
        by_profile.setdefault(plan.profile, []).append(plan)
    for profile_name, group in by_profile.items():
        profile = PROFILES[profile_name]
        with boot(profile, mode="inline") as server:
            with saturated(server, profile):
                for plan in group:
                    status, document, headers = http_request(
                        server.port, plan.method, plan.path, plan.payload
                    )
                    if status != plan.expected_status:
                        raise RuntimeError(
                            f"recording {plan.description!r}: expected status "
                            f"{plan.expected_status}, server answered {status}: "
                            f"{document}"
                        )
                    if status != 413:  # a 413 is rejected before the body is read
                        body = (
                            b""
                            if plan.payload is None
                            else json.dumps(plan.payload).encode("utf-8")
                        )
                        expected_header = serve_interaction_id(
                            plan.method, plan.path, body
                        )
                        if headers.get("X-Interaction-Id") != expected_header:
                            raise RuntimeError(
                                f"recording {plan.description!r}: X-Interaction-Id "
                                f"header {headers.get('X-Interaction-Id')!r} does "
                                f"not match the request address {expected_header!r}"
                            )
                    matchers = volatile_pointers(plan.command)
                    interaction = Interaction.build(
                        description=plan.description,
                        schema=str(document.get("schema", SCHEMA_VERSION)),
                        profile=plan.profile,
                        request={
                            "kind": KIND_HTTP,
                            "method": plan.method,
                            "path": plan.path,
                            "body": plan.payload,
                        },
                        response={
                            "status": status,
                            "document": normalize(document, matchers),
                        },
                        matchers=matchers,
                    )
                    interactions.append(interaction)
                    if log:
                        log(
                            f"recorded {interaction.id}  {plan.method} "
                            f"{plan.path} -> {status}  [{plan.profile}] "
                            f"{plan.description}"
                        )
    return interactions


def _record_cli(
    root: Path, log: Optional[Callable[[str], None]]
) -> List[Interaction]:
    from repro.pipeline.render import SCHEMA_VERSION

    interactions: List[Interaction] = []
    for plan in _cli_inventory():
        exit_code, document = run_cli(resolve_argv(plan.argv, root))
        if exit_code != plan.expected_exit:
            raise RuntimeError(
                f"recording {plan.description!r}: expected exit "
                f"{plan.expected_exit}, CLI exited {exit_code}"
            )
        matchers = volatile_pointers(plan.command)
        interaction = Interaction.build(
            description=plan.description,
            schema=str(document.get("schema", SCHEMA_VERSION)),
            profile="cli",
            request={"kind": KIND_CLI, "argv": list(plan.argv)},
            response={
                "exit_code": exit_code,
                "document": normalize(document, matchers),
            },
            matchers=matchers,
        )
        interactions.append(interaction)
        if log:
            log(
                f"recorded {interaction.id}  vhdl-ifa "
                f"{' '.join(plan.argv)} -> exit {exit_code}"
            )
    return interactions


def record_corpus(
    scratch: Optional[Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Corpus:
    """Record the full corpus; ``scratch`` holds workload/fixture files."""
    if scratch is None:
        with tempfile.TemporaryDirectory(prefix="vhdl-ifa-contract-") as tmp:
            return record_corpus(Path(tmp), log)
    root = materialize_inputs(Path(scratch))
    interactions = _record_http(log)
    interactions.extend(_record_cli(root, log))
    return Corpus(interactions=interactions)
