"""Pact-style matcher rules: declare volatile fields instead of pinning them.

A recorded interaction pins its response *literally* except where a matcher
rule says the value is volatile — per-stage ``timings``, ``cached_stages``,
server ``uptime_seconds``, latency histograms, absolute file paths.  A rule
maps a JSON pointer (RFC 6901, plus ``*`` as a wildcard path segment) to the
JSON type the field must have::

    {"/timings": "object", "/cached_stages": "array", "/jobs/*/file": "string"}

:func:`normalize` rewrites a document by replacing each matched value whose
type agrees with the rule by the canonical mask ``{"$volatile": "<type>"}``.
A value of the *wrong* type is left in place, so the differ reports it as a
breaking type change against the recorded mask.  Normalisation is

* **idempotent** — an already-masked value is never re-interpreted (the mask
  token itself is an object, but it is recognised and left alone), so
  ``normalize(normalize(d)) == normalize(d)``;
* **order-stable** — rules are applied in sorted pointer order regardless of
  the mapping's iteration order, and a rule whose pointer no longer resolves
  (e.g. because a parent rule masked the subtree) is skipped, so any rule
  ordering produces the same document.

Both properties are pinned by ``tests/test_contract_matchers.py``.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterator, List, Mapping, Tuple

#: The single key of a masked (volatile) value in a normalised document.
VOLATILE_KEY = "$volatile"

#: The JSON type vocabulary matcher rules speak.
JSON_TYPES = ("null", "boolean", "number", "string", "array", "object")


def json_type(value: Any) -> str:
    """The JSON type name of ``value`` (ints and floats are both "number")."""
    if value is None:
        return "null"
    if isinstance(value, bool):  # bool is an int subclass: test it first
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    raise TypeError(f"not a JSON value: {value!r}")


def mask(type_name: str) -> Dict[str, str]:
    """The canonical placeholder a volatile value is replaced with."""
    if type_name not in JSON_TYPES:
        raise ValueError(
            f"unknown JSON type {type_name!r}; expected one of "
            + ", ".join(JSON_TYPES)
        )
    return {VOLATILE_KEY: type_name}


def is_mask(value: Any) -> bool:
    """Whether ``value`` is a placeholder produced by :func:`mask`."""
    return (
        isinstance(value, dict)
        and set(value) == {VOLATILE_KEY}
        and value[VOLATILE_KEY] in JSON_TYPES
    )


def split_pointer(pointer: str) -> List[str]:
    """RFC 6901: ``"/a/b~1c"`` → ``["a", "b/c"]`` (``~0``→``~``, ``~1``→``/``)."""
    if pointer == "":
        return []
    if not pointer.startswith("/"):
        raise ValueError(f"JSON pointer must start with '/': {pointer!r}")
    return [
        token.replace("~1", "/").replace("~0", "~")
        for token in pointer[1:].split("/")
    ]


def join_pointer(tokens: List[str]) -> str:
    """The inverse of :func:`split_pointer`."""
    return "".join(
        "/" + token.replace("~", "~0").replace("/", "~1") for token in tokens
    )


def _sites(value: Any, tokens: List[str]) -> Iterator[Tuple[Any, Any]]:
    """Every ``(container, key)`` a (possibly wildcarded) pointer resolves to.

    ``*`` matches every key of an object or every index of an array at that
    depth.  A token that does not resolve yields nothing — matcher rules are
    declarations of *where volatility may appear*, not assertions that the
    field exists (field presence is the differ's job).
    """
    head, rest = tokens[0], tokens[1:]
    if isinstance(value, dict):
        if is_mask(value):
            return  # an already-masked subtree has no interior left to visit
        keys = list(value) if head == "*" else ([head] if head in value else [])
        for key in keys:
            if rest:
                yield from _sites(value[key], rest)
            else:
                yield value, key
    elif isinstance(value, list):
        if head == "*":
            indexes: List[int] = list(range(len(value)))
        else:
            try:
                index = int(head)
            except ValueError:
                return
            indexes = [index] if 0 <= index < len(value) else []
        for index in indexes:
            if rest:
                yield from _sites(value[index], rest)
            else:
                yield value, index


def normalize(document: Any, matchers: Mapping[str, str]) -> Any:
    """``document`` with every matcher-rule site replaced by its mask.

    The input is never mutated.  Rules apply in sorted pointer order; a site
    whose current value is already a mask is left untouched (idempotence),
    and a site whose value has the wrong JSON type is left *unmasked* so the
    diff against the recorded mask surfaces the type change as breaking.
    """
    result = copy.deepcopy(document)
    for pointer in sorted(matchers):
        type_name = matchers[pointer]
        if type_name not in JSON_TYPES:
            raise ValueError(
                f"matcher {pointer!r} declares unknown JSON type {type_name!r}"
            )
        tokens = split_pointer(pointer)
        if not tokens:
            raise ValueError("the root document cannot be declared volatile")
        for container, key in list(_sites(result, tokens)):
            current = container[key]
            if is_mask(current):
                continue
            if json_type(current) == type_name:
                container[key] = mask(type_name)
    return result
