"""Server profiles: the reproducible environments interactions replay under.

A recorded response is only meaningful together with the server
configuration that produced it — a ``409`` needs a policy name already
taken, a ``413`` needs a small body limit, a ``504`` needs an armed hang
fault and a short budget.  A :class:`ServerProfile` pins exactly that
configuration, and both the recorder and the verifier boot servers from
the same table, so a recording is reproducible by construction.

Profiles whose ``mode`` is ``"auto"`` follow the execution mode the
verifier asks for (inline or worker-pool) — replaying them in *both* modes
is what exercises the repo's byte-identity invariant (CLI ``--json``,
inline serve and pool serve emit the same documents).  Mode-pinned
profiles (``ops-inline``/``ops-pool``, the fault profiles) always boot
their recorded mode, because their responses mention it.

This module also hosts the shared plumbing both sides need: the HTTP
client, deterministic workload/fixture materialisation for CLI
interactions (argv placeholders ``@workloads/…`` / ``@fixtures/…`` resolve
against a scratch directory, so no absolute path is ever committed), and
the in-process CLI runner.
"""

from __future__ import annotations

import contextlib
import http.client
import io
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Source markers the fault profiles trigger on (see repro.pipeline.faults).
HANG_MARKER = "contract_hang_marker"
SLOW_MARKER = "contract_slow_marker"

#: The MLS policy the corpus registers via ``POST /policy`` and checks with.
MLS_POLICY: Dict[str, Any] = {
    "name": "mls",
    "description": "two-level confidentiality policy for the contract corpus",
    "levels": {"public": 0, "secret": 1},
    "resources": {"key": "secret"},
    "allow": [{"from": "public", "to": "secret"}],
}

#: Preloaded on the ``conflict`` profile under the name "pinned".
PINNED_POLICY: Dict[str, Any] = {
    "name": "pinned",
    "levels": {"public": 0, "secret": 1},
    "resources": {"key": "secret"},
}

#: Posted against the preloaded "pinned" name to provoke the 409.
CONFLICTING_POLICY: Dict[str, Any] = {
    "name": "pinned",
    "levels": {"public": 0, "secret": 1, "topsecret": 2},
    "resources": {"key": "topsecret"},
}

#: Policy files materialised for CLI interactions, name → document.
CONTRACT_FIXTURES: Dict[str, Dict[str, Any]] = {"mls.json": MLS_POLICY}

#: argv placeholder prefixes resolved against the scratch directory.
WORKLOADS_PREFIX = "@workloads/"
FIXTURES_PREFIX = "@fixtures/"


@dataclass(frozen=True)
class ServerProfile:
    """One reproducible server environment interactions are pinned to."""

    name: str
    description: str
    mode: str = "auto"  # "auto" | "inline" | "pool"
    workers: int = 2  # pool size whenever pool mode applies
    timeout: Optional[float] = None  # per-request budget (pool mode)
    queue_depth: Optional[int] = None
    max_body_bytes: Optional[int] = None
    fault_delay: float = 0.0  # FaultPlan(delay_seconds=..., match=fault_match)
    fault_match: Optional[str] = None
    policies: Tuple[Tuple[str, str], ...] = ()  # (name, fixture file) pairs
    saturate: bool = False  # hold a slow request in flight around each replay


PROFILES: Dict[str, ServerProfile] = {
    profile.name: profile
    for profile in (
        ServerProfile(
            name="default",
            description="stock server: analysis, policy and error-path interactions",
        ),
        ServerProfile(
            name="limits",
            description="2 KiB body cap for the 413 oversized-request interaction",
            max_body_bytes=2048,
        ),
        ServerProfile(
            name="conflict",
            description="policy name 'pinned' preloaded, for the 409 interaction",
            policies=(("pinned", "pinned.json"),),
        ),
        ServerProfile(
            name="ops-inline",
            description="inline-mode ops endpoints (healthz/metrics/stats/version)",
            mode="inline",
        ),
        ServerProfile(
            name="ops-pool",
            description="pool-mode ops endpoints (healthz/metrics report workers)",
            mode="pool",
            workers=2,
        ),
        ServerProfile(
            name="hang",
            description="armed hang fault + 1s budget for the 504 interaction",
            mode="pool",
            workers=1,
            timeout=1.0,
            fault_delay=30.0,
            fault_match=HANG_MARKER,
        ),
        ServerProfile(
            name="shed",
            description="single admission slot held busy for the 429 interaction",
            mode="pool",
            workers=1,
            timeout=30.0,
            queue_depth=1,
            fault_delay=3.0,
            fault_match=SLOW_MARKER,
            saturate=True,
        ),
    )
}

#: Fixture documents profile preloads resolve to (name → policy document).
_PROFILE_POLICY_DOCS: Dict[str, Dict[str, Any]] = {"pinned.json": PINNED_POLICY}


def resolve_mode(profile: ServerProfile, requested: str) -> str:
    """The execution mode a profile boots under a verifier-requested mode."""
    if requested not in ("inline", "pool"):
        raise ValueError(f"mode must be 'inline' or 'pool', not {requested!r}")
    return requested if profile.mode == "auto" else profile.mode


@contextlib.contextmanager
def boot(profile: ServerProfile, mode: str = "inline") -> Iterator[Any]:
    """Boot a fresh server for ``profile`` and yield the running instance."""
    from repro.pipeline import AnalysisServer, ServerThread
    from repro.pipeline.faults import FaultPlan
    from repro.workspace import Workspace

    resolved = resolve_mode(profile, mode)
    workspace = Workspace(
        policies={
            name: dict(_PROFILE_POLICY_DOCS[fixture])
            for name, fixture in profile.policies
        }
    )
    kwargs: Dict[str, Any] = {}
    if profile.timeout is not None:
        kwargs["timeout"] = profile.timeout
    if profile.queue_depth is not None:
        kwargs["queue_depth"] = profile.queue_depth
    if profile.max_body_bytes is not None:
        kwargs["max_body_bytes"] = profile.max_body_bytes
    if profile.fault_match is not None:
        kwargs["faults"] = FaultPlan(
            delay_seconds=profile.fault_delay, match=profile.fault_match
        )
    server = AnalysisServer(
        port=0,
        workspace=workspace,
        workers=None if resolved == "inline" else profile.workers,
        **kwargs,
    )
    with ServerThread(server) as running:
        yield running


def http_request(
    port: int,
    method: str,
    path: str,
    payload: Optional[Mapping[str, Any]] = None,
    timeout: float = 60.0,
) -> Tuple[int, Any, Dict[str, str]]:
    """One HTTP round-trip; returns (status, parsed document, headers)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = None if payload is None else json.dumps(payload)
    connection.request(method, path, body=body)
    response = connection.getresponse()
    text = response.read().decode("utf-8")
    headers = {name: value for name, value in response.getheaders()}
    return response.status, json.loads(text), headers


@contextlib.contextmanager
def saturated(server: Any, profile: ServerProfile) -> Iterator[None]:
    """Hold the profile's admission slot busy for the duration of the block.

    A ``saturate`` profile (the 429 recording) posts one slow-marked request
    on a background thread and waits until the server reports it in flight;
    replays inside the block are then shed deterministically.
    """
    if not profile.saturate:
        yield
        return
    from repro import workloads

    source = workloads.challenge_f_program() + f"\n-- {SLOW_MARKER}\n"

    def _occupy() -> None:
        with contextlib.suppress(Exception):
            http_request(
                server.port, "POST", "/analyze", {"source": source}, timeout=60.0
            )

    thread = threading.Thread(target=_occupy, daemon=True)
    thread.start()
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        _, document, _ = http_request(server.port, "GET", "/metrics")
        if document.get("in_flight", 0) >= 1:
            break
        time.sleep(0.02)
    else:
        raise RuntimeError(
            f"profile {profile.name!r}: the saturating request never became "
            "in-flight; cannot reproduce the 429 interaction"
        )
    try:
        yield
    finally:
        thread.join(timeout=60.0)


def materialize_inputs(root: Path) -> Path:
    """Write the paper workloads and policy fixtures under ``root``.

    CLI interactions reference these files through the ``@workloads/`` /
    ``@fixtures/`` argv placeholders, so the committed corpus never contains
    an absolute path; both the recorder and the verifier call this with a
    scratch directory and resolve placeholders against it.
    """
    from repro import workloads

    root = Path(root)
    workload_dir = root / "workloads"
    workload_dir.mkdir(parents=True, exist_ok=True)
    for name, source in workloads.batch_workload_sources():
        (workload_dir / f"{name}.vhd").write_text(source, encoding="utf-8")
    for name, source in workloads.hierarchy_workload_sources():
        (workload_dir / f"{name}.vhd").write_text(source, encoding="utf-8")
    fixture_dir = root / "fixtures"
    fixture_dir.mkdir(parents=True, exist_ok=True)
    for name, document in CONTRACT_FIXTURES.items():
        (fixture_dir / name).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
    return root


def resolve_argv(argv: Sequence[str], root: Path) -> List[str]:
    """Expand ``@workloads/…`` / ``@fixtures/…`` placeholders to real paths."""
    resolved = []
    for token in argv:
        if token.startswith(WORKLOADS_PREFIX) or token.startswith(FIXTURES_PREFIX):
            resolved.append(str(Path(root) / token[1:]))
        else:
            resolved.append(token)
    return resolved


def run_cli(argv: Sequence[str]) -> Tuple[int, Any]:
    """Run one ``vhdl-ifa`` invocation in-process, returning (exit, document)."""
    from repro.cli import main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        exit_code = main(list(argv))
    text = stdout.getvalue()
    try:
        document = json.loads(text)
    except ValueError as error:
        raise ValueError(
            f"CLI {' '.join(argv)!r} did not print a JSON document: {error}"
        ) from error
    return exit_code, document
