"""Consumer-driven contract suite for the ``vhdl-ifa/v1`` API.

The committed corpus under ``tests/contract/pacts/`` pins every serve
endpoint (including the 4xx/5xx error paths) and the four JSON CLI
subcommands as recorded request/response interactions, pact-style:
volatile fields are matcher rules, everything else is literal.  The
pieces:

:mod:`~repro.contract.model`
    Interaction / Corpus with content-addressed ids.
:mod:`~repro.contract.matchers`
    JSON-pointer volatile-field rules and the idempotent normaliser.
:mod:`~repro.contract.differ`
    Field-level diffing, classifying additive vs breaking divergences.
:mod:`~repro.contract.profiles`
    The reproducible server environments recordings replay under.
:mod:`~repro.contract.recorder`
    ``vhdl-ifa contract record`` — capture the corpus from live surfaces.
:mod:`~repro.contract.verifier`
    ``vhdl-ifa contract verify`` — replay and enforce compatibility,
    with ``vhdl-ifa/v2`` bump enforcement against ``GET /version``.

See ``docs/contracts.md`` for the workflow.
"""

from .differ import ADDITIVE, BREAKING, Divergence, diff_documents
from .matchers import is_mask, json_type, mask, normalize
from .model import Corpus, Interaction, interaction_identity
from .profiles import PROFILES, ServerProfile
from .recorder import record_corpus
from .verifier import InteractionResult, VerifyReport, verify_corpus

#: Repo-relative home of the committed corpus.
PACTS_DIR = "tests/contract/pacts"

__all__ = [
    "ADDITIVE",
    "BREAKING",
    "Corpus",
    "Divergence",
    "Interaction",
    "InteractionResult",
    "PACTS_DIR",
    "PROFILES",
    "ServerProfile",
    "VerifyReport",
    "diff_documents",
    "interaction_identity",
    "is_mask",
    "json_type",
    "mask",
    "normalize",
    "record_corpus",
    "verify_corpus",
]
