"""Field-level compatibility diffing between recorded and live documents.

Both sides are compared *after* matcher normalisation (volatile fields are
masks on both sides).  Every divergence carries the RFC 6901 JSON pointer
of the field and a classification:

* **additive** — the live document grew a key the recording does not pin.
  Consumers written against the recording keep working; the verifier
  passes and logs the addition.
* **breaking** — a recorded field disappeared, changed JSON type, changed
  value, an array changed length, or a volatile field stopped matching its
  declared type.  Consumers break; the verifier fails and demands either a
  revert or an explicit ``vhdl-ifa/v2`` schema bump plus re-record.

Status / exit-code changes are classified by the verifier with the same
vocabulary (a changed status is always breaking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from .matchers import is_mask, join_pointer, json_type

ADDITIVE = "additive"
BREAKING = "breaking"


@dataclass(frozen=True)
class Divergence:
    """One field-level difference between recorded and live documents."""

    pointer: str  # JSON pointer into the response document ("" = root)
    kind: str  # ADDITIVE or BREAKING
    detail: str  # human-readable: what was expected, what arrived

    def __str__(self) -> str:
        pointer = self.pointer or "<root>"
        return f"[{self.kind}] {pointer}: {self.detail}"


def _preview(value: Any, limit: int = 64) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def diff_documents(expected: Any, actual: Any) -> List[Divergence]:
    """All divergences of ``actual`` from the recorded ``expected``."""
    divergences: List[Divergence] = []
    _diff(expected, actual, [], divergences)
    return divergences


def _diff(expected: Any, actual: Any, tokens: List[str], out: List[Divergence]) -> None:
    pointer = join_pointer(tokens)
    if is_mask(expected):
        declared = expected["$volatile"]
        if is_mask(actual):
            if actual["$volatile"] != declared:
                out.append(
                    Divergence(
                        pointer,
                        BREAKING,
                        f"volatile field declared {declared!r} but the live "
                        f"matcher produced {actual['$volatile']!r}",
                    )
                )
        else:
            out.append(
                Divergence(
                    pointer,
                    BREAKING,
                    f"volatile field must be of JSON type {declared!r}, got "
                    f"{json_type(actual)} {_preview(actual)}",
                )
            )
        return
    if is_mask(actual):
        out.append(
            Divergence(
                pointer,
                BREAKING,
                f"recorded literal {_preview(expected)} came back masked as "
                f"volatile {actual['$volatile']!r}",
            )
        )
        return
    expected_type = json_type(expected)
    actual_type = json_type(actual)
    if expected_type != actual_type:
        out.append(
            Divergence(
                pointer,
                BREAKING,
                f"type changed from {expected_type} to {actual_type} "
                f"(recorded {_preview(expected)}, got {_preview(actual)})",
            )
        )
        return
    if expected_type == "object":
        for key in expected:
            if key not in actual:
                out.append(
                    Divergence(
                        join_pointer(tokens + [key]),
                        BREAKING,
                        f"field removed (recorded {_preview(expected[key])})",
                    )
                )
            else:
                _diff(expected[key], actual[key], tokens + [key], out)
        for key in actual:
            if key not in expected:
                out.append(
                    Divergence(
                        join_pointer(tokens + [key]),
                        ADDITIVE,
                        f"new optional field {_preview(actual[key])}",
                    )
                )
        return
    if expected_type == "array":
        if len(expected) != len(actual):
            out.append(
                Divergence(
                    pointer,
                    BREAKING,
                    f"array length changed from {len(expected)} to {len(actual)}",
                )
            )
            return
        for index, (left, right) in enumerate(zip(expected, actual)):
            _diff(left, right, tokens + [str(index)], out)
        return
    if expected != actual:
        out.append(
            Divergence(
                pointer,
                BREAKING,
                f"value changed from {_preview(expected)} to {_preview(actual)}",
            )
        )


def breaking(divergences: List[Divergence]) -> List[Divergence]:
    return [d for d in divergences if d.kind == BREAKING]


def additive(divergences: List[Divergence]) -> List[Divergence]:
    return [d for d in divergences if d.kind == ADDITIVE]
