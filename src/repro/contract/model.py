"""The recorded-interaction model: one consumer expectation per JSON file.

An :class:`Interaction` is a single request/response pair captured from a
live surface — an HTTP round-trip against ``vhdl-ifa serve`` or a CLI
``--json`` invocation — together with the **matcher rules** that declare
which response fields are volatile (see :mod:`repro.contract.matchers`)
and the **server profile** the pair was recorded under (see
:mod:`repro.contract.verifier`).  The response document is stored already
normalised, so the file pins exactly what consumers may rely on.

Interactions are **content-addressed**: the id is the first 12 hex chars
of the SHA-256 of the canonical JSON of ``{"profile": ..., "request": ...}``.
The id therefore changes when the *stimulus* changes (a different request
is a different interaction) but not when the recorded *response* drifts —
response drift is precisely what the verifier must catch as a diff, not
silently re-key.  :meth:`Corpus.load` re-derives every id and refuses a
file whose name or ``id`` field disagrees with its request content.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

from .matchers import JSON_TYPES

#: Request kinds a corpus may hold.
KIND_HTTP = "http"
KIND_CLI = "cli"

_SLUG = re.compile(r"[^a-z0-9]+")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, raw unicode."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def interaction_identity(profile: str, request: Mapping[str, Any]) -> str:
    """The content address of a stimulus: sha256 of profile + request."""
    payload = canonical_json({"profile": profile, "request": dict(request)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def _slugify(description: str) -> str:
    slug = _SLUG.sub("-", description.lower()).strip("-")
    return slug or "interaction"


@dataclass(frozen=True)
class Interaction:
    """One recorded consumer expectation."""

    id: str
    description: str
    schema: str  # the contract version ("vhdl-ifa/v1") this pair was recorded against
    profile: str  # server profile name the response is reproducible under
    request: Dict[str, Any]
    response: Dict[str, Any]  # normalised: volatile fields already masked
    matchers: Dict[str, str]

    @classmethod
    def build(
        cls,
        *,
        description: str,
        schema: str,
        profile: str,
        request: Mapping[str, Any],
        response: Mapping[str, Any],
        matchers: Mapping[str, str],
    ) -> "Interaction":
        """Construct with the id derived from profile + request."""
        return cls(
            id=interaction_identity(profile, request),
            description=description,
            schema=schema,
            profile=profile,
            request=dict(request),
            response=dict(response),
            matchers=dict(matchers),
        )

    @property
    def kind(self) -> str:
        return str(self.request.get("kind", ""))

    @property
    def file_name(self) -> str:
        return f"{_slugify(self.description)}-{self.id}.json"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "description": self.description,
            "schema": self.schema,
            "profile": self.profile,
            "request": self.request,
            "response": self.response,
            "matchers": self.matchers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *, origin: str = "<memory>") -> "Interaction":
        for key in ("id", "description", "schema", "profile", "request", "response", "matchers"):
            if key not in payload:
                raise ValueError(f"{origin}: interaction is missing the {key!r} key")
        request = payload["request"]
        if not isinstance(request, dict) or request.get("kind") not in (KIND_HTTP, KIND_CLI):
            raise ValueError(
                f"{origin}: request.kind must be {KIND_HTTP!r} or {KIND_CLI!r}"
            )
        matchers = payload["matchers"]
        if not isinstance(matchers, dict):
            raise ValueError(f"{origin}: matchers must be an object")
        for pointer, type_name in matchers.items():
            if not pointer.startswith("/") or type_name not in JSON_TYPES:
                raise ValueError(
                    f"{origin}: bad matcher rule {pointer!r}: {type_name!r}"
                )
        expected_id = interaction_identity(payload["profile"], request)
        if payload["id"] != expected_id:
            raise ValueError(
                f"{origin}: id {payload['id']!r} does not match the content "
                f"address {expected_id!r} of its profile + request — the file "
                "was edited by hand; re-record it (vhdl-ifa contract record)"
            )
        return cls(
            id=str(payload["id"]),
            description=str(payload["description"]),
            schema=str(payload["schema"]),
            profile=str(payload["profile"]),
            request=dict(request),
            response=dict(payload["response"]),
            matchers=dict(matchers),
        )


@dataclass
class Corpus:
    """An ordered set of interactions, persisted one file per interaction."""

    interactions: List[Interaction]

    def __iter__(self) -> Iterator[Interaction]:
        return iter(self.interactions)

    def __len__(self) -> int:
        return len(self.interactions)

    def get(self, interaction_id: str) -> Optional[Interaction]:
        for interaction in self.interactions:
            if interaction.id == interaction_id:
                return interaction
        return None

    def profiles(self) -> List[str]:
        """Profile names in first-seen order."""
        seen: List[str] = []
        for interaction in self.interactions:
            if interaction.profile not in seen:
                seen.append(interaction.profile)
        return seen

    def http_paths(self) -> List[str]:
        """Every distinct HTTP request path the corpus exercises, sorted."""
        return sorted(
            {
                str(interaction.request["path"])
                for interaction in self.interactions
                if interaction.kind == KIND_HTTP
            }
        )

    def cli_subcommands(self) -> List[str]:
        """Every distinct CLI subcommand the corpus exercises, sorted."""
        return sorted(
            {
                str(interaction.request["argv"][0])
                for interaction in self.interactions
                if interaction.kind == KIND_CLI and interaction.request.get("argv")
            }
        )

    @classmethod
    def load(cls, directory: Path) -> "Corpus":
        directory = Path(directory)
        if not directory.is_dir():
            raise FileNotFoundError(
                f"no interaction corpus at {directory} (run "
                "'vhdl-ifa contract record' to create one)"
            )
        interactions: List[Interaction] = []
        for path in sorted(directory.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as error:
                raise ValueError(f"{path}: unreadable interaction file: {error}") from error
            interaction = Interaction.from_dict(payload, origin=str(path))
            if path.name != interaction.file_name:
                raise ValueError(
                    f"{path}: file name does not match the canonical "
                    f"{interaction.file_name!r}"
                )
            interactions.append(interaction)
        return cls(interactions=interactions)

    def save(self, directory: Path) -> List[Path]:
        """Write every interaction under ``directory``, replacing *.json files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for stale in directory.glob("*.json"):
            stale.unlink()
        written: List[Path] = []
        for interaction in sorted(self.interactions, key=lambda i: i.file_name):
            path = directory / interaction.file_name
            path.write_text(
                json.dumps(interaction.to_dict(), indent=2, ensure_ascii=False) + "\n",
                encoding="utf-8",
            )
            written.append(path)
        return written
