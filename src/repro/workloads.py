"""Canonical workload programs shared by the tests, benchmarks and examples.

The module collects, as VHDL1 source text:

* the paper's two illustrative programs (a) and (b) from Section 5;
* the "Open Challenge F" style program of Section 7 (an overwritten secret
  that security-type systems reject but this analysis accepts);
* a small two-process producer/consumer design exercising the cross-process
  rules;
* a synthetic program family of configurable size for the scaling benchmark
  (E5 in DESIGN.md);
* a multi-entity batch family (many chain designs in one source file, or the
  full roster of named workloads) for the batch driver and its throughput
  benchmarks;
* a hierarchical family (component instantiations of a register-cell leaf,
  optionally through an intermediate bank level) for the summary linker of
  :mod:`repro.hier` and its benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple


def paper_program_a() -> str:
    """Program (a) of Section 5: ``[c := b]^1; [b := a]^2``.

    The paper presents it as a straight-line program; analyse it with
    ``loop_processes=False`` to reproduce Figure 3(a).
    """
    return """
entity prog_a is
end prog_a;

architecture straight of prog_a is
begin
  p : process
    variable a : std_logic;
    variable b : std_logic;
    variable c : std_logic;
  begin
    c := b;
    b := a;
  end process p;
end straight;
"""


def paper_program_b() -> str:
    """Program (b) of Section 5: ``[b := a]^1; [c := b]^2`` (Figure 3(b)/4)."""
    return """
entity prog_b is
end prog_b;

architecture straight of prog_b is
begin
  p : process
    variable a : std_logic;
    variable b : std_logic;
    variable c : std_logic;
  begin
    b := a;
    c := b;
  end process p;
end straight;
"""


def challenge_f_program() -> str:
    """An overwritten-secret program (Open Challenge F of Sabelfeld–Myers).

    The temporary ``t`` first holds the secret ``key`` but is overwritten with
    the public ``plain`` before flowing to the output; a flow-insensitive
    security type system rejects the program, the paper's analysis shows that
    ``key`` never reaches ``leak``.
    """
    return """
entity challenge_f is
  port( key   : in std_logic_vector(7 downto 0);
        plain : in std_logic_vector(7 downto 0);
        leak  : out std_logic_vector(7 downto 0) );
end challenge_f;

architecture overwrite of challenge_f is
begin
  p : process
    variable t : std_logic_vector(7 downto 0);
  begin
    t := key;
    t := plain;
    leak <= t;
    wait on key, plain;
  end process p;
end overwrite;
"""


def producer_consumer_program() -> str:
    """Two processes communicating through an internal signal.

    The producer mixes its two inputs into ``link``; the consumer forwards the
    link value to the output.  This exercises the cross-flow relation, the
    wait-statement gen/kill sets of Table 5 and the [Synchronized values]
    closure rule.
    """
    return """
entity producer_consumer is
  port( left  : in std_logic_vector(3 downto 0);
        right : in std_logic_vector(3 downto 0);
        result : out std_logic_vector(3 downto 0) );
end producer_consumer;

architecture two_proc of producer_consumer is
  signal link : std_logic_vector(3 downto 0);
begin
  producer : process
    variable mixed : std_logic_vector(3 downto 0);
  begin
    mixed := left xor right;
    link <= mixed;
    wait on left, right;
  end process producer;

  consumer : process
  begin
    result <= link;
    wait on link;
  end process consumer;
end two_proc;
"""


def conditional_program() -> str:
    """A program with an implicit flow through a condition (if/else)."""
    return """
entity conditional is
  port( sel : in std_logic;
        a   : in std_logic;
        b   : in std_logic;
        y   : out std_logic );
end conditional;

architecture mux of conditional is
begin
  p : process
    variable t : std_logic;
  begin
    if sel = '1' then
      t := a;
    else
      t := b;
    end if;
    y <= t;
    wait on sel, a, b;
  end process p;
end mux;
"""


def synthetic_chain_program(
    processes: int = 2, assignments_per_process: int = 8, name: str = "chain"
) -> str:
    """A synthetic program family for the scaling benchmark (E5).

    ``processes`` pipeline stages are connected through internal signals
    ``stage_0 … stage_k``; each stage copies its input through
    ``assignments_per_process`` chained temporary variables before driving the
    next stage.  The program size grows linearly in both parameters, so the
    measured analysis time exposes the super-linear behaviour of the closure.
    ``name`` names the generated entity, so several chains can share one
    source file (see :func:`multi_entity_program`).
    """
    if processes < 1:
        raise ValueError("need at least one process")
    if assignments_per_process < 1:
        raise ValueError("need at least one assignment per process")

    lines: List[str] = [
        f"entity {name} is",
        "  port( chain_in  : in std_logic_vector(7 downto 0);",
        "        chain_out : out std_logic_vector(7 downto 0) );",
        f"end {name};",
        "",
        f"architecture generated of {name} is",
    ]
    for stage in range(processes - 1):
        lines.append(f"  signal stage_{stage} : std_logic_vector(7 downto 0);")
    lines.append("begin")

    for stage in range(processes):
        source = "chain_in" if stage == 0 else f"stage_{stage - 1}"
        sink = "chain_out" if stage == processes - 1 else f"stage_{stage}"
        lines.append(f"  proc_{stage} : process")
        for index in range(assignments_per_process):
            lines.append(f"    variable v_{stage}_{index} : std_logic_vector(7 downto 0);")
        lines.append("  begin")
        lines.append(f"    v_{stage}_0 := {source};")
        for index in range(1, assignments_per_process):
            lines.append(
                f"    v_{stage}_{index} := v_{stage}_{index - 1} xor \"00000001\";"
            )
        lines.append(f"    {sink} <= v_{stage}_{assignments_per_process - 1};")
        lines.append(f"    wait on {source};")
        lines.append(f"  end process proc_{stage};")
        lines.append("")

    lines.append("end generated;")
    return "\n".join(lines) + "\n"


def two_phase_program() -> str:
    """A two-phase process whose internal signal is rewritten between waits.

    The signal ``stage`` first carries ``x`` and is synchronised, then carries
    ``y`` and is synchronised again before being exported.  Only ``y`` can
    reach the output: the second synchronisation is *guaranteed* to overwrite
    the present value of ``stage``, which is exactly what the
    under-approximation ``RD∩ϕ`` establishes (the paper's "unusual
    ingredient", Section 4.2 / Conclusion).  Without it the analysis reports a
    spurious flow from ``x``.
    """
    return """
entity two_phase is
  port( x : in std_logic_vector(3 downto 0);
        y : in std_logic_vector(3 downto 0);
        result : out std_logic_vector(3 downto 0) );
end two_phase;

architecture phased of two_phase is
  signal stage : std_logic_vector(3 downto 0);
begin
  p : process
  begin
    stage <= x;
    wait on x;
    stage <= y;
    wait on y;
    result <= stage;
    wait on stage;
  end process p;
end phased;
"""


def overwriting_loop_program() -> str:
    """A while-loop program whose guard creates implicit flows."""
    return """
entity looping is
  port( start : in std_logic;
        data  : in std_logic_vector(3 downto 0);
        done  : out std_logic_vector(3 downto 0) );
end looping;

architecture behav of looping is
begin
  p : process
    variable counter : std_logic_vector(3 downto 0);
    variable acc     : std_logic_vector(3 downto 0);
  begin
    counter := "0011";
    acc := data;
    while counter /= "0000" loop
      acc := acc xor data;
      counter := counter - "0001";
    end loop;
    if start = '1' then
      done <= acc;
    else
      done <= "0000";
    end if;
    wait on start, data;
  end process p;
end behav;
"""


def multi_entity_program(
    entities: int = 4, processes: int = 2, assignments_per_process: int = 8
) -> str:
    """One source file holding ``entities`` independent chain designs.

    The entities are named ``chain_0 … chain_{k-1}``; each is a full
    :func:`synthetic_chain_program` instance.  This is the batch driver's
    ``--all-entities`` workload: a single file that expands into many
    analysis jobs.
    """
    if entities < 1:
        raise ValueError("need at least one entity")
    return "\n".join(
        synthetic_chain_program(
            processes, assignments_per_process, name=f"chain_{index}"
        )
        for index in range(entities)
    )


def register_cell_entity(name: str = "reg_cell", depth: int = 12) -> str:
    """A register-cell leaf entity with a deliberately heavy process body.

    The cell stores the (secret) data input ``d`` through a ``depth``-long
    chain of temporaries when ``load`` is asserted, clears on ``clr``, and
    exports the stored value on ``q``; ``status`` reflects only the public
    ``load`` control, so a correct analysis keeps it independent of ``d``.
    The long chain makes the per-entity stages (Tables 4 and 6) expensive
    relative to the link-time stages — exactly the regime where analysing the
    entity once and linking its summary per instance pays off.
    """
    if depth < 1:
        raise ValueError("need at least one chained assignment")
    lines: List[str] = [
        f"entity {name} is",
        "  port( d      : in std_logic_vector(7 downto 0);",
        "        load   : in std_logic;",
        "        clr    : in std_logic;",
        "        q      : out std_logic_vector(7 downto 0);",
        "        status : out std_logic );",
        f"end {name};",
        "",
        f"architecture rtl of {name} is",
        "  signal state : std_logic_vector(7 downto 0);",
        "begin",
        "  store : process",
        "    variable tmp : std_logic_vector(7 downto 0);",
        "    variable nxt : std_logic_vector(7 downto 0);",
        "  begin",
        "    tmp := d;",
    ]
    for index in range(depth):
        lines.append(f'    tmp := tmp xor "0000000{index % 2}";')
    lines.extend(
        [
            "    if clr = '1' then",
            '      nxt := "00000000";',
            "    else",
            "      if load = '1' then",
            "        nxt := tmp;",
            "      else",
            "        nxt := state;",
            "      end if;",
            "    end if;",
            "    state <= nxt;",
            "    wait on d, load, clr;",
            "  end process store;",
            "",
            "  drive : process",
            "  begin",
            "    q <= state;",
            "    status <= load;",
            "    wait on state, load;",
            "  end process drive;",
            "end rtl;",
        ]
    )
    return "\n".join(lines) + "\n"


def hierarchical_register_file(
    cells: int = 8,
    depth: int = 12,
    monitor: bool = True,
    name: str = "regfile",
) -> str:
    """A register file instantiating ``cells`` copies of one register cell.

    Every cell shares the secret data input ``din`` and the public ``wr`` /
    ``clr`` controls and drives its own ``q_i`` / ``st_i`` signals; a collect
    process folds a few cell outputs into ``dout``.  With ``monitor=True`` a
    *wait-free* status process folds cell statuses into ``alive`` — a process
    without wait statements empties the cross-flow relation (no label pair can
    be active simultaneously at a wait), which keeps the cross-process stages
    cheap even at 1000 instances.  ``monitor=False`` yields the fully
    synchronising variant whose cross-flow relation is non-trivial.
    """
    if cells < 1:
        raise ValueError("need at least one cell")
    taps = sorted({0, cells // 2, cells - 1})
    lines: List[str] = [
        register_cell_entity(depth=depth),
        f"entity {name} is",
        "  port( din   : in std_logic_vector(7 downto 0);",
        "        wr    : in std_logic;",
        "        clr   : in std_logic;",
        "        dout  : out std_logic_vector(7 downto 0);",
        "        alive : out std_logic );",
        f"end {name};",
        "",
        f"architecture banked of {name} is",
        "  component reg_cell is",
        "    port( d      : in std_logic_vector(7 downto 0);",
        "          load   : in std_logic;",
        "          clr    : in std_logic;",
        "          q      : out std_logic_vector(7 downto 0);",
        "          status : out std_logic );",
        "  end component reg_cell;",
    ]
    for index in range(cells):
        lines.append(f"  signal q_{index} : std_logic_vector(7 downto 0);")
        lines.append(f"  signal st_{index} : std_logic;")
    lines.append("begin")
    for index in range(cells):
        lines.append(
            f"  cell_{index} : reg_cell port map "
            f"(d => din, load => wr, clr => clr, "
            f"q => q_{index}, status => st_{index});"
        )
    lines.extend(
        [
            "",
            "  collect : process",
            "    variable acc : std_logic_vector(7 downto 0);",
            "  begin",
            f"    acc := q_{taps[0]};",
        ]
    )
    for tap in taps[1:]:
        lines.append(f"    acc := acc xor q_{tap};")
    lines.extend(
        [
            "    dout <= acc;",
            "    wait on " + ", ".join(f"q_{tap}" for tap in taps) + ";",
            "  end process collect;",
            "",
        ]
    )
    if monitor:
        lines.extend(
            [
                "  monitor : process",
                "    variable ok : std_logic;",
                "  begin",
                f"    ok := st_{taps[0]};",
            ]
        )
        for tap in taps[1:]:
            lines.append(f"    ok := ok or st_{tap};")
        lines.extend(
            [
                "    alive <= ok;",
                "  end process monitor;",
            ]
        )
    else:
        lines.extend(
            [
                "  alive_drive : process",
                "  begin",
                f"    alive <= st_{taps[-1]};",
                f"    wait on st_{taps[-1]};",
                "  end process alive_drive;",
            ]
        )
    lines.append("end banked;")
    return "\n".join(lines) + "\n"


def hierarchical_bus_program(
    banks: int = 2, cells_per_bank: int = 2, depth: int = 6
) -> str:
    """A three-level hierarchy: register cells inside banks inside a bus.

    Each ``bank`` entity instantiates ``cells_per_bank`` register cells and
    folds their outputs; the root instantiates ``banks`` banks and merges the
    bank outputs.  Flat names compose across the levels
    (``bank_1__cell_0__state``), which is what this family exists to
    exercise — together with a mix of named and positional port maps.
    """
    if banks < 1 or cells_per_bank < 1:
        raise ValueError("need at least one bank and one cell per bank")
    lines: List[str] = [
        register_cell_entity(depth=depth),
        "entity bank is",
        "  port( bd   : in std_logic_vector(7 downto 0);",
        "        bctl : in std_logic;",
        "        bq   : out std_logic_vector(7 downto 0);",
        "        bst  : out std_logic );",
        "end bank;",
        "",
        "architecture grouped of bank is",
        "  component reg_cell is",
        "    port( d      : in std_logic_vector(7 downto 0);",
        "          load   : in std_logic;",
        "          clr    : in std_logic;",
        "          q      : out std_logic_vector(7 downto 0);",
        "          status : out std_logic );",
        "  end component reg_cell;",
    ]
    for index in range(cells_per_bank):
        lines.append(f"  signal cq_{index} : std_logic_vector(7 downto 0);")
        lines.append(f"  signal cs_{index} : std_logic;")
    lines.append("begin")
    for index in range(cells_per_bank):
        # Alternate named and positional maps so both forms stay covered.
        if index % 2 == 0:
            lines.append(
                f"  cell_{index} : reg_cell port map "
                f"(d => bd, load => bctl, clr => bctl, "
                f"q => cq_{index}, status => cs_{index});"
            )
        else:
            lines.append(
                f"  cell_{index} : reg_cell port map "
                f"(bd, bctl, bctl, cq_{index}, cs_{index});"
            )
    lines.extend(
        [
            "",
            "  fold : process",
            "    variable acc : std_logic_vector(7 downto 0);",
            "  begin",
            "    acc := cq_0;",
        ]
    )
    for index in range(1, cells_per_bank):
        lines.append(f"    acc := acc xor cq_{index};")
    lines.extend(
        [
            "    bq <= acc;",
            "    bst <= cs_0;",
            "    wait on " + ", ".join(f"cq_{i}" for i in range(cells_per_bank)) + ";",
            "  end process fold;",
            "end grouped;",
            "",
            "entity bus_top is",
            "  port( data  : in std_logic_vector(7 downto 0);",
            "        ctl   : in std_logic;",
            "        merged : out std_logic_vector(7 downto 0);",
            "        ready : out std_logic );",
            "end bus_top;",
            "",
            "architecture routed of bus_top is",
            "  component bank is",
            "    port( bd   : in std_logic_vector(7 downto 0);",
            "          bctl : in std_logic;",
            "          bq   : out std_logic_vector(7 downto 0);",
            "          bst  : out std_logic );",
            "  end component bank;",
        ]
    )
    for index in range(banks):
        lines.append(f"  signal bq_{index} : std_logic_vector(7 downto 0);")
        lines.append(f"  signal bs_{index} : std_logic;")
    lines.append("begin")
    for index in range(banks):
        lines.append(
            f"  bank_{index} : bank port map "
            f"(bd => data, bctl => ctl, bq => bq_{index}, bst => bs_{index});"
        )
    lines.extend(
        [
            "",
            "  merge : process",
            "    variable acc : std_logic_vector(7 downto 0);",
            "  begin",
            "    acc := bq_0;",
        ]
    )
    for index in range(1, banks):
        lines.append(f"    acc := acc xor bq_{index};")
    lines.extend(
        [
            "    merged <= acc;",
            "    ready <= bs_0;",
            "    wait on " + ", ".join(f"bq_{i}" for i in range(banks)) + ";",
            "  end process merge;",
            "end routed;",
        ]
    )
    return "\n".join(lines) + "\n"


def hierarchical_mux_program() -> str:
    """A small hand-written hierarchy with concurrent-assignment leaves.

    The child entity is purely combinational (two concurrent assignments, no
    process), one instance is bound positionally and one by name, and the root
    mixes the instance outputs under a select input.  The smallest member of
    the hierarchical family, used wherever the tests need a cheap
    representative with every front-end form.
    """
    return """
entity stage is
  port( a : in std_logic;
        b : in std_logic;
        y : out std_logic );
end stage;

architecture comb of stage is
  signal t : std_logic;
begin
  t <= (a and b);
  y <= (t or a);
end comb;

entity mux_top is
  port( hi  : in std_logic;
        lo  : in std_logic;
        sel : in std_logic;
        o   : out std_logic );
end mux_top;

architecture wired of mux_top is
  component stage is
    port( a : in std_logic;
          b : in std_logic;
          y : out std_logic );
  end component stage;
  signal n1 : std_logic;
  signal n2 : std_logic;
begin
  u1 : stage port map (a => hi, b => sel, y => n1);
  u2 : stage port map (lo, sel, n2);

  pick : process
  begin
    if sel = '1' then
      o <= n1;
    else
      o <= n2;
    end if;
    wait on n1, n2, sel;
  end process pick;
end wired;
"""


def hierarchy_workload_sources() -> List[Tuple[str, str]]:
    """Named hierarchical workloads, as ``(name, source)`` pairs.

    Small instances of every hierarchical family: the canonical input set for
    the linked-versus-flattened equivalence tests.  (The benchmark uses larger
    instances of the same generators.)
    """
    return [
        ("mux_top", hierarchical_mux_program()),
        ("regfile_monitor", hierarchical_register_file(cells=3, depth=4)),
        (
            "regfile_sync",
            hierarchical_register_file(cells=2, depth=3, monitor=False),
        ),
        ("bus_top", hierarchical_bus_program(banks=2, cells_per_bank=2, depth=3)),
    ]


def batch_workload_sources() -> List[Tuple[str, str]]:
    """The full roster of named workloads, as ``(name, source)`` pairs.

    Eight designs covering every analysis feature (straight-line programs,
    overwritten secrets, cross-process synchronisation, implicit flows,
    loops, and a synthetic chain): the canonical input set for batch-driver
    tests and the batch-throughput benchmark.
    """
    return [
        ("paper_program_a", paper_program_a()),
        ("paper_program_b", paper_program_b()),
        ("challenge_f", challenge_f_program()),
        ("producer_consumer", producer_consumer_program()),
        ("conditional", conditional_program()),
        ("two_phase", two_phase_program()),
        ("overwriting_loop", overwriting_loop_program()),
        ("synthetic_chain", synthetic_chain_program(2, 8)),
    ]
