"""Canonical workload programs shared by the tests, benchmarks and examples.

The module collects, as VHDL1 source text:

* the paper's two illustrative programs (a) and (b) from Section 5;
* the "Open Challenge F" style program of Section 7 (an overwritten secret
  that security-type systems reject but this analysis accepts);
* a small two-process producer/consumer design exercising the cross-process
  rules;
* a synthetic program family of configurable size for the scaling benchmark
  (E5 in DESIGN.md);
* a multi-entity batch family (many chain designs in one source file, or the
  full roster of named workloads) for the batch driver and its throughput
  benchmarks.
"""

from __future__ import annotations

from typing import List, Tuple


def paper_program_a() -> str:
    """Program (a) of Section 5: ``[c := b]^1; [b := a]^2``.

    The paper presents it as a straight-line program; analyse it with
    ``loop_processes=False`` to reproduce Figure 3(a).
    """
    return """
entity prog_a is
end prog_a;

architecture straight of prog_a is
begin
  p : process
    variable a : std_logic;
    variable b : std_logic;
    variable c : std_logic;
  begin
    c := b;
    b := a;
  end process p;
end straight;
"""


def paper_program_b() -> str:
    """Program (b) of Section 5: ``[b := a]^1; [c := b]^2`` (Figure 3(b)/4)."""
    return """
entity prog_b is
end prog_b;

architecture straight of prog_b is
begin
  p : process
    variable a : std_logic;
    variable b : std_logic;
    variable c : std_logic;
  begin
    b := a;
    c := b;
  end process p;
end straight;
"""


def challenge_f_program() -> str:
    """An overwritten-secret program (Open Challenge F of Sabelfeld–Myers).

    The temporary ``t`` first holds the secret ``key`` but is overwritten with
    the public ``plain`` before flowing to the output; a flow-insensitive
    security type system rejects the program, the paper's analysis shows that
    ``key`` never reaches ``leak``.
    """
    return """
entity challenge_f is
  port( key   : in std_logic_vector(7 downto 0);
        plain : in std_logic_vector(7 downto 0);
        leak  : out std_logic_vector(7 downto 0) );
end challenge_f;

architecture overwrite of challenge_f is
begin
  p : process
    variable t : std_logic_vector(7 downto 0);
  begin
    t := key;
    t := plain;
    leak <= t;
    wait on key, plain;
  end process p;
end overwrite;
"""


def producer_consumer_program() -> str:
    """Two processes communicating through an internal signal.

    The producer mixes its two inputs into ``link``; the consumer forwards the
    link value to the output.  This exercises the cross-flow relation, the
    wait-statement gen/kill sets of Table 5 and the [Synchronized values]
    closure rule.
    """
    return """
entity producer_consumer is
  port( left  : in std_logic_vector(3 downto 0);
        right : in std_logic_vector(3 downto 0);
        result : out std_logic_vector(3 downto 0) );
end producer_consumer;

architecture two_proc of producer_consumer is
  signal link : std_logic_vector(3 downto 0);
begin
  producer : process
    variable mixed : std_logic_vector(3 downto 0);
  begin
    mixed := left xor right;
    link <= mixed;
    wait on left, right;
  end process producer;

  consumer : process
  begin
    result <= link;
    wait on link;
  end process consumer;
end two_proc;
"""


def conditional_program() -> str:
    """A program with an implicit flow through a condition (if/else)."""
    return """
entity conditional is
  port( sel : in std_logic;
        a   : in std_logic;
        b   : in std_logic;
        y   : out std_logic );
end conditional;

architecture mux of conditional is
begin
  p : process
    variable t : std_logic;
  begin
    if sel = '1' then
      t := a;
    else
      t := b;
    end if;
    y <= t;
    wait on sel, a, b;
  end process p;
end mux;
"""


def synthetic_chain_program(
    processes: int = 2, assignments_per_process: int = 8, name: str = "chain"
) -> str:
    """A synthetic program family for the scaling benchmark (E5).

    ``processes`` pipeline stages are connected through internal signals
    ``stage_0 … stage_k``; each stage copies its input through
    ``assignments_per_process`` chained temporary variables before driving the
    next stage.  The program size grows linearly in both parameters, so the
    measured analysis time exposes the super-linear behaviour of the closure.
    ``name`` names the generated entity, so several chains can share one
    source file (see :func:`multi_entity_program`).
    """
    if processes < 1:
        raise ValueError("need at least one process")
    if assignments_per_process < 1:
        raise ValueError("need at least one assignment per process")

    lines: List[str] = [
        f"entity {name} is",
        "  port( chain_in  : in std_logic_vector(7 downto 0);",
        "        chain_out : out std_logic_vector(7 downto 0) );",
        f"end {name};",
        "",
        f"architecture generated of {name} is",
    ]
    for stage in range(processes - 1):
        lines.append(f"  signal stage_{stage} : std_logic_vector(7 downto 0);")
    lines.append("begin")

    for stage in range(processes):
        source = "chain_in" if stage == 0 else f"stage_{stage - 1}"
        sink = "chain_out" if stage == processes - 1 else f"stage_{stage}"
        lines.append(f"  proc_{stage} : process")
        for index in range(assignments_per_process):
            lines.append(f"    variable v_{stage}_{index} : std_logic_vector(7 downto 0);")
        lines.append("  begin")
        lines.append(f"    v_{stage}_0 := {source};")
        for index in range(1, assignments_per_process):
            lines.append(
                f"    v_{stage}_{index} := v_{stage}_{index - 1} xor \"00000001\";"
            )
        lines.append(f"    {sink} <= v_{stage}_{assignments_per_process - 1};")
        lines.append(f"    wait on {source};")
        lines.append(f"  end process proc_{stage};")
        lines.append("")

    lines.append("end generated;")
    return "\n".join(lines) + "\n"


def two_phase_program() -> str:
    """A two-phase process whose internal signal is rewritten between waits.

    The signal ``stage`` first carries ``x`` and is synchronised, then carries
    ``y`` and is synchronised again before being exported.  Only ``y`` can
    reach the output: the second synchronisation is *guaranteed* to overwrite
    the present value of ``stage``, which is exactly what the
    under-approximation ``RD∩ϕ`` establishes (the paper's "unusual
    ingredient", Section 4.2 / Conclusion).  Without it the analysis reports a
    spurious flow from ``x``.
    """
    return """
entity two_phase is
  port( x : in std_logic_vector(3 downto 0);
        y : in std_logic_vector(3 downto 0);
        result : out std_logic_vector(3 downto 0) );
end two_phase;

architecture phased of two_phase is
  signal stage : std_logic_vector(3 downto 0);
begin
  p : process
  begin
    stage <= x;
    wait on x;
    stage <= y;
    wait on y;
    result <= stage;
    wait on stage;
  end process p;
end phased;
"""


def overwriting_loop_program() -> str:
    """A while-loop program whose guard creates implicit flows."""
    return """
entity looping is
  port( start : in std_logic;
        data  : in std_logic_vector(3 downto 0);
        done  : out std_logic_vector(3 downto 0) );
end looping;

architecture behav of looping is
begin
  p : process
    variable counter : std_logic_vector(3 downto 0);
    variable acc     : std_logic_vector(3 downto 0);
  begin
    counter := "0011";
    acc := data;
    while counter /= "0000" loop
      acc := acc xor data;
      counter := counter - "0001";
    end loop;
    if start = '1' then
      done <= acc;
    else
      done <= "0000";
    end if;
    wait on start, data;
  end process p;
end behav;
"""


def multi_entity_program(
    entities: int = 4, processes: int = 2, assignments_per_process: int = 8
) -> str:
    """One source file holding ``entities`` independent chain designs.

    The entities are named ``chain_0 … chain_{k-1}``; each is a full
    :func:`synthetic_chain_program` instance.  This is the batch driver's
    ``--all-entities`` workload: a single file that expands into many
    analysis jobs.
    """
    if entities < 1:
        raise ValueError("need at least one entity")
    return "\n".join(
        synthetic_chain_program(
            processes, assignments_per_process, name=f"chain_{index}"
        )
        for index in range(entities)
    )


def batch_workload_sources() -> List[Tuple[str, str]]:
    """The full roster of named workloads, as ``(name, source)`` pairs.

    Eight designs covering every analysis feature (straight-line programs,
    overwritten secrets, cross-process synchronisation, implicit flows,
    loops, and a synthetic chain): the canonical input set for batch-driver
    tests and the batch-throughput benchmark.
    """
    return [
        ("paper_program_a", paper_program_a()),
        ("paper_program_b", paper_program_b()),
        ("challenge_f", challenge_f_program()),
        ("producer_consumer", producer_consumer_program()),
        ("conditional", conditional_program()),
        ("two_phase", two_phase_program()),
        ("overwriting_loop", overwriting_loop_program()),
        ("synthetic_chain", synthetic_chain_program(2, 8)),
    ]
