"""Clauses of the constraint language: facts and definite rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.errors import SolverError
from repro.solver.terms import Atom, Substitution, Variable


@dataclass(frozen=True)
class Fact:
    """A ground atom asserted unconditionally."""

    atom: Atom

    def __post_init__(self) -> None:
        if not self.atom.is_ground():
            raise SolverError(f"facts must be ground, got {self.atom}")

    def __repr__(self) -> str:
        return f"{self.atom}."


@dataclass(frozen=True)
class Rule:
    """A definite Horn clause ``head :- body_1, …, body_n [, guard]``.

    ``guard`` is an optional Python predicate over the substitution, evaluated
    once every body atom is matched; it models the side conditions of the
    paper's rules (e.g. "if ∃ l⃗ ∈ cf such that l_i and l_j occur in l⃗")
    without requiring those relations to be materialised as facts.
    """

    head: Atom
    body: Tuple[Atom, ...]
    guard: Optional[Callable[[Substitution], bool]] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise SolverError("rules need a non-empty body; use Fact for axioms")
        head_vars = {t for t in self.head.terms if isinstance(t, Variable)}
        body_vars = set()
        for atom in self.body:
            body_vars |= {t for t in atom.terms if isinstance(t, Variable)}
        unbound = head_vars - body_vars
        if unbound:
            raise SolverError(
                f"head variables {sorted(v.name for v in unbound)} of rule "
                f"{self.name or self.head.predicate!r} do not occur in the body"
            )

    def __repr__(self) -> str:
        body = ", ".join(repr(atom) for atom in self.body)
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.head} :- {body}."


Clause = object
"""Union alias: a clause is either a :class:`Fact` or a :class:`Rule`."""
