"""A small Datalog-style constraint solver standing in for the Succinct Solver.

The paper's implementation encodes the closure rules (Tables 7–9) as ALFP
clauses and solves them with the Succinct Solver [10, 11].  That solver is not
available, so this package provides a compact replacement: definite Horn
clauses over finite relations, solved by semi-naive bottom-up evaluation.

The encoding of the paper's rules lives in :mod:`repro.analysis.alfp`; the test
suite checks that the solver-based closure and the direct implementation in
:mod:`repro.analysis.closure` compute identical global Resource Matrices.
"""

from repro.solver.terms import Atom, Constant, Variable
from repro.solver.clauses import Clause, Fact, Rule
from repro.solver.engine import Database, SolverEngine

__all__ = [
    "Atom",
    "Constant",
    "Variable",
    "Clause",
    "Fact",
    "Rule",
    "Database",
    "SolverEngine",
]
