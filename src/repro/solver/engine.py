"""Semi-naive bottom-up evaluation of definite clauses.

The engine keeps one finite relation per predicate.  Evaluation proceeds in
rounds: in each round every rule is joined against the current database, but at
least one body atom must match a tuple derived in the previous round (the
*semi-naive* restriction), so already-derived consequences are not recomputed.
The least model is reached when a round derives nothing new — the same
guarantee the Succinct Solver gives for ALFP clauses, restricted to the
definite fragment used by the paper's closure rules.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import SolverError
from repro.solver.clauses import Fact, Rule
from repro.solver.terms import Atom, Substitution

Tuple_ = Tuple[object, ...]


class Database:
    """A set of ground tuples per predicate."""

    def __init__(self) -> None:
        self._relations: Dict[str, Set[Tuple_]] = defaultdict(set)

    def add(self, predicate: str, values: Tuple_) -> bool:
        """Insert a tuple; returns True when it was new."""
        relation = self._relations[predicate]
        if values in relation:
            return False
        relation.add(values)
        return True

    def add_atom(self, atom: Atom) -> bool:
        """Insert a ground atom."""
        return self.add(atom.predicate, atom.ground_tuple())

    def relation(self, predicate: str) -> FrozenSet[Tuple_]:
        """All tuples currently known for ``predicate``."""
        return frozenset(self._relations.get(predicate, set()))

    def predicates(self) -> List[str]:
        """All predicates with at least one tuple."""
        return sorted(self._relations)

    def size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def __contains__(self, item: Tuple[str, Tuple_]) -> bool:
        predicate, values = item
        return values in self._relations.get(predicate, set())


@dataclass
class SolverEngine:
    """Collects clauses and computes their least model."""

    facts: List[Fact] = field(default_factory=list)
    rules: List[Rule] = field(default_factory=list)

    # -- clause collection ----------------------------------------------------

    def add_fact(self, predicate: str, *values: object) -> None:
        """Assert a ground fact."""
        self.facts.append(Fact(Atom.of(predicate, *[_ground(v) for v in values])))

    def add_rule(self, rule: Rule) -> None:
        """Add a definite rule."""
        self.rules.append(rule)

    # -- evaluation -------------------------------------------------------------

    def solve(self, max_rounds: Optional[int] = None) -> Database:
        """Compute the least model by semi-naive iteration."""
        database = Database()
        delta: Dict[str, Set[Tuple_]] = defaultdict(set)
        for fact in self.facts:
            if database.add_atom(fact.atom):
                delta[fact.atom.predicate].add(fact.atom.ground_tuple())

        rounds = 0
        while delta:
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                raise SolverError(f"solver did not converge within {max_rounds} rounds")
            new_delta: Dict[str, Set[Tuple_]] = defaultdict(set)
            for rule in self.rules:
                for derived in self._apply_rule(rule, database, delta):
                    predicate, values = derived
                    if database.add(predicate, values):
                        new_delta[predicate].add(values)
            delta = new_delta
        return database

    def _apply_rule(
        self,
        rule: Rule,
        database: Database,
        delta: Dict[str, Set[Tuple_]],
    ) -> Iterable[Tuple[str, Tuple_]]:
        """Join the rule body against the database, seeded by the delta.

        For each body position that has new tuples, perform a join in which
        that position ranges over the delta and the remaining positions over
        the full relations.
        """
        for seed_index, seed_atom in enumerate(rule.body):
            seed_tuples = delta.get(seed_atom.predicate)
            if not seed_tuples:
                continue
            for seed_tuple in seed_tuples:
                bindings = seed_atom.match(seed_tuple, {})
                if bindings is None:
                    continue
                yield from self._join_rest(rule, database, bindings, seed_index, 0)

    def _join_rest(
        self,
        rule: Rule,
        database: Database,
        bindings: Substitution,
        seed_index: int,
        position: int,
    ) -> Iterable[Tuple[str, Tuple_]]:
        if position == len(rule.body):
            if rule.guard is not None and not rule.guard(bindings):
                return
            head = rule.head.substitute(bindings)
            if not head.is_ground():
                raise SolverError(f"derived non-ground head {head} in rule {rule}")
            yield head.predicate, head.ground_tuple()
            return
        if position == seed_index:
            yield from self._join_rest(rule, database, bindings, seed_index, position + 1)
            return
        atom = rule.body[position]
        for candidate in database.relation(atom.predicate):
            extended = atom.match(candidate, bindings)
            if extended is not None:
                yield from self._join_rest(
                    rule, database, extended, seed_index, position + 1
                )


def _ground(value: object) -> object:
    """Helper turning plain Python values into constants for :meth:`add_fact`."""
    from repro.solver.terms import Constant

    return value if isinstance(value, Constant) else Constant(value)
