"""Terms of the constraint language: constants, variables and atoms.

The language is deliberately small — exactly what is needed to state the
closure rules of Tables 7–9 as Horn clauses over finite relations:

* :class:`Constant` wraps an arbitrary hashable Python value;
* :class:`Variable` is a named logic variable (conventionally upper-case);
* :class:`Atom` is a predicate applied to a tuple of terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union


@dataclass(frozen=True)
class Constant:
    """A ground term wrapping a hashable Python value."""

    value: object

    def __repr__(self) -> str:
        return f"{self.value!r}"


@dataclass(frozen=True)
class Variable:
    """A logic variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


Term = Union[Constant, Variable]
Substitution = Dict[Variable, object]
"""A binding of variables to ground Python values."""


def term(value: object) -> Term:
    """Coerce a Python value into a term.

    Strings starting with an upper-case letter or underscore become variables
    (the usual Datalog convention); everything else becomes a constant.  Pass a
    :class:`Constant`/:class:`Variable` directly to bypass the convention.
    """
    if isinstance(value, (Constant, Variable)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


@dataclass(frozen=True)
class Atom:
    """A predicate applied to terms, e.g. ``rm_gl(N, L, 'R0')``."""

    predicate: str
    terms: Tuple[Term, ...]

    @classmethod
    def of(cls, predicate: str, *values: object) -> "Atom":
        """Build an atom, coercing arguments with :func:`term`."""
        return cls(predicate, tuple(term(value) for value in values))

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    def is_ground(self) -> bool:
        """True when the atom contains no variables."""
        return all(isinstance(t, Constant) for t in self.terms)

    def substitute(self, bindings: Substitution) -> "Atom":
        """Replace bound variables by their values."""
        new_terms = []
        for t in self.terms:
            if isinstance(t, Variable) and t in bindings:
                new_terms.append(Constant(bindings[t]))
            else:
                new_terms.append(t)
        return Atom(self.predicate, tuple(new_terms))

    def match(
        self, tuple_values: Tuple[object, ...], bindings: Substitution
    ) -> Optional[Substitution]:
        """Unify this atom against a ground tuple, extending ``bindings``.

        Returns the extended substitution or ``None`` when the tuple does not
        match.
        """
        if len(tuple_values) != len(self.terms):
            return None
        result = dict(bindings)
        for pattern, value in zip(self.terms, tuple_values):
            if isinstance(pattern, Constant):
                if pattern.value != value:
                    return None
            else:
                bound = result.get(pattern)
                if bound is None:
                    result[pattern] = value
                elif bound != value:
                    return None
        return result

    def ground_tuple(self) -> Tuple[object, ...]:
        """The tuple of constant values (requires a ground atom)."""
        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __repr__(self) -> str:
        args = ", ".join(repr(t) for t in self.terms)
        return f"{self.predicate}({args})"
