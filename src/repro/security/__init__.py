"""Security-policy layer on top of the information-flow graph.

The paper's motivation is the Covert Channel analysis of the Common Criteria:
the analysis produces the complete information-flow graph, "then … the designer
argues that all information flows are permissible — or an independent code
evaluator asks for further clarification".  This package provides that second
step in machine-checkable form: security levels, a flow policy (a lattice or an
arbitrary permitted-flows relation), and a checker that reports every graph
edge or path violating the policy.
"""

from repro.security.policy import (
    Clearance,
    FlowPolicy,
    PolicyViolation,
    TwoLevelPolicy,
    check_policy,
)
from repro.security.policy_file import (
    POLICY_KEYS,
    DeclaredPolicy,
    PolicyFileError,
    load_policy_file,
    policy_from_dict,
    policy_to_dict,
)
from repro.security.report import CovertChannelReport, Diagnostic, build_report

__all__ = [
    "Clearance",
    "DeclaredPolicy",
    "FlowPolicy",
    "POLICY_KEYS",
    "PolicyFileError",
    "PolicyViolation",
    "TwoLevelPolicy",
    "check_policy",
    "CovertChannelReport",
    "Diagnostic",
    "build_report",
    "load_policy_file",
    "policy_from_dict",
    "policy_to_dict",
]
