"""Covert-channel analysis reports (Common Criteria, Chapter 14 style).

The report packages what an evaluator needs: the design inventory, the flow
graph statistics, the declared policy, every violation and, for each permitted
flow into an output, the set of inputs it may depend on.

Violations surface as structured :class:`Diagnostic` records rather than
ad-hoc strings: each carries a stable code (:data:`DIRECT_FLOW` ``IFA001``
for a forbidden direct flow, :data:`PATH_FLOW` ``IFA002`` for a forbidden
flow witnessed only by a longer path), a severity, the offending source and
target resources with their clearance levels, and the witness path.  The
``vhdl-ifa/v1`` JSON documents embed ``Diagnostic.to_dict()`` verbatim (see
``docs/api.md`` for the schema table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.api import AnalysisResult
from repro.analysis.resource_matrix import base_resource, incoming_node, outgoing_node
from repro.errors import ReproError
from repro.security.policy import FlowPolicy, PolicyViolation, check_policy

#: Stable diagnostic codes; append-only across schema versions.  The lint
#: catalog (``IFA101`` …) registers its codes in
#: :mod:`repro.analysis.lint.registry` and shares this namespace.
DIRECT_FLOW = "IFA001"
PATH_FLOW = "IFA002"


def diagnostic_sort_key(diagnostic: "Diagnostic") -> Tuple[str, str, str, Tuple[str, ...]]:
    """The deterministic ordering of every diagnostic list the repo emits.

    Sorting by ``(code, source, target, path)`` keeps CLI, batch and serve
    bytes stable across runs, platforms and pool workers, whatever order the
    underlying checker produced the findings in.
    """
    return (diagnostic.code, diagnostic.source, diagnostic.target, diagnostic.path)


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of a policy check.

    ``code`` is stable across releases (``IFA001`` forbidden direct flow,
    ``IFA002`` forbidden flow via a longer witness path), ``severity`` is
    ``"error"`` for every policy violation today (the field exists so later
    advisory codes can ride the same record), and ``path`` is the witness
    flow path from ``source`` to ``target``.
    """

    code: str
    severity: str
    message: str
    source: str
    target: str
    source_level: str
    target_level: str
    path: Tuple[str, ...] = ()

    @classmethod
    def from_violation(cls, violation: PolicyViolation) -> "Diagnostic":
        """The diagnostic form of one :class:`PolicyViolation`."""
        code = PATH_FLOW if len(violation.path) > 2 else DIRECT_FLOW
        return cls(
            code=code,
            severity="error",
            message=violation.describe(),
            source=violation.source,
            target=violation.target,
            source_level=str(violation.source_level),
            target_level=str(violation.target_level),
            path=tuple(violation.path),
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-native form embedded in ``vhdl-ifa/v1`` documents."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
            "target": self.target,
            "source_level": self.source_level,
            "target_level": self.target_level,
            "path": list(self.path),
        }

    def describe(self) -> str:
        """A one-line human-readable rendering (used by ``to_text``)."""
        return f"[{self.code}] {self.message}"


@dataclass
class CovertChannelReport:
    """The result of checking one design against one policy."""

    design_name: str
    policy: FlowPolicy
    violations: List[PolicyViolation] = field(default_factory=list)
    output_dependencies: Dict[str, List[str]] = field(default_factory=dict)
    node_count: int = 0
    edge_count: int = 0

    @property
    def is_clean(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """The violations as structured diagnostics, deterministically
        ordered by :func:`diagnostic_sort_key`."""
        return sorted(
            (Diagnostic.from_violation(v) for v in self.violations),
            key=diagnostic_sort_key,
        )

    def to_text(self) -> str:
        """Render the report as plain text."""
        lines = [
            f"Covert channel analysis for design {self.design_name!r}",
            f"  flow graph: {self.node_count} nodes, {self.edge_count} edges",
            "",
            "Output dependencies:",
        ]
        for output, inputs in sorted(self.output_dependencies.items()):
            source = ", ".join(inputs) if inputs else "(none)"
            lines.append(f"  {output} <- {source}")
        lines.append("")
        if self.is_clean:
            lines.append("No policy violations found.")
        else:
            lines.append(f"{len(self.violations)} policy violation(s):")
            for diagnostic in self.diagnostics:
                lines.append(f"  - {diagnostic.describe()}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        """The report as a JSON-native dict (the CLI's ``check --json`` body)."""
        return {
            "design": self.design_name,
            "clean": self.is_clean,
            "violations": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "output_dependencies": {
                output: list(inputs)
                for output, inputs in sorted(self.output_dependencies.items())
            },
            "summary": {
                "nodes": self.node_count,
                "edges": self.edge_count,
            },
        }


def output_dependencies(result: AnalysisResult) -> Dict[str, List[str]]:
    """For each output port, the input ports whose values may reach it.

    The Table 8/9 closure already copies every value that can reach an output
    assignment into the reads of the corresponding node, so the *direct*
    predecessors of the output's node are the complete (flow-sensitive)
    answer; following paths would re-introduce exactly the spurious transitive
    flows the paper's analysis eliminates.  The improved analysis' environment
    nodes (``n◦`` for inputs, ``n•`` for outputs) are used when available.
    """
    graph = result.graph
    dependencies: Dict[str, List[str]] = {}
    for output in result.design.output_ports:
        sink = outgoing_node(output) if result.improved else output
        if not graph.has_node(sink):
            sink = output
        direct_sources = graph.predecessors(sink)
        sources: List[str] = []
        for input_port in result.design.input_ports:
            candidates = {input_port}
            if result.improved:
                candidates.add(incoming_node(input_port))
            if candidates & set(direct_sources):
                sources.append(input_port)
        dependencies[output] = sorted(sources)
    return dependencies


def build_report(
    result: AnalysisResult,
    policy: FlowPolicy,
    transitive: bool = False,
    restrict_to_ports: bool = False,
    outputs: Optional[Iterable[str]] = None,
) -> CovertChannelReport:
    """Check an analysis result against a policy and build the full report.

    The default ``transitive=False`` reads the graph the way the paper intends
    (direct edges only; the closure is already flow-sensitive).  Setting
    ``transitive=True`` gives a Kemmerer-style conservative check over paths.
    ``outputs`` optionally restricts the reported sinks: only violations
    flowing into one of the listed resources (or their ``n◦``/``n•``
    environment nodes) and only their dependency lines are kept.
    """
    restrict = None
    if restrict_to_ports:
        restrict = set(result.design.input_ports) | set(result.design.output_ports)
    violations = check_policy(
        result.graph, policy, transitive=transitive, restrict_to=restrict
    )
    dependencies = output_dependencies(result)
    if outputs is not None:
        wanted = set(outputs)
        # Only resources that can actually receive a flow qualify as sinks:
        # the design's output ports plus every graph node with an incoming
        # edge.  Rejecting anything else (a typo, an input port, the secret
        # itself) keeps the restriction from silently filtering every
        # violation away and passing a leaky design.
        sinks = {base_resource(node) for node in result.graph.targets()}
        sinks.update(result.design.output_ports)
        not_sinks = wanted - sinks
        if not_sinks:
            raise ReproError(
                "--output must name an output port or a resource flows can "
                "reach; not a flow sink: " + ", ".join(sorted(not_sinks))
            )
        violations = [
            violation
            for violation in violations
            if base_resource(violation.target) in wanted
        ]
        dependencies = {
            name: sources
            for name, sources in dependencies.items()
            if name in wanted
        }
    return CovertChannelReport(
        design_name=result.design.name,
        policy=policy,
        violations=violations,
        output_dependencies=dependencies,
        node_count=result.graph.node_count(),
        edge_count=result.graph.edge_count(),
    )


def check_source(
    source: str,
    policy: FlowPolicy,
    *,
    entity: Optional[str] = None,
    improved: bool = True,
    loop_processes: bool = True,
    cache: Optional[Any] = None,
    **report_options: Any,
) -> CovertChannelReport:
    """Analyse source text through the staged pipeline and report on it.

    This is the one-call service entry point: it runs the pipeline's
    ``report`` stage (so repeated checks of the same design can share an
    :class:`repro.pipeline.ArtifactCache` via ``cache``) and returns the
    finished report.  ``report_options`` are passed to :func:`build_report`.
    """
    # Imported here: repro.pipeline.stages lazily imports this module for its
    # report stage, so a module-level import would be circular.
    from repro.pipeline.artifacts import AnalysisOptions
    from repro.pipeline.stages import Pipeline

    options = AnalysisOptions(
        entity=entity, improved=improved, loop_processes=loop_processes
    )
    run = Pipeline(cache).run(
        source, options, policy=policy, report_options=dict(report_options)
    )
    return run.report
