"""Flow policies and their enforcement on information-flow graphs.

A policy assigns a *clearance* (security level) to resources and states which
flows between levels are permitted.  Policies need not be transitive — the
paper cites Rushby's channel-control policies [14] and the non-transitive MLS
extension of Haigh and Young [4] — so the checker can operate either on direct
edges only (non-transitive, channel-control style) or on all paths (classical
noninterference style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.analysis.flowgraph import FlowGraph
from repro.analysis.resource_matrix import base_resource
from repro.errors import PolicyError


@dataclass(frozen=True, order=True)
class Clearance:
    """A named security level with a numeric rank (higher = more secret)."""

    rank: int
    name: str

    def __str__(self) -> str:
        return self.name


#: Conventional two-point lattice.
PUBLIC = Clearance(0, "public")
SECRET = Clearance(1, "secret")


@dataclass(frozen=True)
class PolicyViolation:
    """One flow that the policy forbids."""

    source: str
    target: str
    source_level: Clearance
    target_level: Clearance
    path: Tuple[str, ...] = ()

    def describe(self) -> str:
        """A one-line human-readable description."""
        via = ""
        if len(self.path) > 2:
            via = " via " + " -> ".join(self.path[1:-1])
        return (
            f"flow from {self.source} ({self.source_level}) to "
            f"{self.target} ({self.target_level}) is not permitted{via}"
        )


@dataclass
class FlowPolicy:
    """A general (possibly non-transitive) flow policy.

    ``levels`` assigns a clearance to each resource (resources without an
    assignment get ``default_level``).  ``permitted`` lists the ordered pairs
    of clearances between which information may flow; flows within a level are
    always permitted.  ``transitive`` records the policy's *preferred*
    checking mode: ``False`` is the channel-control reading (direct edges
    only, the paper's non-transitive result graph), ``True`` asks for the
    classical all-paths noninterference check.  :func:`check_policy` still
    takes an explicit ``transitive`` argument; the field is the default the
    CLI and the serve mode use when the caller does not say.
    """

    levels: Dict[str, Clearance] = field(default_factory=dict)
    permitted: Set[Tuple[Clearance, Clearance]] = field(default_factory=set)
    default_level: Clearance = PUBLIC
    transitive: bool = False

    def level_of(self, resource: str) -> Clearance:
        """The clearance of ``resource`` (``n◦``/``n•`` share ``n``'s level)."""
        name = base_resource(resource)
        return self.levels.get(name, self.default_level)

    def assign(self, resource: str, level: Clearance) -> None:
        """Assign a clearance to a resource."""
        self.levels[resource] = level

    def permit(self, source: Clearance, target: Clearance) -> None:
        """Allow flows from ``source``-level resources to ``target``-level ones."""
        self.permitted.add((source, target))

    def allows(self, source: Clearance, target: Clearance) -> bool:
        """True when a flow between the two levels is permitted."""
        if source == target:
            return True
        return (source, target) in self.permitted


class TwoLevelPolicy(FlowPolicy):
    """The classical ``public ⊑ secret`` lattice policy.

    Secret resources are listed explicitly; everything else is public.  Flows
    from public to secret are permitted, flows from secret to public are not.
    """

    def __init__(self, secret_resources: Iterable[str] = ()):
        super().__init__(default_level=PUBLIC)
        for name in secret_resources:
            self.assign(name, SECRET)
        self.permit(PUBLIC, SECRET)

    @property
    def secret_resources(self) -> FrozenSet[str]:
        """The resources classified as secret."""
        return frozenset(
            name for name, level in self.levels.items() if level == SECRET
        )


def check_policy(
    graph: FlowGraph,
    policy: FlowPolicy,
    transitive: bool = False,
    restrict_to: Optional[Iterable[str]] = None,
) -> List[PolicyViolation]:
    """Check ``graph`` against ``policy`` and return every violation.

    With ``transitive=False`` (the default, matching the non-transitive reading
    of the paper's result graph) only direct edges are checked; with
    ``transitive=True`` every path is considered — each violating pair is
    reported once with a witness path.  ``restrict_to`` optionally limits the
    endpoints considered (e.g. to ports only).
    """
    if not isinstance(policy, FlowPolicy):
        raise PolicyError("check_policy expects a FlowPolicy")
    interesting = set(restrict_to) if restrict_to is not None else None
    violations: List[PolicyViolation] = []

    def endpoint_ok(name: str) -> bool:
        return interesting is None or base_resource(name) in interesting or name in interesting

    if not transitive:
        for source, target in sorted(graph.edges):
            if source == target:
                continue
            if not (endpoint_ok(source) and endpoint_ok(target)):
                continue
            src_level = policy.level_of(source)
            dst_level = policy.level_of(target)
            if not policy.allows(src_level, dst_level):
                violations.append(
                    PolicyViolation(source, target, src_level, dst_level, (source, target))
                )
        return violations

    for source in sorted(graph.nodes):
        if not endpoint_ok(source):
            continue
        src_level = policy.level_of(source)
        for target in sorted(graph.reachable_from(source)):
            if source == target or not endpoint_ok(target):
                continue
            dst_level = policy.level_of(target)
            if not policy.allows(src_level, dst_level):
                path = _witness_path(graph, source, target)
                violations.append(
                    PolicyViolation(source, target, src_level, dst_level, path)
                )
    return violations


def _witness_path(graph: FlowGraph, source: str, target: str) -> Tuple[str, ...]:
    """A shortest edge path from ``source`` to ``target`` (BFS)."""
    from collections import deque

    queue = deque([(source, (source,))])
    seen = {source}
    while queue:
        node, path = queue.popleft()
        for successor in sorted(graph.successors(node)):
            if successor == target:
                return path + (successor,)
            if successor not in seen:
                seen.add(successor)
                queue.append((successor, path + (successor,)))
    return (source, target)
