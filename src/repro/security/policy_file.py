"""Declarative flow policies: TOML/JSON documents loaded into ``FlowPolicy``.

The paper's Section 5 discussion treats policies as *data* — Rushby-style
channel-control relations and the non-transitive MLS extension of Haigh and
Young — so this module gives them a file format.  A policy document has the
top-level keys in :data:`POLICY_KEYS`:

``name``
    Optional registry name (``Workspace.load_policy`` registers under it).
``description``
    Optional free text, carried through ``to_dict`` round trips.
``mode``
    ``"channel-control"`` (default; check direct edges only, the
    non-transitive reading of the result graph) or ``"transitive"``
    (classical all-paths noninterference).
``default``
    The level name resources fall back to; defaults to the lowest rank.
``levels``
    Table of ``level name → integer rank`` (higher = more secret).
``resources``
    Table of ``resource name or fnmatch pattern → level name``.  Exact names
    win over patterns; patterns match in declaration order.
``allow``
    Array of ``{from = LEVEL, to = LEVEL}`` pairs naming the permitted
    cross-level flows (same-level flows are always permitted).
``lint``
    Optional table configuring the lint rule catalog (``docs/lint.md``):
    ``enable`` (allowlist of codes when non-empty), ``disable`` (always
    wins), and ``severity`` (``code = "error"/"warning"/"info"``
    overrides).  A document carrying only a ``lint`` table is a valid
    *lint-only* policy: ``levels`` may then be omitted.

Example (TOML)::

    name = "mls"
    mode = "channel-control"
    default = "public"

    [levels]
    public = 0
    secret = 1

    [resources]
    key = "secret"
    "debug_*" = "public"

    [[allow]]
    from = "public"
    to = "secret"

:func:`load_policy_file` parses TOML (``.toml``) or JSON (``.json``) files;
:func:`policy_from_dict` validates an already-parsed document;
:func:`policy_to_dict` renders any :class:`FlowPolicy` back into a document
(the round trip ``policy_from_dict(policy_to_dict(p))`` preserves the
checking behaviour).  All validation failures raise
:class:`PolicyFileError` whose message carries the file and key context
(``policy.toml: resources.'debug_*': unknown level 'pubic'``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.resource_matrix import base_resource
from repro.errors import PolicyError
from repro.security.policy import Clearance, FlowPolicy

#: The complete top-level key set of a policy document (gated against
#: ``docs/api.md`` by ``scripts/check_docs.py``).
POLICY_KEYS = (
    "name", "description", "mode", "default", "levels", "resources", "allow",
    "lint",
)

_MODES = ("channel-control", "transitive")

#: Characters that make a resource assignment a pattern, not an exact name.
_WILDCARD_CHARS = set("*?[")


class PolicyFileError(PolicyError):
    """A policy document that does not validate.

    ``context`` names where the problem is — the file (or other source) and
    the key path inside the document — and is prefixed onto the message.
    """

    def __init__(self, message: str, context: str = "policy"):
        self.context = context
        super().__init__(f"{context}: {message}")


@dataclass
class DeclaredPolicy(FlowPolicy):
    """A :class:`FlowPolicy` loaded from a declarative document.

    Adds what the file format has and the in-code class lacks: a ``name``
    and ``description``, and ordered ``fnmatch`` resource patterns.  Exact
    assignments in ``levels`` win over patterns; patterns apply in
    declaration order; unmatched resources get ``default_level``.
    """

    patterns: List[Tuple[str, Clearance]] = field(default_factory=list)
    name: Optional[str] = None
    description: Optional[str] = None
    lint: Optional[Any] = None
    """The document's ``lint`` table as a
    :class:`~repro.analysis.lint.LintConfig`, when one was declared."""

    def level_of(self, resource: str) -> Clearance:
        """The clearance of ``resource`` (``n◦``/``n•`` share ``n``'s level)."""
        base = base_resource(resource)
        exact = self.levels.get(base)
        if exact is not None:
            return exact
        for pattern, level in self.patterns:
            if fnmatchcase(base, pattern):
                return level
        return self.default_level


def _require(condition: bool, message: str, context: str) -> None:
    if not condition:
        raise PolicyFileError(message, context)


def policy_from_dict(data: Any, context: str = "policy") -> DeclaredPolicy:
    """Validate a parsed policy document and build the policy it declares."""
    _require(isinstance(data, dict), "policy document must be a table/object", context)
    unknown = sorted(set(data) - set(POLICY_KEYS))
    _require(
        not unknown,
        "unknown key(s) " + ", ".join(repr(key) for key in unknown)
        + "; expected " + ", ".join(POLICY_KEYS),
        context,
    )

    name = data.get("name")
    _require(name is None or isinstance(name, str), "'name' must be a string", context)
    description = data.get("description")
    _require(
        description is None or isinstance(description, str),
        "'description' must be a string",
        context,
    )

    mode = data.get("mode", "channel-control")
    _require(
        mode in _MODES,
        f"'mode' must be one of {', '.join(repr(m) for m in _MODES)}, got {mode!r}",
        f"{context}: mode",
    )

    raw_lint = data.get("lint")
    lint_config = None
    if raw_lint is not None:
        _require(
            isinstance(raw_lint, dict),
            "'lint' must be a table (enable/disable/severity)",
            f"{context}: lint",
        )
        # Imported lazily: the lint package sits on top of the pipeline,
        # which this module must stay importable without.
        from repro.analysis.lint import LintConfig

        lint_config = LintConfig.from_dict(raw_lint, context=f"{context}: lint")

    raw_levels = data.get("levels")
    if raw_levels is None and lint_config is not None:
        # A lint-only policy: no flow levels declared.  Synthesise the one
        # default level so the object still is a complete FlowPolicy.
        raw_levels = {"default": 0}
    _require(
        isinstance(raw_levels, dict) and raw_levels,
        "'levels' must be a non-empty table of level name -> integer rank",
        f"{context}: levels",
    )
    clearances: Dict[str, Clearance] = {}
    for level_name, rank in raw_levels.items():
        key_context = f"{context}: levels.{level_name}"
        _require(
            isinstance(level_name, str) and level_name != "",
            "level names must be non-empty strings",
            key_context,
        )
        _require(
            isinstance(rank, int) and not isinstance(rank, bool),
            f"rank must be an integer, got {rank!r}",
            key_context,
        )
        clearances[level_name] = Clearance(rank, level_name)

    def clearance_of(level_name: Any, key_context: str) -> Clearance:
        _require(
            isinstance(level_name, str),
            f"expected a level name string, got {level_name!r}",
            key_context,
        )
        _require(
            level_name in clearances,
            f"unknown level {level_name!r}; declared levels: "
            + ", ".join(sorted(clearances)),
            key_context,
        )
        return clearances[level_name]

    default_name = data.get("default")
    if default_name is None:
        default = min(clearances.values())  # lowest rank, then name
    else:
        default = clearance_of(default_name, f"{context}: default")

    raw_resources = data.get("resources", {})
    _require(
        isinstance(raw_resources, dict),
        "'resources' must be a table of resource name/pattern -> level name",
        f"{context}: resources",
    )
    levels: Dict[str, Clearance] = {}
    patterns: List[Tuple[str, Clearance]] = []
    for resource, level_name in raw_resources.items():
        key_context = f"{context}: resources.{resource!r}"
        _require(
            isinstance(resource, str) and resource != "",
            "resource names must be non-empty strings",
            key_context,
        )
        level = clearance_of(level_name, key_context)
        if _WILDCARD_CHARS & set(resource):
            patterns.append((resource, level))
        else:
            levels[resource] = level

    raw_allow = data.get("allow", [])
    _require(
        isinstance(raw_allow, list),
        "'allow' must be an array of {from, to} tables",
        f"{context}: allow",
    )
    permitted = set()
    for position, pair in enumerate(raw_allow):
        key_context = f"{context}: allow[{position}]"
        _require(
            isinstance(pair, dict) and set(pair) == {"from", "to"},
            "each 'allow' entry must be a table with exactly 'from' and 'to'",
            key_context,
        )
        permitted.add(
            (
                clearance_of(pair["from"], f"{key_context}.from"),
                clearance_of(pair["to"], f"{key_context}.to"),
            )
        )

    return DeclaredPolicy(
        levels=levels,
        permitted=permitted,
        default_level=default,
        transitive=(mode == "transitive"),
        patterns=patterns,
        name=name,
        description=description,
        lint=lint_config,
    )


def policy_to_dict(policy: FlowPolicy) -> Dict[str, Any]:
    """Render any :class:`FlowPolicy` as a policy document (round-trippable).

    The clearance set is recovered from everything the policy mentions
    (assignments, patterns, the default, the permitted pairs), so in-code
    policies — including :class:`~repro.security.policy.TwoLevelPolicy` —
    serialise to the same format the file loader reads.
    """
    clearances = {policy.default_level}
    clearances.update(policy.levels.values())
    for source, target in policy.permitted:
        clearances.update((source, target))
    patterns: List[Tuple[str, Clearance]] = list(getattr(policy, "patterns", ()))
    clearances.update(level for _, level in patterns)

    document: Dict[str, Any] = {}
    name = getattr(policy, "name", None)
    if name is not None:
        document["name"] = name
    description = getattr(policy, "description", None)
    if description is not None:
        document["description"] = description
    document["mode"] = "transitive" if policy.transitive else "channel-control"
    document["default"] = policy.default_level.name
    levels_by_name: Dict[str, int] = {}
    for clearance in sorted(clearances):
        # The file format keys levels by name, so two distinct clearances
        # sharing a name cannot be represented — refuse rather than silently
        # serialise a policy that would check different flows when reloaded.
        if levels_by_name.get(clearance.name, clearance.rank) != clearance.rank:
            raise PolicyFileError(
                f"level {clearance.name!r} has conflicting ranks "
                f"{levels_by_name[clearance.name]} and {clearance.rank}; "
                "such a policy cannot round-trip through the file format",
                context="policy_to_dict",
            )
        levels_by_name[clearance.name] = clearance.rank
    document["levels"] = levels_by_name
    resources = {
        resource: level.name for resource, level in sorted(policy.levels.items())
    }
    resources.update((pattern, level.name) for pattern, level in patterns)
    document["resources"] = resources
    document["allow"] = [
        {"from": source.name, "to": target.name}
        for source, target in sorted(policy.permitted)
    ]
    lint_config = getattr(policy, "lint", None)
    if lint_config is not None:
        lint_table = lint_config.to_dict()
        if lint_table:
            document["lint"] = lint_table
    return document


def load_policy_file(path: "str | Path") -> DeclaredPolicy:
    """Load and validate a ``.toml`` or ``.json`` policy file.

    The suffix selects the parser (anything that is not ``.json`` is read as
    TOML).  Parse errors and validation errors both surface as
    :class:`PolicyFileError` with the file name as context; a missing or
    unreadable file raises the usual :class:`OSError`.
    """
    path = Path(path)
    context = str(path)
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            raise PolicyFileError(f"not valid JSON: {error}", context) from error
    else:
        import tomllib

        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as error:
            raise PolicyFileError(f"not valid TOML: {error}", context) from error
    return policy_from_dict(data, context=context)
