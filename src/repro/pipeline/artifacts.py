"""Result and option types shared by the staged pipeline and the legacy API.

:class:`AnalysisResult` is the bundle of artefacts one full Information Flow
analysis run produces; it used to live in :mod:`repro.analysis.api` and is
still re-exported from there.  :class:`AnalysisOptions` is the frozen set of
knobs that select *which* analysis runs — its fields are the option inputs
of every stage cache key (see :func:`repro.pipeline.stages.stage_key` and
``docs/architecture.md`` for which field keys which stage).
:class:`StageTiming` / :class:`PipelineResult` describe *how* a pipeline run
went, stage by stage; ``PipelineResult.cached_stages`` is the observable the
caching tests and the ``--json`` documents rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.flowgraph import FlowGraph
from repro.analysis.kemmerer import KemmererResult
from repro.analysis.reaching_active import ActiveSignalsResult
from repro.analysis.reaching_defs import ReachingDefinitionsResult
from repro.analysis.resource_matrix import ResourceMatrix
from repro.analysis.specialize import SpecializedRD
from repro.cfg.builder import ProgramCFG
from repro.dataflow.universe import FactUniverse
from repro.vhdl.elaborate import Design


@dataclass(frozen=True)
class AnalysisOptions:
    """The analysis configuration, as it participates in cache keys.

    ``entity`` selects the entity/architecture pair when the source contains
    several; the three booleans mirror the keyword arguments of
    :func:`repro.analysis.api.analyze` (Table 9 improvement, looping process
    bodies, the ``RD∩ϕ`` under-approximation).
    """

    entity: Optional[str] = None
    improved: bool = True
    loop_processes: bool = True
    use_under_approximation: bool = True


@dataclass
class AnalysisResult:
    """All artefacts produced by one Information Flow analysis run."""

    design: Design
    program_cfg: ProgramCFG
    active: Dict[str, ActiveSignalsResult]
    reaching: ReachingDefinitionsResult
    rm_local: ResourceMatrix
    specialized: SpecializedRD
    rm_global: ResourceMatrix
    graph: FlowGraph
    improved: bool
    outgoing_labels: Dict[str, int] = field(default_factory=dict)
    universe: Optional[FactUniverse] = None
    """The per-session resource-name universe this run interned into."""

    @property
    def flow_graph(self) -> FlowGraph:
        """Alias for :attr:`graph` (the paper's result artefact)."""
        return self.graph

    def graph_without_self_loops(self) -> FlowGraph:
        """The flow graph with trivial ``n → n`` edges removed."""
        return self.graph.without_self_loops()

    def collapsed_graph(self) -> FlowGraph:
        """The flow graph with ``n◦``/``n•`` merged back onto ``n``."""
        return self.graph.collapse_environment_nodes()

    def summary(self) -> str:
        """Short human-readable description of the run."""
        cfg_stats = self.program_cfg.summary()
        return (
            f"design {self.design.name!r}: {cfg_stats['processes']} processes, "
            f"{cfg_stats['labels']} blocks, {len(self.rm_local)} local entries, "
            f"{len(self.rm_global)} global entries, graph: {self.graph.summary()}"
        )


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock record of one executed (or cache-served) pipeline stage.

    ``profile`` is only populated by profiled runs (``Pipeline.run(...,
    profile=True)``): the stage's cProfile hot spots as a tuple of plain
    dicts (``function``, ``calls``, ``tottime``, ``cumtime``), ordered by
    internal time — already JSON-shaped for the ``--profile-json`` sidecar.
    Cache-served stages carry no profile (there is nothing to profile).
    """

    name: str
    seconds: float
    cached: bool = False
    profile: Optional[Tuple[Dict[str, Any], ...]] = None


@dataclass
class PipelineResult:
    """What one pipeline run produced, plus how long each stage took.

    ``result`` is populated once the ``flow_graph`` stage has run (i.e. for
    any full analysis run); ``kemmerer`` for Kemmerer-baseline runs;
    ``report`` when a policy was supplied and the ``report`` stage ran.
    ``artifacts`` is the raw stage context for partial runs (``until=``),
    exposing every intermediate artefact by name.
    """

    options: AnalysisOptions
    stages: List[StageTiming] = field(default_factory=list)
    result: Optional[AnalysisResult] = None
    kemmerer: Optional[KemmererResult] = None
    report: Optional[Any] = None
    artifacts: Optional[Any] = None

    @property
    def timings(self) -> Dict[str, float]:
        """Stage name → wall-clock seconds, in execution order."""
        return {stage.name: stage.seconds for stage in self.stages}

    @property
    def cached_stages(self) -> List[str]:
        """Names of the stages served from the artifact cache, in order."""
        return [stage.name for stage in self.stages if stage.cached]

    @property
    def computed_stages(self) -> List[str]:
        """Names of the stages actually executed (cache misses), in order."""
        return [stage.name for stage in self.stages if not stage.cached]

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time across all stages."""
        return sum(stage.seconds for stage in self.stages)

    @property
    def stage_profiles(self) -> Dict[str, Tuple[Dict[str, Any], ...]]:
        """Stage name → cProfile hot spots (profiled runs only; see
        :attr:`StageTiming.profile`)."""
        return {
            stage.name: stage.profile
            for stage in self.stages
            if stage.profile is not None
        }
