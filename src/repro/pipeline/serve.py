"""``vhdl-ifa serve``: a long-lived analysis service over one warm cache.

A small asyncio HTTP server (stdlib only) that keeps one
:class:`~repro.pipeline.stages.Pipeline` — and therefore one
:class:`~repro.pipeline.cache.TieredArtifactCache` — alive across requests,
so repeated analyses of the same design are served from warm artifacts
instead of re-paying parse/elaborate/closure on every invocation.

Endpoints
---------
``POST /analyze``
    Body: ``{"file": PATH}`` or ``{"source": TEXT}``, plus the optional
    ``entity``, ``basic``, ``straight_line``, ``collapse``, ``self_loops``
    keys mirroring the CLI flags.  The response body is byte-identical to
    what ``vhdl-ifa analyze FILE --json`` prints for the same input and
    cache state (both sides render :func:`repro.pipeline.render.analyze_document`
    through :func:`repro.pipeline.render.json_text`).
``POST /check``
    Body: the ``analyze`` keys plus ``secret`` (list), and the optional
    ``output`` (list), ``transitive``, ``ports_only`` keys.  The response is
    byte-identical to ``vhdl-ifa check FILE --json ...``.
``GET /stats``
    Uptime, per-endpoint request counters and the cache statistics of both
    tiers.

Analysis runs synchronously on the event loop: requests are effectively
serialised, which is the honest behaviour for a CPU-bound single-process
service (run several server processes over one ``--cache-dir`` to scale
out; the disk tier is multi-process safe).  Errors never kill the server:
bad JSON or a failing analysis become a ``4xx`` JSON body ``{"error": ...}``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.pipeline.artifacts import AnalysisOptions
from repro.pipeline.render import analyze_document, check_document, json_text
from repro.pipeline.stages import Pipeline

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Requests larger than this are rejected instead of buffered.
MAX_BODY_BYTES = 16 * 1024 * 1024

_REQUEST_ERRORS = (ReproError, OSError, UnicodeDecodeError)


class AnalysisServer:
    """The request handlers plus the shared pipeline state of one server."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        cache: Optional[Any] = None,
    ):
        self.host = host
        self.port = port
        self.cache = cache
        self.pipeline = Pipeline(cache)
        self.started_at = time.time()
        self.request_counts: Dict[str, int] = {}
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind and start accepting connections; resolves the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _BadRequest as error:
                await self._respond(writer, error.status, {"error": str(error)})
                return
            status, document = self._dispatch(method, path, body)
            await self._respond(writer, status, document)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Tuple[str, str, bytes]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise _BadRequest("malformed HTTP request")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line {request_line!r}")
        method, path, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise _BadRequest("malformed Content-Length header")
                if length < 0:
                    raise _BadRequest("malformed Content-Length header")
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", status=413)
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _BadRequest("truncated request body")
        return method, path.split("?", 1)[0], body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, document: Dict[str, Any]
    ) -> None:
        body = (json_text(document) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            "Content-Type: application/json; charset=utf-8\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # --------------------------------------------------------------- routing

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        route = f"{method} {path}"
        self.request_counts[route] = self.request_counts.get(route, 0) + 1
        if path == "/analyze" or path == "/check":
            if method != "POST":
                return 405, {"error": f"{path} expects POST, got {method}"}
            try:
                payload = self._parse_payload(body)
                if path == "/analyze":
                    return 200, self._analyze(payload)
                return 200, self._check(payload)
            except _BadRequest as error:
                return error.status, {"error": str(error)}
            except _REQUEST_ERRORS as error:
                return 400, {"error": str(error)}
            except Exception as error:  # never kill the server on one request
                return 500, {"error": f"internal error: {error!r}"}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": f"/stats expects GET, got {method}"}
            return 200, self._stats()
        return 404, {"error": f"unknown path {path!r}"}

    @staticmethod
    def _parse_payload(body: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise _BadRequest("request body must be a JSON object")
        return payload

    # -------------------------------------------------------------- handlers

    @staticmethod
    def _load_source(payload: Dict[str, Any]) -> Tuple[str, Optional[str]]:
        file = payload.get("file")
        source = payload.get("source")
        if (file is None) == (source is None):
            raise _BadRequest("exactly one of 'file' and 'source' is required")
        if file is not None:
            if not isinstance(file, str):
                raise _BadRequest("'file' must be a path string")
            with open(file, encoding="utf-8") as handle:
                return handle.read(), file
        if not isinstance(source, str):
            raise _BadRequest("'source' must be VHDL source text")
        return source, None

    @staticmethod
    def _options(payload: Dict[str, Any]) -> AnalysisOptions:
        return AnalysisOptions(
            entity=payload.get("entity"),
            improved=not payload.get("basic", False),
            loop_processes=not payload.get("straight_line", False),
        )

    def _analyze(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        source, file = self._load_source(payload)
        run = self.pipeline.run(source, self._options(payload))
        return analyze_document(
            run,
            collapse=bool(payload.get("collapse", False)),
            self_loops=bool(payload.get("self_loops", False)),
            file=file,
        )

    def _check(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        # Imported lazily: repro.security imports repro.analysis.api, which
        # itself imports this package (same cycle the report stage breaks).
        from repro.security.policy import TwoLevelPolicy

        source, file = self._load_source(payload)
        secrets = payload.get("secret", [])
        if not isinstance(secrets, list):
            raise _BadRequest("'secret' must be a list of resource names")
        outputs = payload.get("output", [])
        if not isinstance(outputs, list):
            raise _BadRequest("'output' must be a list of resource names")
        policy = TwoLevelPolicy(secret_resources=secrets)
        run = self.pipeline.run(
            source,
            self._options(payload),
            policy=policy,
            report_options={
                "transitive": bool(payload.get("transitive", False)),
                "restrict_to_ports": bool(payload.get("ports_only", False)),
                "outputs": outputs or None,
            },
        )
        return check_document(run, policy, file=file)

    def _stats(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "command": "stats",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "requests": dict(sorted(self.request_counts.items())),
        }
        if self.cache is not None:
            document["cache"] = self.cache.stats()
        return document


class _BadRequest(Exception):
    """A request the server answers with a 4xx JSON error body."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class ServerThread:
    """Run an :class:`AnalysisServer` on a background thread.

    The context-manager form the tests and benchmarks use::

        with ServerThread(AnalysisServer(port=0, cache=...)) as server:
            ...  # server.port is the bound port

    The event loop lives on the thread; ``__exit__`` stops it and joins.
    """

    def __init__(self, server: AnalysisServer):
        self.server = server
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> AnalysisServer:
        started = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            started.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

        self._thread = threading.Thread(
            target=run, name="vhdl-ifa-serve", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("analysis server failed to start in time")
        return self.server

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    cache: Optional[Any] = None,
    announce=None,
) -> None:
    """Run a server until interrupted (the ``vhdl-ifa serve`` body).

    ``announce`` is called with the bound URL once the server is listening
    (the CLI prints it to stderr); port 0 binds an ephemeral port.
    """
    server = AnalysisServer(host=host, port=port, cache=cache)

    async def main() -> None:
        await server.start()
        if announce is not None:
            announce(f"http://{server.host}:{server.port}")
        await server.serve_forever()

    asyncio.run(main())
